//! Per-kernel energy targets — the paper's Listing 3 and Figure 6
//! end-to-end: train the energy models on micro-benchmarks, compile an
//! application's kernels into a target registry, then submit each kernel
//! with its own energy target and compare the measured energies.
//!
//! Run with: `cargo run --release --example energy_targets`

use std::sync::Arc;
use synergy::kernel::generate_microbench;
use synergy::kernel::MicroBenchConfig;
use synergy::prelude::*;

fn main() {
    let spec = DeviceSpec::v100();

    // ── compile time ──────────────────────────────────────────────────
    // ① micro-benchmarks → ② frequency sweeps → ③ four metric models.
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), 8, 7);

    // ④–⑥ extract features of the app's kernels, predict, search.
    let sobel = synergy::apps::by_name("sobel3").unwrap();
    let matmul = synergy::apps::by_name("mat_mul").unwrap();
    let registry = Arc::new(
        compile_application(
            &spec,
            &models,
            &[sobel.ir.clone(), matmul.ir.clone()],
            &[
                EnergyTarget::MinEdp,
                EnergyTarget::EnergySaving(50),
                EnergyTarget::PerfLoss(25),
            ],
        )
        .expect("example kernels lint clean"),
    );
    println!("compiled decisions:");
    for kernel in ["sobel3", "mat_mul"] {
        for target in [
            EnergyTarget::MinEdp,
            EnergyTarget::EnergySaving(50),
            EnergyTarget::PerfLoss(25),
        ] {
            let c = registry.lookup(kernel, target).unwrap();
            println!("  {kernel:10} {target:>8} -> {c}");
        }
    }

    // ── run time ──────────────────────────────────────────────────────
    // The device would normally be unlocked by the SLURM plugin; here we
    // lower the restriction directly (see examples/cluster_job.rs for the
    // full scheduler flow).
    let device = SimDevice::new(spec, 0);
    device.set_api_restriction(false);
    let queue = Queue::builder(device).registry(Arc::clone(&registry)).build();

    println!("\nmeasured per-kernel energy under each target:");
    for bench in [&sobel, &matmul] {
        let items = bench.work_items as usize;
        // Baseline at default clocks.
        let ir = bench.ir.clone();
        let base = queue.submit(move |h| h.parallel_for_modeled(items, &ir));
        let base_e = queue.kernel_energy_exact(&base);
        let base_t = base.execution().unwrap().duration_s();
        println!("  {:12} default : {:.3} J, {:.2} ms", bench.name, base_e, base_t * 1e3);
        for target in [EnergyTarget::MinEdp, EnergyTarget::EnergySaving(50)] {
            let ir = bench.ir.clone();
            let ev = queue.submit_with_target(target, move |h| {
                h.parallel_for_modeled(items, &ir)
            });
            ev.wait_and_throw().expect("registry entry exists");
            let e = queue.kernel_energy_exact(&ev);
            let rec = ev.execution().unwrap();
            println!(
                "  {:12} {:>8}: {:.3} J, {:.2} ms at {} ({:+.1}% energy)",
                bench.name,
                target.to_string(),
                e,
                rec.duration_s() * 1e3,
                rec.clocks,
                (e / base_e - 1.0) * 100.0,
            );
        }
    }
}
