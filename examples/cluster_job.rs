//! Cluster flow — Section 7 end-to-end: submit an exclusive `nvgpufreq`
//! batch job to the SLURM-like scheduler; the plugin's prologue lowers the
//! NVML API restriction so the (unprivileged) job can frequency-scale its
//! GPUs; the epilogue restores the node. The job runs a CloverLeaf
//! weak-scaling step under the ES_50 target and reports the energy saved
//! against a default-clock job.
//!
//! Run with: `cargo run --release --example cluster_job`

use std::sync::Arc;
use synergy::cluster::{
    run_weak_scaling, CommModel, FrequencySchedule, MiniApp, ScalingOutcome, WeakScalingConfig,
};
use synergy::kernel::{generate_microbench, MicroBenchConfig};
use synergy::prelude::*;
use synergy::sched::{Cluster, JobRequest, NvGpuFreqPlugin, Slurm, NVGPUFREQ_GRES};

fn main() {
    // ── compile time: train models, compile CloverLeaf's kernels ──────
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), 8, 7);
    let registry = Arc::new(
        compile_application(
            &spec,
            &models,
            &synergy::apps::cloverleaf::kernel_irs(),
            &[EnergyTarget::EnergySaving(50)],
        )
        .expect("CloverLeaf kernels lint clean"),
    );

    // ── cluster: 2 Marconi-100 nodes (8 V100s), nvgpufreq-tagged ─────
    let mut slurm = Slurm::new(Cluster::marconi100(2, true));
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));

    let cfg = WeakScalingConfig {
        gpus: 8,
        local_nx: 2048,
        local_ny: 2048,
        steps: 5,
        comm: CommModel::edr_dragonfly(),
    };

    let result: Arc<parking_lot::Mutex<Vec<ScalingOutcome>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));

    for (label, schedule) in [
        ("default".to_string(), FrequencySchedule::Default),
        (
            "ES_50".to_string(),
            FrequencySchedule::PerKernel {
                registry: Arc::clone(&registry),
                target: EnergyTarget::EnergySaving(50),
            },
        ),
    ] {
        let sink = Arc::clone(&result);
        let job = JobRequest::builder(format!("cloverleaf-{label}"), 1000)
            .nodes(2)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(move |ctx| {
                // Inside the job: the plugin has lowered the restriction,
                // so clock changes as Caller::User succeed.
                let out = run_weak_scaling(MiniApp::CloverLeaf, &cfg, &ctx.gpus(), ctx.caller, &schedule);
                sink.lock().push(out);
            });
        let record = slurm.run(job);
        println!(
            "job {} `{}` on {:?}: plugin applied on every node: {}",
            record.id,
            record.name,
            record.hostnames,
            record.plugin_log.iter().all(|e| e.applied)
        );
        println!(
            "  accounting: {:.1} J GPU energy, {:.3} s wall",
            record.gpu_energy_j, record.elapsed_s
        );
    }

    let outcomes = result.lock();
    let base = &outcomes[0];
    let es50 = &outcomes[1];
    println!(
        "\nCloverLeaf on 8 GPUs: default {:.1} J vs ES_50 {:.1} J -> {:.1}% saved \
         ({:+.1}% time)",
        base.energy_j,
        es50.energy_j,
        (1.0 - es50.energy_j / base.energy_j) * 100.0,
        (es50.time_s / base.time_s - 1.0) * 100.0
    );

    // After the epilogue, the nodes are pristine for the next user.
    for node in &slurm.cluster().nodes {
        for gpu in &node.node.gpus {
            assert!(gpu.api_restricted());
            assert_eq!(gpu.application_clocks(), None);
        }
    }
    println!("epilogue verified: all GPUs restored to default clocks and restricted.");
}
