//! Export a queue's activity as a Chrome trace — run a few CloverLeaf
//! steps and write `cloverleaf_trace.json`, openable in `chrome://tracing`
//! or https://ui.perfetto.dev (kernel slices with clocks + energy, plus a
//! board-power counter track).
//!
//! Run with: `cargo run --release --example trace_export`

use synergy::apps::CloverLeaf;
use synergy::prelude::*;

fn main() {
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(device);

    let mut app = CloverLeaf::new(128, 128);
    for _ in 0..3 {
        app.step(&queue, None);
    }

    let log = queue.kernel_log();
    println!("executed {} kernels over 3 CloverLeaf steps:", log.len());
    for k in log.iter().take(8) {
        println!(
            "  {:<22} {:>8.3} ms  {:>7.4} J  @ {}",
            k.name,
            k.duration_s() * 1e3,
            k.energy_j,
            k.clocks
        );
    }

    let trace = queue.export_chrome_trace();
    let path = "cloverleaf_trace.json";
    std::fs::write(path, &trace).expect("write trace");
    println!(
        "\nwrote {path} ({} KiB) — open it in chrome://tracing or Perfetto",
        trace.len() / 1024
    );
}
