//! Kernel energy characterization — the analysis behind Figures 2, 4
//! and 5: sweep a kernel over every supported core frequency, print the
//! Pareto front of the (time, energy) cloud, and show where each energy
//! target lands.
//!
//! Pass a benchmark name (default `black_scholes`):
//! `cargo run --release --example characterization -- sobel3`

use synergy::metrics::{is_pareto_optimal, point_at, search_optimal};
use synergy::prelude::*;
use synergy::rt::measured_sweep;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "black_scholes".into());
    let bench = synergy::apps::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; available:");
        for b in synergy::apps::suite() {
            eprintln!("  {}", b.name);
        }
        std::process::exit(1);
    });

    let spec = DeviceSpec::v100();
    let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
    let baseline = point_at(&sweep, spec.baseline_clocks()).unwrap();

    println!(
        "{} on {} ({} frequency configurations, default {})\n",
        bench.name,
        spec.name,
        sweep.len(),
        spec.baseline_clocks()
    );

    println!("Pareto front (speedup vs normalized energy):");
    for p in pareto_front(&sweep) {
        println!(
            "  {:>4} MHz  speedup {:.3}  energy {:.3}",
            p.clocks.core_mhz,
            p.speedup_vs(&baseline),
            p.normalized_energy_vs(&baseline)
        );
    }

    println!("\nenergy-target selections:");
    for target in EnergyTarget::PAPER_SET {
        let p = search_optimal(target, &sweep, spec.baseline_clocks()).unwrap();
        println!(
            "  {:>10} -> {:>4} MHz  ({:+.1}% energy, {:+.1}% time, pareto: {})",
            target.to_string(),
            p.clocks.core_mhz,
            (p.normalized_energy_vs(&baseline) - 1.0) * 100.0,
            (1.0 / p.speedup_vs(&baseline) - 1.0) * 100.0,
            is_pareto_optimal(&p, &sweep)
        );
    }
}
