//! Quickstart — the paper's Listing 1: build an energy-aware queue on a
//! (simulated) V100, run a SAXPY kernel, and query per-kernel and
//! per-device energy.
//!
//! Run with: `cargo run --release --example quickstart`

use synergy::prelude::*;

fn main() {
    // One simulated V100 board; `Queue` wraps it with energy capabilities.
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(device);

    // Buffers, as in SYCL.
    let n = 1 << 22;
    let alpha = 2.5f32;
    let x = Buffer::from_slice(&vec![1.0f32; n]);
    let y = Buffer::from_slice(&vec![3.0f32; n]);
    let z: Buffer<f32> = Buffer::zeros(n);
    let (xa, ya, za) = (x.accessor(), y.accessor(), z.accessor());

    // The kernel is described twice, as on a real GPU: an IR for the
    // compiler/energy model, and a host body for the numerics.
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::FloatMul, 1)
        .ops(Inst::FloatAdd, 1)
        .ops(Inst::GlobalStore, 1)
        .build("saxpy");

    let event = queue.submit(move |h| {
        h.parallel_for(n, &ir, move |i| {
            za.set(i, alpha * xa.get(i) + ya.get(i));
        });
    });
    event.wait_and_throw().expect("no frequency change requested");

    // Fine-grained profiling: the kernel's energy, measured by sampling
    // board power over its execution window (the paper's polling thread).
    let kernel_energy = queue.kernel_energy_consumption(&event);
    // Coarse-grained profiling: whole-device energy since queue creation.
    let device_energy = queue.device_energy_consumption();

    let exec = event.execution().expect("kernel completed");
    println!("kernel `{}`:", exec.name);
    println!("  clocks          : {}", exec.clocks);
    println!("  duration        : {:.3} ms", exec.duration_s() * 1e3);
    println!("  energy (exact)  : {:.3} J", exec.energy_j);
    println!("  energy (sampled): {kernel_energy:.3} J");
    println!("device energy since queue creation: {device_energy:.3} J");

    assert_eq!(z.to_vec()[0], alpha * 1.0 + 3.0);
    println!("\nresult verified: z[0] = {}", z.to_vec()[0]);
}
