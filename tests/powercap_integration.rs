//! Power capping ↔ scheduler ↔ runtime integration: a cluster watt budget
//! enforced through locked clocks must bound what jobs can draw, survive
//! the nvgpufreq plugin's epilogue, and interact sanely with per-kernel
//! frequency requests.

use synergy::prelude::*;
use synergy::sched::{
    clock_ceiling_for_cap, Cluster, JobRequest, NvGpuFreqPlugin, PowerCapConfig, PowerManager,
    Slurm, NVGPUFREQ_GRES,
};

fn busy_ir() -> synergy::kernel::KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .loop_n(4096, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
        .ops(Inst::GlobalStore, 1)
        .build("virus")
}

#[test]
fn capped_cluster_bounds_job_power() {
    let cluster = Cluster::marconi100(1, true);
    let per_gpu_cap = 160.0;
    let mgr = PowerManager::new(PowerCapConfig::even(4.0 * per_gpu_cap), 1);
    mgr.enforce(&cluster);

    let mut slurm = Slurm::new(cluster);
    let record = slurm.run(
        JobRequest::builder("hot-job", 1000)
            .nodes(1)
            .exclusive()
            .payload(move |ctx| {
                for gpu in ctx.gpus() {
                    let q = Queue::new(gpu.clone());
                    let ir = busy_ir();
                    let ev = q.submit(move |h| h.parallel_for_modeled(1 << 24, &ir));
                    ev.wait();
                    let rec = ev.execution().unwrap();
                    assert!(
                        rec.timing.exec_power_w <= per_gpu_cap + 1e-9,
                        "board drew {} W above the {per_gpu_cap} W cap",
                        rec.timing.exec_power_w
                    );
                }
            }),
    );
    assert!(record.gpu_energy_j > 0.0);
}

#[test]
fn cap_overrides_user_frequency_requests() {
    // Even a privileged job asking for the max core clock is clamped by
    // the root-only locked ceiling the power manager installed.
    let cluster = Cluster::marconi100(1, true);
    let mgr = PowerManager::new(PowerCapConfig::even(4.0 * 150.0), 1);
    mgr.enforce(&cluster);
    let ceiling = clock_ceiling_for_cap(&DeviceSpec::v100(), 150.0);

    let mut slurm = Slurm::new(cluster);
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));
    slurm.run(
        JobRequest::builder("greedy", 1000)
            .nodes(1)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(move |ctx| {
                let gpu = ctx.gpus()[0].clone();
                let q = Queue::builder(gpu).caller(ctx.caller).frequency(877, 1530).build();
                let ir = busy_ir();
                let ev = q.submit(move |h| h.parallel_for_modeled(1 << 20, &ir));
                ev.wait_and_throw().expect("request is accepted...");
                let rec = ev.execution().unwrap();
                assert!(
                    rec.clocks.core_mhz <= ceiling,
                    "...but the locked ceiling clamps it: ran at {} > {ceiling}",
                    rec.clocks.core_mhz
                );
            }),
    );
}

#[test]
fn uncapped_job_is_faster_but_hotter() {
    let run = |cap: Option<f64>| -> (f64, f64) {
        let cluster = Cluster::marconi100(1, true);
        if let Some(c) = cap {
            PowerManager::new(PowerCapConfig::even(4.0 * c), 1).enforce(&cluster);
        }
        let gpu = cluster.nodes[0].node.gpus[0].clone();
        let q = Queue::new(gpu);
        let ir = busy_ir();
        let ev = q.submit(move |h| h.parallel_for_modeled(1 << 24, &ir));
        ev.wait();
        let rec = ev.execution().unwrap();
        (rec.duration_s(), rec.timing.exec_power_w)
    };
    let (t_free, p_free) = run(None);
    let (t_capped, p_capped) = run(Some(140.0));
    assert!(t_capped > t_free, "cap must slow the board");
    assert!(p_capped < p_free, "cap must reduce power");
}

#[test]
fn rebalancing_respects_budget_with_live_jobs() {
    let cluster = Cluster::marconi100(2, true);
    let budget = 2.0 * 4.0 * 170.0;
    let mut mgr = PowerManager::new(PowerCapConfig::even(budget), 2);
    // Node 1 works, node 0 idles.
    for gpu in &cluster.nodes[1].node.gpus {
        let q = Queue::new(gpu.clone());
        let ir = busy_ir();
        q.submit(move |h| h.parallel_for_modeled(1 << 22, &ir)).wait();
    }
    for gpu in &cluster.nodes[0].node.gpus {
        gpu.advance_idle(50_000_000);
    }
    for _ in 0..3 {
        mgr.rebalance(&cluster);
        mgr.enforce(&cluster);
        assert!(mgr.total_caps_w() <= budget + 1e-6);
    }
    assert!(mgr.node_cap_w(1) > mgr.node_cap_w(0));
}
