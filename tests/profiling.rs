//! Profiling integration: the coarse (whole-device) and fine (per-kernel)
//! energy paths of Section 4.2, including the Section 4.4 limitation that
//! kernels shorter than the sensor interval profile poorly.

use synergy::prelude::*;

fn kernel(loops: u64) -> synergy::kernel::KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .loop_n(loops, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
        .ops(Inst::GlobalStore, 1)
        .build(format!("loops_{loops}"))
}

#[test]
fn device_energy_covers_all_kernels() {
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(device);
    let mut exact_sum = 0.0;
    for _ in 0..4 {
        let ir = kernel(256);
        let ev = queue.submit(move |h| h.parallel_for_modeled(1 << 20, &ir));
        exact_sum += queue.kernel_energy_exact(&ev);
    }
    let device_energy = queue.device_energy_consumption();
    assert!(
        device_energy >= exact_sum * 0.999,
        "coarse window {device_energy} must cover kernel sum {exact_sum}"
    );
}

#[test]
fn long_kernels_profile_accurately_short_ones_do_not() {
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(device);

    // Long kernel: hundreds of ms >> 15 ms sensor interval.
    let long = kernel(1 << 16);
    let ev_long = queue.submit(move |h| h.parallel_for_modeled(1 << 24, &long));
    let exact_long = queue.kernel_energy_exact(&ev_long);
    let sampled_long = queue.kernel_energy_consumption(&ev_long);
    let err_long = (sampled_long - exact_long).abs() / exact_long;

    // Short kernel: well under one sensor interval.
    let short = kernel(16);
    let ev_short = queue.submit(move |h| h.parallel_for_modeled(1 << 16, &short));
    let exact_short = queue.kernel_energy_exact(&ev_short);
    let sampled_short = queue.kernel_energy_consumption(&ev_short);
    let err_short = (sampled_short - exact_short).abs() / exact_short;

    assert!(err_long < 0.05, "long-kernel profiling error {err_long}");
    assert!(
        err_short > err_long,
        "short kernels must profile worse: {err_short} vs {err_long}"
    );
}

#[test]
fn power_sensor_tracks_load() {
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(std::sync::Arc::clone(&device));
    let idle_read = queue.power_usage_w();
    // Push a long busy phase, then read the smoothed sensor.
    let ir = kernel(1 << 14);
    let ev = queue.submit(move |h| h.parallel_for_modeled(1 << 24, &ir));
    ev.wait();
    let busy_read = queue.power_usage_w();
    assert!(
        busy_read > idle_read,
        "sensor should rise under load: {idle_read} -> {busy_read}"
    );
    assert!(busy_read <= device.spec().tdp_w * 1.02);
}

#[test]
fn profiling_is_deterministic() {
    let run = || {
        let device = SimDevice::new(DeviceSpec::v100(), 0);
        let queue = Queue::new(device);
        let ir = kernel(512);
        let ev = queue.submit(move |h| h.parallel_for_modeled(1 << 22, &ir));
        (
            queue.kernel_energy_exact(&ev),
            queue.kernel_energy_consumption(&ev),
        )
    };
    assert_eq!(run(), run());
}
