//! Cross-crate pipeline properties: the parallel sweep engine is
//! bit-identical to the serial reference path, and the trained-model cache
//! is deterministic across stores (round-trip through disk preserves every
//! prediction) while any key-ingredient change invalidates it.

use proptest::prelude::*;
use synergy::kernel::{generate_microbench, MicroBenchConfig, MicroBenchmark};
use synergy::ml::{Algorithm, ModelSelection};
use synergy::rt::{
    build_training_set, build_training_set_serial, clock_grid, default_cache_dir,
    predict_sweep, predict_sweep_over_grid, ModelKey, ModelStore,
};
use synergy::sim::DeviceSpec;

fn small_suite(gen_seed: u64) -> Vec<MicroBenchmark> {
    let cfg = MicroBenchConfig {
        intensities: [1, 8, 32, 128],
        mixed_kernels: 4,
        work_items: 1 << 16,
    };
    generate_microbench(gen_seed, &cfg)
}

fn test_dir(name: &str) -> std::path::PathBuf {
    default_cache_dir().join(format!("test-it-{}-{}", name, std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The rayon fan-out must not change a single bit of the training set:
    /// for any device, stride and suite subset, parallel == serial.
    #[test]
    fn parallel_training_set_is_bitwise_serial(
        stride in 1usize..40,
        take in 1usize..8,
        gen_seed in 0u64..4,
        device in 0usize..3,
    ) {
        let spec = match device {
            0 => DeviceSpec::v100(),
            1 => DeviceSpec::mi100(),
            _ => DeviceSpec::titan_x(),
        };
        let suite = small_suite(gen_seed);
        let take = take.min(suite.len());
        let par = build_training_set(&spec, &suite[..take], stride);
        let ser = build_training_set_serial(&spec, &suite[..take], stride);
        prop_assert_eq!(par, ser);
    }
}

#[test]
fn cache_round_trip_preserves_predictions() {
    let dir = test_dir("roundtrip");
    let spec = DeviceSpec::v100();
    let suite = small_suite(42);
    let sel = ModelSelection::paper_best();

    let store = ModelStore::with_dir(&dir);
    let trained = store.get_or_train(&spec, &suite, sel, 32, 7);
    assert_eq!(store.stats().misses, 1);
    assert_eq!(store.stats().persists, 1, "fresh training must persist once");

    // A fresh store over the same directory loads the file instead of
    // retraining, and the loaded bundle predicts identically everywhere.
    let fresh = ModelStore::with_dir(&dir);
    let loaded = fresh.get_or_train(&spec, &suite, sel, 32, 7);
    assert_eq!(fresh.stats().disk_hits, 1);
    assert_eq!(fresh.stats().persists, 0, "a disk hit must not rewrite the file");
    assert_eq!(*trained, *loaded);
    for b in synergy::apps::suite().into_iter().take(3) {
        assert_eq!(
            predict_sweep(&spec, &trained, &b.ir),
            predict_sweep(&spec, &loaded, &b.ir),
            "{}",
            b.name
        );
    }

    // The cache format must keep feeding the batched engine: a bundle
    // deserialized from disk lazily rebuilds its `FlatForest` caches (they
    // are `#[serde(skip)]`) and the batched sweep over it is bit-for-bit
    // the sweep over the freshly trained models.
    let grid = clock_grid(&spec);
    for b in synergy::apps::suite().into_iter().take(3) {
        let info = synergy::kernel::extract(&b.ir);
        let from_trained = predict_sweep_over_grid(&trained, &info, &grid);
        let from_loaded = predict_sweep_over_grid(&loaded, &info, &grid);
        assert_eq!(from_trained.len(), from_loaded.len(), "{}", b.name);
        for (x, y) in from_trained.iter().zip(&from_loaded) {
            assert_eq!(x.clocks, y.clocks, "{}", b.name);
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits(), "{}", b.name);
            assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits(), "{}", b.name);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_key_changes_with_every_ingredient() {
    let spec = DeviceSpec::v100();
    let suite = small_suite(42);
    let sel = ModelSelection::uniform(Algorithm::Linear);
    let base = ModelKey::for_training(&spec, &suite, sel, 16, 0);
    // Deterministic for identical input...
    assert_eq!(base, ModelKey::for_training(&spec, &suite, sel, 16, 0));
    // ...and sensitive to each ingredient.
    let perturbed = [
        ModelKey::for_training(&DeviceSpec::mi100(), &suite, sel, 16, 0),
        ModelKey::for_training(&spec, &suite[..suite.len() - 1], sel, 16, 0),
        ModelKey::for_training(&spec, &suite, ModelSelection::paper_best(), 16, 0),
        ModelKey::for_training(&spec, &suite, sel, 17, 0),
        ModelKey::for_training(&spec, &suite, sel, 16, 1),
    ];
    for (i, k) in perturbed.iter().enumerate() {
        assert_ne!(&base, k, "ingredient {i} must perturb the key");
    }
}

#[test]
fn changed_key_retrains_instead_of_serving_stale() {
    let dir = test_dir("invalidate");
    let spec = DeviceSpec::v100();
    let suite = small_suite(42);
    let sel = ModelSelection::uniform(Algorithm::Linear);

    let store = ModelStore::with_dir(&dir);
    let a = store.get_or_train(&spec, &suite, sel, 32, 0);
    let b = store.get_or_train(&spec, &suite, sel, 32, 1); // seed changed
    let c = store.get_or_train(&spec, &suite, sel, 24, 0); // stride changed
    let d = store.get_or_train(&spec, &suite[..4], sel, 32, 0); // suite changed
    assert_eq!(
        store.stats().misses,
        4,
        "every key change must train fresh models"
    );
    assert_eq!(
        store.stats().persists,
        4,
        "every fresh training must persist its own cache entry"
    );
    // And the original entry still hits.
    let a2 = store.get_or_train(&spec, &suite, sel, 32, 0);
    assert_eq!(*a, *a2);
    let _ = (b, c, d);

    let _ = std::fs::remove_dir_all(&dir);
}
