//! Cross-device coverage: the full catalogue (V100, A100, MI100, Titan X)
//! must support the complete methodology — characterization, target
//! search, model training, compilation — not just the two devices the
//! paper's figures focus on.

use synergy::kernel::{generate_microbench, MicroBenchConfig};
use synergy::metrics::{point_at, search_optimal};
use synergy::prelude::*;
use synergy::rt::measured_sweep;

fn catalogue() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::v100(),
        DeviceSpec::a100(),
        DeviceSpec::mi100(),
        DeviceSpec::titan_x(),
    ]
}

#[test]
fn every_device_characterizes_every_benchmark() {
    for spec in catalogue() {
        for bench in synergy::apps::suite().into_iter().step_by(4) {
            let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
            assert_eq!(sweep.len(), spec.freq_table.len(), "{}", spec.name);
            assert!(
                sweep.iter().all(|p| p.is_physical()),
                "{} / {}",
                spec.name,
                bench.name
            );
            let baseline = point_at(&sweep, spec.baseline_clocks());
            assert!(baseline.is_some(), "{}: baseline missing", spec.name);
            for target in EnergyTarget::PAPER_SET {
                assert!(
                    search_optimal(target, &sweep, spec.baseline_clocks()).is_some(),
                    "{} / {} / {}",
                    spec.name,
                    bench.name,
                    target
                );
            }
        }
    }
}

#[test]
fn every_device_trains_and_compiles() {
    let suite = generate_microbench(5, &MicroBenchConfig::default());
    let kernels = vec![synergy::apps::by_name("black_scholes").unwrap().ir];
    for spec in catalogue() {
        // Coarse stride keeps the 2-D Titan X sweep affordable in tests.
        let models = train_device_models(&spec, &suite[..16], ModelSelection::paper_best(), 24, 1);
        let registry = compile_application(&spec, &models, &kernels, &EnergyTarget::PAPER_SET)
            .expect("benchmark kernel lints clean");
        assert_eq!(
            registry.len(),
            EnergyTarget::PAPER_SET.len(),
            "{}",
            spec.name
        );
        for target in EnergyTarget::PAPER_SET {
            let c = registry.lookup("black_scholes", target).unwrap();
            assert!(spec.freq_table.supports(c), "{}: {target} -> {c}", spec.name);
        }
    }
}

#[test]
fn a100_behaves_like_a_bigger_v100() {
    // Same vendor and similar architecture: a compute-bound kernel's
    // energy-optimal frequency should sit near the knee on both.
    let bench = synergy::apps::by_name("nbody").unwrap();
    for (spec, knee) in [(DeviceSpec::v100(), 1000.0), (DeviceSpec::a100(), 940.0)] {
        let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
        let opt = search_optimal(EnergyTarget::MinEnergy, &sweep, spec.baseline_clocks())
            .unwrap();
        let rel = opt.clocks.core_mhz as f64 / knee;
        assert!(
            (0.75..1.25).contains(&rel),
            "{}: min-energy {} MHz vs knee {knee}",
            spec.name,
            opt.clocks.core_mhz
        );
    }
}

#[test]
fn queues_run_on_every_device() {
    for spec in catalogue() {
        let dev = SimDevice::new(spec, 0);
        let q = Queue::new(dev);
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::FloatAdd, 1)
            .ops(Inst::GlobalStore, 1)
            .build("portable");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 18, &ir));
        ev.wait();
        let rec = ev.execution().unwrap();
        assert!(rec.energy_j > 0.0);
        assert_eq!(rec.clocks, q.device().spec().baseline_clocks());
    }
}
