//! End-to-end integration: micro-benchmarks → trained models → compiled
//! target registry → energy-aware queue → measured per-kernel energies,
//! across crates.

use std::sync::Arc;
use synergy::kernel::{generate_microbench, MicroBenchConfig};
use synergy::prelude::*;

fn registry_for(spec: &DeviceSpec, kernels: &[synergy::kernel::KernelIr]) -> TargetRegistry {
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(spec, &suite, ModelSelection::paper_best(), 12, 5);
    compile_application(spec, &models, kernels, &EnergyTarget::PAPER_SET)
        .expect("benchmark kernels lint clean")
}

#[test]
fn compile_then_run_with_targets() {
    let spec = DeviceSpec::v100();
    let bench = synergy::apps::by_name("sobel3").unwrap();
    let registry = registry_for(&spec, std::slice::from_ref(&bench.ir));
    assert_eq!(registry.len(), EnergyTarget::PAPER_SET.len());

    let device = SimDevice::new(spec, 0);
    device.set_api_restriction(false);
    let queue = Queue::builder(device).registry(Arc::new(registry)).build();

    let items = bench.work_items as usize;
    let run = |target: Option<EnergyTarget>| -> (f64, f64) {
        let ir = bench.ir.clone();
        let ev = match target {
            Some(t) => queue.submit_with_target(t, move |h| h.parallel_for_modeled(items, &ir)),
            None => queue.submit(move |h| h.parallel_for_modeled(items, &ir)),
        };
        ev.wait_and_throw().unwrap();
        let rec = ev.execution().unwrap();
        (rec.duration_s(), rec.energy_j)
    };

    let (t_default, e_default) = run(None);
    let (t_max, _) = run(Some(EnergyTarget::MaxPerf));
    let (t_min_e, e_min) = run(Some(EnergyTarget::MinEnergy));
    let (_, e_es50) = run(Some(EnergyTarget::EnergySaving(50)));

    // MAX_PERF should not be slower than default; MIN_ENERGY should not
    // cost more energy than default; ES_50 sits in between.
    assert!(t_max <= t_default * 1.02, "{t_max} vs {t_default}");
    assert!(e_min <= e_default * 1.02, "{e_min} vs {e_default}");
    assert!(t_min_e >= t_default * 0.98);
    assert!(e_es50 <= e_default * 1.02);
}

#[test]
fn fine_grained_beats_whole_app_default_for_mixed_kernels() {
    // An application mixing a memory-bound and a compute-bound kernel:
    // per-kernel MIN_ENERGY tuning must beat running everything at default.
    let spec = DeviceSpec::v100();
    let benches = [
        synergy::apps::by_name("vec_add").unwrap(),
        synergy::apps::by_name("nbody").unwrap(),
    ];
    let irs: Vec<_> = benches.iter().map(|b| b.ir.clone()).collect();
    let registry = Arc::new(registry_for(&spec, &irs));

    let run_app = |use_targets: bool| -> f64 {
        let device = SimDevice::new(DeviceSpec::v100(), 0);
        device.set_api_restriction(false);
        let queue = Queue::builder(device).registry(Arc::clone(&registry)).build();
        let mut total = 0.0;
        for bench in &benches {
            let items = bench.work_items as usize;
            let ir = bench.ir.clone();
            let ev = if use_targets {
                queue.submit_with_target(EnergyTarget::MinEnergy, move |h| {
                    h.parallel_for_modeled(items, &ir)
                })
            } else {
                queue.submit(move |h| h.parallel_for_modeled(items, &ir))
            };
            ev.wait();
            total += ev.execution().unwrap().energy_j;
        }
        total
    };

    let e_default = run_app(false);
    let e_tuned = run_app(true);
    assert!(
        e_tuned < e_default,
        "per-kernel tuning {e_tuned} J should beat default {e_default} J"
    );
}

#[test]
fn registry_decisions_are_supported_frequencies() {
    let spec = DeviceSpec::mi100();
    let kernels: Vec<_> = synergy::apps::suite()
        .into_iter()
        .take(6)
        .map(|b| b.ir)
        .collect();
    let registry = registry_for(&spec, &kernels);
    for kernel in kernels {
        for target in EnergyTarget::PAPER_SET {
            let c = registry.lookup(&kernel.name, target).unwrap();
            assert!(spec.freq_table.supports(c), "{}: {target} -> {c}", kernel.name);
        }
    }
}

#[test]
fn real_compute_still_correct_under_frequency_scaling() {
    // Down-clocking changes time and energy but never results.
    let device = SimDevice::new(DeviceSpec::v100(), 0);
    device.set_api_restriction(false);
    let lowest = device.spec().freq_table.min_core();
    let queue = Queue::builder(device).frequency(877, lowest).build();
    let n = 64usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i % 3) as f32).collect();
    let ab = Buffer::from_slice(&a);
    let bb = Buffer::from_slice(&b);
    let cb: Buffer<f32> = Buffer::zeros(n * n);
    synergy::apps::linalg::run_mat_mul(&queue, &ab, &bb, &cb, n).wait_and_throw().unwrap();
    let c = cb.to_vec();
    let want: f32 = (0..n).map(|k| a[k] * b[k * n]).sum();
    assert_eq!(c[0], want);
}
