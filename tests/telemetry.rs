//! Cross-crate telemetry properties: a full traced run (model cache →
//! compile phases → queue → profiler) exports a Chrome trace that
//! round-trips losslessly, the virtual timeline is bit-deterministic
//! across identical runs, and the summary's totals equal per-event sums.

use std::sync::Arc;

use synergy::analyze::LintRegistry;
use synergy::kernel::{generate_microbench, KernelIr, MicroBenchConfig};
use synergy::metrics::EnergyTarget;
use synergy::ml::ModelSelection;
use synergy::rt::{compile_application_traced, KernelProfiler, ModelStore, Queue};
use synergy::sim::{DeviceSpec, SimDevice};
use synergy::telemetry::{ChromeTrace, EventKind, Recorder, TelemetryEvent, TelemetrySummary};

/// One complete pipeline + runtime pass with telemetry on: train (in-memory
/// store, so the cache op stream is a fixed `Miss`), compile all four
/// phases, then run two kernels under two targets with the asynchronous
/// profiler watching. Returns the drained events and the drop count.
fn traced_run() -> (Vec<TelemetryEvent>, u64) {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(
        42,
        &MicroBenchConfig {
            intensities: [1, 8, 32, 128],
            mixed_kernels: 4,
            work_items: 1 << 16,
        },
    );
    let kernels: Vec<KernelIr> = ["vec_add", "mat_mul"]
        .iter()
        .map(|n| synergy::apps::by_name(n).unwrap().ir)
        .collect();

    let rec = Recorder::enabled();
    let store = ModelStore::in_memory();
    let models =
        store.get_or_train_traced(&spec, &suite, ModelSelection::paper_best(), 32, 7, &rec);
    let registry = compile_application_traced(
        &spec,
        &models,
        &kernels,
        &EnergyTarget::PAPER_SET,
        &LintRegistry::with_builtin(),
        &rec,
    )
    .expect("suite kernels lint clean");

    let dev = SimDevice::new(spec, 0);
    dev.set_api_restriction(false);
    let q = Queue::builder(Arc::clone(&dev))
        .registry(Arc::new(registry))
        .telemetry(rec.clone())
        .build();
    for target in [EnergyTarget::MinEdp, EnergyTarget::EnergySaving(50)] {
        for ir in &kernels {
            let ir = ir.clone();
            let ev = q.submit_with_target(target, move |h| h.parallel_for_modeled(1 << 16, &ir));
            let profiler = KernelProfiler::start_with(Arc::clone(&dev), ev.clone(), rec.clone());
            ev.wait_and_throw().expect("kernel completes");
            profiler.join().expect("profiler joins");
        }
    }
    let dropped = rec.dropped();
    (rec.drain(), dropped)
}

#[test]
fn chrome_trace_round_trips_losslessly() {
    let (events, _) = traced_run();
    let trace = ChromeTrace::from_events(&events);
    let json = trace.to_json();

    // Golden stability: parse → re-serialize is a byte-identical fixpoint,
    // so a trace file on disk is a faithful representation of the export.
    let back = ChromeTrace::from_json(&json).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.to_json(), json);

    // And it is a well-formed Chrome trace document Perfetto will accept.
    let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(doc["traceEvents"].is_array());
    assert_eq!(doc["displayTimeUnit"], "ns");
    for required in ["kernels", "clocks", "profiler", "model-cache", "pipeline"] {
        assert!(
            trace.categories().iter().any(|c| c == required),
            "trace must cover category {required}"
        );
    }
    // Both process tracks are named.
    for pid in [synergy::telemetry::PID_VIRTUAL, synergy::telemetry::PID_WALL] {
        assert!(trace
            .trace_events
            .iter()
            .any(|e| e.ph == "M" && e.name == "process_name" && e.pid == pid));
    }
}

/// Project an event onto its deterministic payload: everything that lives
/// on the virtual timeline, with the wall-clock-dependent profiler fields
/// (polls, samples, measured energy) masked out.
fn virtual_fingerprint(ev: &TelemetryEvent) -> Option<(u64, String)> {
    let body = match &ev.kind {
        EventKind::KernelSubmit { kernel, work_items } => {
            format!("submit {kernel} {work_items}")
        }
        EventKind::KernelRun {
            kernel,
            start_ns,
            end_ns,
            energy_j,
            clocks,
        } => format!(
            "run {kernel} {start_ns} {end_ns} {:x} {clocks}",
            energy_j.to_bits()
        ),
        EventKind::ClockChange {
            from,
            to,
            latency_ns,
            ok,
            ..
        } => format!("clock {from} -> {to} {latency_ns} {ok}"),
        EventKind::ProfilerWindow {
            kernel,
            start_ns,
            end_ns,
            ..
        } => format!("window {kernel} {start_ns} {end_ns}"),
        _ => return None,
    };
    Some((ev.ts_virtual_ns, body))
}

#[test]
fn virtual_timeline_is_deterministic_across_runs() {
    let (a, _) = traced_run();
    let (b, _) = traced_run();
    let fa: Vec<_> = a.iter().filter_map(virtual_fingerprint).collect();
    let fb: Vec<_> = b.iter().filter_map(virtual_fingerprint).collect();
    assert!(!fa.is_empty(), "runs must produce device-side events");
    assert_eq!(fa, fb, "virtual timeline must be identical run to run");
}

#[test]
fn summary_totals_match_per_event_sums() {
    let (events, dropped) = traced_run();
    let s = TelemetrySummary::from_events(&events, dropped);
    assert_eq!(s.events, events.len() as u64);
    assert_eq!(s.dropped, dropped);

    let count = |f: fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count() as u64;
    assert_eq!(
        s.kernel_submits,
        count(|k| matches!(k, EventKind::KernelSubmit { .. }))
    );
    assert_eq!(s.kernels, count(|k| matches!(k, EventKind::KernelRun { .. })));
    assert_eq!(
        s.clock_changes,
        count(|k| matches!(k, EventKind::ClockChange { .. }))
    );
    assert_eq!(
        s.profiler_windows,
        count(|k| matches!(k, EventKind::ProfilerWindow { .. }))
    );
    assert_eq!(
        s.cache_misses + s.cache_memory_hits + s.cache_disk_hits,
        count(|k| matches!(k, EventKind::ModelCache { op, .. }
            if !matches!(op, synergy::telemetry::CacheOp::Persist)))
    );
    assert_eq!(
        s.phases.len() as u64,
        {
            let mut names: Vec<&str> = events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::PhaseEnd { phase, .. } => Some(phase.name()),
                    _ => None,
                })
                .collect();
            names.sort_unstable();
            names.dedup();
            names.len() as u64
        },
        "summary keys one entry per distinct phase"
    );

    let energy: f64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::KernelRun { energy_j, .. } => Some(*energy_j),
            _ => None,
        })
        .sum();
    assert!((s.kernel_energy_j - energy).abs() <= 1e-12 * energy.abs().max(1.0));
    assert!(s.kernel_energy_j > 0.0, "kernels consume energy");

    let latency: u64 = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ClockChange { latency_ns, .. } => Some(*latency_ns),
            _ => None,
        })
        .sum();
    assert_eq!(s.clock_change_latency_ns, latency);
}
