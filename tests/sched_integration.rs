//! Scheduler ↔ runtime integration: jobs that build energy-aware queues on
//! their allocated GPUs, with the nvgpufreq plugin governing who may scale
//! clocks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use synergy::prelude::*;
use synergy::sched::{Cluster, JobRequest, NvGpuFreqPlugin, Slurm, NVGPUFREQ_GRES};

fn scheduler(nodes: usize) -> Slurm {
    let mut s = Slurm::new(Cluster::marconi100(nodes, true));
    s.register_plugin(Box::new(NvGpuFreqPlugin));
    s
}

#[test]
fn job_queue_scales_frequencies_under_plugin() {
    let mut slurm = scheduler(1);
    let success = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&success);
    let job = JobRequest::builder("queue-job", 1000)
        .nodes(1)
        .exclusive()
        .gres(NVGPUFREQ_GRES)
        .payload(move |ctx| {
            let gpu = ctx.nodes[0].gpus[0].clone();
            let queue = Queue::builder(gpu).caller(ctx.caller).frequency(877, 1001).build();
            let ir = IrBuilder::new()
                .ops(Inst::GlobalLoad, 2)
                .ops(Inst::FloatAdd, 1)
                .ops(Inst::GlobalStore, 1)
                .build("job_kernel");
            let ev = queue.submit(move |h| h.parallel_for_modeled(1 << 20, &ir));
            ev.wait_and_throw().expect("plugin granted clock control");
            assert_eq!(ev.execution().unwrap().clocks, ClockConfig::new(877, 1001));
            flag.store(true, Ordering::SeqCst);
        });
    let record = slurm.run(job);
    assert!(record.plugin_log.iter().all(|e| e.applied));
    assert!(success.load(Ordering::SeqCst));
    assert!(record.gpu_energy_j > 0.0, "accounting captured the queue's work");
}

#[test]
fn job_without_gres_cannot_scale_but_still_runs() {
    let mut slurm = scheduler(1);
    let saw_denial = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&saw_denial);
    let job = JobRequest::builder("plain-job", 1000)
        .nodes(1)
        .exclusive()
        .payload(move |ctx| {
            let gpu = ctx.nodes[0].gpus[0].clone();
            let queue = Queue::builder(gpu.clone()).caller(ctx.caller).build();
            let ir = IrBuilder::new().ops(Inst::FloatAdd, 8).build("k");
            // Explicit per-kernel frequency request is denied...
            let ev = queue.submit_with_frequency(877, 1001, move |h| {
                h.parallel_for_modeled(1 << 18, &ir)
            });
            if ev.wait_and_throw().is_err() {
                flag.store(true, Ordering::SeqCst);
            }
            // ...and the kernel ran at default clocks regardless.
            assert_eq!(
                ev.execution().unwrap().clocks,
                gpu.spec().baseline_clocks()
            );
        });
    let record = slurm.run(job);
    assert!(record.plugin_log.iter().all(|e| !e.applied));
    assert!(saw_denial.load(Ordering::SeqCst));
}

#[test]
fn consecutive_jobs_are_isolated() {
    // Job A scales down and leaves clocks dirty; job B must observe a
    // pristine node (the epilogue guarantee of Section 7).
    let mut slurm = scheduler(1);
    slurm.run(
        JobRequest::builder("dirty", 1000)
            .nodes(1)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                let gpu = ctx.nodes[0].gpus[0].clone();
                let queue = Queue::builder(gpu).caller(ctx.caller).frequency(877, 135).build();
                let ir = IrBuilder::new().ops(Inst::FloatMul, 64).build("burn");
                queue
                    .submit(move |h| h.parallel_for_modeled(1 << 20, &ir))
                    .wait_and_throw()
                    .unwrap();
                // No cleanup on purpose.
            }),
    );
    slurm.run(
        JobRequest::builder("clean", 2000)
            .nodes(1)
            .payload(|ctx| {
                let gpu = &ctx.nodes[0].gpus[0];
                assert_eq!(gpu.application_clocks(), None);
                assert_eq!(gpu.effective_clocks(), gpu.spec().baseline_clocks());
            }),
    );
    assert_eq!(slurm.records().len(), 2);
}

#[test]
fn multi_node_job_gets_all_gpus() {
    let mut slurm = scheduler(4);
    let job = JobRequest::builder("wide", 1000)
        .nodes(4)
        .exclusive()
        .gres(NVGPUFREQ_GRES)
        .payload(|ctx| {
            assert_eq!(ctx.gpus().len(), 16);
            for gpu in ctx.gpus() {
                assert!(!gpu.api_restricted(), "plugin unlocked every board");
            }
        });
    let record = slurm.run(job);
    assert_eq!(record.hostnames.len(), 4);
}
