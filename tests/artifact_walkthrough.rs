//! Executes the deployment walkthrough of ARTIFACT.md verbatim: Step 1
//! (train models, compile and persist a registry) and Step 2 (install the
//! plugin, run an opted-in job that scales clocks) — so the documented
//! artifact flow can never rot.

use std::sync::Arc;
use synergy::kernel::{generate_microbench, MicroBenchConfig};
use synergy::prelude::*;
use synergy::sched::{Cluster, JobRequest, NvGpuFreqPlugin, Slurm, NVGPUFREQ_GRES};

#[test]
fn step1_train_compile_persist_reload() {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), 8, 2023);
    let kernels: Vec<_> = synergy::apps::suite()
        .into_iter()
        .take(4)
        .map(|b| b.ir)
        .collect();
    let registry = compile_application(&spec, &models, &kernels, &EnergyTarget::PAPER_SET)
        .expect("suite kernels lint clean");
    assert_eq!(registry.len(), 4 * EnergyTarget::PAPER_SET.len());

    // Persist next to the binaries, reload, and verify it is identical —
    // the compile-once / run-everywhere contract of Section 3.2.
    let json = serde_json::to_string_pretty(&registry).expect("serializes");
    let reloaded: TargetRegistry = serde_json::from_str(&json).expect("parses");
    assert_eq!(reloaded, registry);
}

#[test]
fn step2_plugin_installation_and_opt_in_job() {
    let mut slurm = Slurm::new(Cluster::marconi100(2, /* tagged = */ true));
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));

    // Compile a registry for the job to use (Step 1 output).
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), 16, 1);
    let bench = synergy::apps::by_name("black_scholes").unwrap();
    let registry = Arc::new(
        compile_application(
            &spec,
            &models,
            std::slice::from_ref(&bench.ir),
            &[EnergyTarget::MinEdp],
        )
        .expect("benchmark kernel lints clean"),
    );

    let record = slurm.run(
        JobRequest::builder("artifact-demo", 1000)
            .nodes(1)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(move |ctx| {
                let queue = Queue::builder(ctx.nodes[0].gpus[0].clone())
                    .caller(ctx.caller)
                    .registry(Arc::clone(&registry))
                    .build();
                let items = 1 << 20;
                let ir = bench.ir.clone();
                let ev = queue.submit_with_target(EnergyTarget::MinEdp, move |h| {
                    h.parallel_for_modeled(items, &ir)
                });
                ev.wait_and_throw()
                    .expect("plugin-granted clock control works");
                // The kernel ran at the compiled MIN_EDP frequency, not the
                // default.
                let rec = ev.execution().unwrap();
                assert_ne!(rec.clocks, DeviceSpec::v100().baseline_clocks());
            }),
    );
    assert!(record.plugin_log.iter().all(|e| e.applied));
    // Deployment invariant: the node is pristine afterwards.
    for gpu in &slurm.cluster().nodes[0].node.gpus {
        assert!(gpu.api_restricted());
        assert_eq!(gpu.application_clocks(), None);
    }
}

#[test]
fn verification_commands_match_reality() {
    // ARTIFACT.md tells deployers to run the figure binaries; make sure the
    // binaries it names exist in the bench crate.
    let bench_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/bench/src/bin");
    for name in [
        "fig7_v100_characterization.rs",
        "fig10_scaling.rs",
        "sensitivity_analysis.rs",
    ] {
        assert!(
            bench_dir.join(name).exists(),
            "ARTIFACT.md references missing binary {name}"
        );
    }
}
