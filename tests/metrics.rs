//! Properties of the live metrics plane: log-bucketed histogram merges
//! are associative and lossless, quantile estimates stay within the
//! advertised relative-error bound of an exact sort-and-index, and the
//! OpenMetrics rendering is byte-pinned against a golden fixture
//! (regenerate with `SYNERGY_REGEN_FIXTURES=1 cargo test openmetrics`).

use proptest::prelude::*;
use synergy::telemetry::expose::render_openmetrics;
use synergy::telemetry::{LogHistogram, Metrics, MetricsSnapshot};

/// Values above the histogram's finite range land in the overflow
/// bucket where the relative-error bound intentionally does not hold,
/// so the property tests stay below 2^40 ns (~18 minutes) — far beyond
/// any latency the daemon records.
const MAX_FINITE_NS: u64 = (1u64 << 40) - 1;

fn observed(values: &[u64]) -> LogHistogram {
    let h = LogHistogram::new();
    for &v in values {
        h.observe_ns(v);
    }
    h
}

fn merged(parts: &[&LogHistogram]) -> LogHistogram {
    let m = LogHistogram::new();
    for p in parts {
        m.merge_from(p);
    }
    m
}

/// The same nearest-rank convention `HistogramValues::quantile` uses,
/// computed exactly from the sorted sample.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Merging is exact (bucket-wise addition), so any grouping of the
    /// same observations — one histogram, or shards merged in either
    /// association order — yields identical snapshots.
    #[test]
    fn histogram_merge_is_associative_and_lossless(
        a in prop::collection::vec(0u64..=MAX_FINITE_NS, 0..120),
        b in prop::collection::vec(0u64..=MAX_FINITE_NS, 0..120),
        c in prop::collection::vec(0u64..=MAX_FINITE_NS, 0..120),
    ) {
        let (ha, hb, hc) = (observed(&a), observed(&b), observed(&c));
        let left = merged(&[&merged(&[&ha, &hb]), &hc]);
        let right = merged(&[&ha, &merged(&[&hb, &hc])]);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = observed(&all);
        prop_assert_eq!(left.snapshot_values(), direct.snapshot_values());
        prop_assert_eq!(right.snapshot_values(), direct.snapshot_values());
        let v = direct.snapshot_values();
        prop_assert_eq!(v.count, all.len() as u64);
        prop_assert_eq!(v.sum_ns, all.iter().sum::<u64>());
    }

    /// Every quantile estimate lands within `MAX_RELATIVE_ERROR` of the
    /// exact sort-and-index answer under the same nearest-rank
    /// convention (and is exact below 8 ns, where buckets are unit
    /// width).
    #[test]
    fn histogram_quantiles_stay_within_the_error_bound(
        values in prop::collection::vec(0u64..=MAX_FINITE_NS, 1..300),
    ) {
        let h = observed(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_nearest_rank(&sorted, q) as f64;
            let est = h.quantile(q);
            let bound = exact * LogHistogram::MAX_RELATIVE_ERROR;
            prop_assert!(
                (est - exact).abs() <= bound + 1e-9,
                "q={q}: estimate {est} vs exact {exact} (bound {bound})"
            );
        }
    }

    /// The snapshot's quantile agrees with the live histogram's — the
    /// wire form loses nothing the estimator needs.
    #[test]
    fn snapshot_quantiles_match_the_live_histogram(
        values in prop::collection::vec(0u64..=MAX_FINITE_NS, 1..200),
    ) {
        let h = observed(&values);
        let snap = h.snapshot_values();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(h.quantile(q).to_bits(), snap.quantile(q).to_bits());
        }
    }
}

/// A deterministic snapshot: fixed counters, gauges, one histogram and
/// two energy devices, with the wall-clock-dependent fields pinned.
fn fixture_snapshot() -> MetricsSnapshot {
    let m = Metrics::enabled();
    m.counter("synergy_requests_total", &[("kind", "ping")]).add(3);
    m.counter("synergy_requests_total", &[("kind", "compile")])
        .add(2);
    m.counter("synergy_responses_total", &[]).add(6);
    m.gauge("synergy_queue_depth", &[]).set(5);
    m.gauge("synergy_inflight_requests", &[]).set(2);
    let h = m.histogram("synergy_request_seconds", &[("kind", "compile")]);
    h.observe_ns(1_000); // 1 µs
    h.observe_ns(1_000_000); // 1 ms
    h.observe_ns(250_000_000); // 250 ms
    m.add_energy_joules("v100", 120.0);
    m.add_energy_joules("a100", 30.5);
    let mut snap = m.snapshot();
    // The only nondeterministic inputs are the registry's age; pin them
    // so the rendering is byte-stable.
    snap.uptime_s = 1.5;
    snap.cost.node_seconds = 1.5;
    snap
}

#[test]
fn openmetrics_rendering_matches_the_golden_fixture() {
    let text = render_openmetrics(&fixture_snapshot());

    // Byte-for-byte against the checked-in fixture: scrapers and CI
    // parse this text, so any change to the exposition format must be
    // deliberate and show up in review. Regenerate with
    // `SYNERGY_REGEN_FIXTURES=1 cargo test openmetrics`.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/metrics_golden.om"
    );
    if std::env::var_os("SYNERGY_REGEN_FIXTURES").is_some() {
        std::fs::write(path, &text).expect("write fixture");
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture exists");
    assert_eq!(
        text, golden,
        "OpenMetrics rendering drifted from tests/fixtures/metrics_golden.om; \
         if the change is intended, regenerate the fixture"
    );

    // Structural sanity independent of the exact bytes.
    assert!(text.ends_with("# EOF\n"));
    assert!(text.contains("# TYPE synergy_request_seconds histogram"));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.contains("synergy_requests_total{kind=\"ping\"} 3"));
    assert!(text.contains("synergy_cost_usd_per_kwh 0.12"));
    // Rendering the same snapshot twice is bit-identical.
    assert_eq!(text, render_openmetrics(&fixture_snapshot()));
}
