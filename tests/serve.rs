//! Integration tests for the `synergy-serve` daemon: concurrent mixed
//! workloads come back complete and correct, duplicate in-flight keys
//! coalesce, a tiny queue bound produces `Busy` admission rejections,
//! queue-wait deadlines produce `Expired`, and drain finishes accepted
//! work without stranding any client. Proptest blocks round-trip the
//! wire protocol, fuzz the frame decoder, and check the incremental
//! (reactor-side) decoder against the blocking reader at arbitrary
//! byte-stream split points.

use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use synergy::serve::{
    spawn, Client, Decision, ErrorKind, Json, KindPercentiles, ModelProfile, Request,
    RequestFrame, Response, ResponseFrame, ServeConfig, SweepPoint, WireDiagnostic,
};

fn small_server(config: ServeConfig) -> synergy::serve::ServerHandle {
    spawn(ServeConfig {
        profile: ModelProfile::small(),
        ..config
    })
    .expect("bind loopback")
}

/// N threads x M mixed requests: every request is answered with a
/// response of the matching kind and plausible content.
#[test]
fn mixed_concurrent_load_is_answered_completely_and_correctly() {
    let handle = small_server(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 10;
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..PER_CLIENT {
                    match (c + i) % 4 {
                        0 => {
                            let resp = client
                                .request(Request::Compile {
                                    bench: "vec_add".into(),
                                    device: "v100".into(),
                                    targets: vec!["ES_50".into()],
                                })
                                .expect("transport");
                            match resp {
                                Response::Compiled { device, decisions, .. } => {
                                    assert_eq!(device, "v100");
                                    assert!(!decisions.is_empty());
                                    for d in &decisions {
                                        assert!(d.mem_mhz > 0 && d.core_mhz > 0);
                                    }
                                }
                                other => panic!("expected Compiled, got {other:?}"),
                            }
                        }
                        1 => {
                            let resp = client
                                .request(Request::Sweep {
                                    bench: "sobel3".into(),
                                    device: "v100".into(),
                                })
                                .expect("transport");
                            match resp {
                                Response::SweepFront { configurations, pareto, .. } => {
                                    assert!(configurations > 0);
                                    assert!(!pareto.is_empty());
                                    // Frontier ascends in time and descends in energy.
                                    for w in pareto.windows(2) {
                                        assert!(w[0].time_s <= w[1].time_s);
                                        assert!(w[0].energy_j > w[1].energy_j);
                                    }
                                }
                                other => panic!("expected SweepFront, got {other:?}"),
                            }
                        }
                        2 => {
                            let resp = client
                                .request(Request::Predict {
                                    device: "v100".into(),
                                    features: vec![1.0; synergy::kernel::NUM_FEATURES],
                                    mem_mhz: 877,
                                    core_mhz: 1312,
                                })
                                .expect("transport");
                            match resp {
                                Response::Predicted { time_s, energy_j, .. } => {
                                    assert!(time_s.is_finite());
                                    assert!(energy_j.is_finite());
                                }
                                other => panic!("expected Predicted, got {other:?}"),
                            }
                        }
                        _ => {
                            assert!(matches!(
                                client.ping().expect("transport"),
                                Response::Pong
                            ));
                        }
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }
    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.connections, CLIENTS as u64);
    assert!(stats.responses >= (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.busy_rejections, 0);
    assert_eq!(stats.expired, 0);
}

/// Identical concurrent requests collapse onto one computation: with a
/// synthetic service time long enough to hold the key in flight, the
/// followers join the leader instead of recomputing.
#[test]
fn duplicate_inflight_keys_coalesce() {
    let handle = small_server(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        compute_delay: Duration::from_millis(60),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let joins: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resp = client
                    .request(Request::Compile {
                        bench: "mat_mul".into(),
                        device: "v100".into(),
                        targets: vec!["MIN_EDP".into()],
                    })
                    .expect("transport");
                match resp {
                    Response::Compiled { decisions, .. } => decisions,
                    other => panic!("expected Compiled, got {other:?}"),
                }
            })
        })
        .collect();
    let all: Vec<Vec<Decision>> = joins
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect();
    // Every caller sees the same decisions, leader or joiner.
    for d in &all[1..] {
        assert_eq!(d, &all[0]);
    }
    handle.drain();
    let stats = handle.join();
    assert!(
        stats.coalesce_joins > 0,
        "8 identical in-flight requests should coalesce, stats: {stats:?}"
    );
    assert_eq!(stats.coalesce_joins + stats.coalesce_leaders, 8);
}

/// A tiny queue bound sheds load as `Busy{retry_after}` instead of
/// queueing without limit; retried requests eventually succeed.
#[test]
fn tiny_queue_bound_rejects_with_busy() {
    let handle = small_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 5,
        compute_delay: Duration::from_millis(40),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    // Distinct benches so coalescing cannot absorb the burst.
    let benches = ["vec_add", "sobel3", "mat_mul", "lud", "kmeans", "nbody"];
    let joins: Vec<_> = benches
        .into_iter()
        .map(|b| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut busy = 0u64;
                loop {
                    let resp = client
                        .request(Request::Sweep {
                            bench: b.to_string(),
                            device: "v100".into(),
                        })
                        .expect("transport");
                    match resp {
                        Response::Busy { retry_after_ms } => {
                            assert_eq!(retry_after_ms, 5);
                            busy += 1;
                            thread::sleep(Duration::from_millis(retry_after_ms));
                        }
                        Response::SweepFront { .. } => return busy,
                        other => panic!("expected SweepFront or Busy, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    let busy_seen: u64 = joins
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .sum();
    handle.drain();
    let stats = handle.join();
    assert!(
        busy_seen > 0 && stats.busy_rejections == busy_seen,
        "six concurrent 40ms jobs against a 1-deep queue must shed load \
         (clients saw {busy_seen}, server counted {})",
        stats.busy_rejections
    );
}

/// A request whose queue-wait deadline elapses before a worker picks it
/// up comes back as `Expired`, not as a late result.
#[test]
fn stale_queued_requests_expire() {
    let handle = small_server(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        compute_delay: Duration::from_millis(80),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    // First request occupies the single worker; the rest sit in the
    // queue past their 1ms deadlines.
    let benches = ["vec_add", "sobel3", "mat_mul", "lud"];
    let joins: Vec<_> = benches
        .into_iter()
        .map(|b| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .request_with_deadline(
                        Request::Sweep {
                            bench: b.to_string(),
                            device: "v100".into(),
                        },
                        1,
                    )
                    .expect("transport")
            })
        })
        .collect();
    let responses: Vec<Response> = joins
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect();
    handle.drain();
    let stats = handle.join();
    let expired = responses
        .iter()
        .filter(|r| matches!(r, Response::Expired { .. }))
        .count() as u64;
    assert!(
        expired > 0,
        "queued 80ms jobs with 1ms deadlines must expire, got {responses:?}"
    );
    assert_eq!(stats.expired, expired);
    for r in &responses {
        assert!(
            matches!(r, Response::Expired { .. } | Response::SweepFront { .. }),
            "unexpected response {r:?}"
        );
    }
}

/// Bad requests produce structured errors, not hangups: unknown
/// benchmarks and wrong-arity feature vectors keep the connection
/// usable.
#[test]
fn malformed_requests_get_structured_errors() {
    let handle = small_server(ServeConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client
        .request(Request::Compile {
            bench: "no_such_kernel".into(),
            device: "v100".into(),
            targets: vec![],
        })
        .expect("transport")
    {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::BadRequest);
            assert!(message.contains("no_such_kernel"));
        }
        other => panic!("expected Error, got {other:?}"),
    }
    match client
        .request(Request::Predict {
            device: "v100".into(),
            features: vec![1.0; 3],
            mem_mhz: 877,
            core_mhz: 1312,
        })
        .expect("transport")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected Error, got {other:?}"),
    }
    // The connection survives both errors.
    assert!(matches!(client.ping().expect("transport"), Response::Pong));
    handle.drain();
    handle.join();
}

/// Drain finishes accepted work: clients in flight at drain time get
/// real answers or an explicit `Draining` rejection — nobody hangs.
#[test]
fn drain_leaves_no_stuck_clients() {
    let handle = small_server(ServeConfig {
        workers: 2,
        queue_capacity: 32,
        compute_delay: Duration::from_millis(10),
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let joins: Vec<_> = (0..6)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut outcomes = Vec::new();
                for _ in 0..6 {
                    match client.request(Request::Compile {
                        bench: "vec_add".into(),
                        device: "v100".into(),
                        targets: vec!["ES_50".into()],
                    }) {
                        Ok(resp) => {
                            assert!(
                                matches!(
                                    resp,
                                    Response::Compiled { .. } | Response::Draining { .. }
                                ),
                                "client {c}: unexpected response {resp:?}"
                            );
                            outcomes.push(resp);
                        }
                        // The reader may hang up once the server shuts
                        // down; that is a clean refusal, not a hang.
                        Err(_) => break,
                    }
                }
                outcomes
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(30));
    handle.drain();
    // Every client thread terminates promptly — accepted work was
    // finished and new work was refused, so join cannot deadlock.
    for j in joins {
        j.join().expect("client thread");
    }
    let stats = handle.join();
    assert!(stats.draining);
    assert_eq!(stats.queue_depth, 0, "drain left work queued: {stats:?}");
}

/// The live metrics plane agrees with the traffic that produced it:
/// per-kind request counters and latency histograms match the requests
/// sent, sweep energy rolls into the cost counters, and the same
/// snapshot renders as valid OpenMetrics text.
#[test]
fn metrics_scrape_is_consistent_with_traffic() {
    let handle = small_server(ServeConfig {
        workers: 2,
        queue_capacity: 32,
        metrics: synergy::telemetry::Metrics::enabled(),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    const PINGS: u64 = 3;
    const COMPILES: u64 = 2;
    for _ in 0..PINGS {
        assert!(matches!(client.ping().expect("transport"), Response::Pong));
    }
    for bench in ["vec_add", "sobel3"] {
        assert!(matches!(
            client.compile(bench, "v100", &["ES_50"]).expect("transport"),
            Response::Compiled { .. }
        ));
    }
    assert!(matches!(
        client.sweep("mat_mul", "v100").expect("transport"),
        Response::SweepFront { .. }
    ));

    let snapshot = match client.metrics().expect("transport") {
        Response::MetricsReply { snapshot } => snapshot,
        other => panic!("expected MetricsReply, got {other:?}"),
    };
    let snap = synergy::serve::snapshot_from_wire(&snapshot).expect("well-formed snapshot");

    // Per-kind request counters match the traffic exactly.
    for (kind, n) in [("ping", PINGS), ("compile", COMPILES), ("sweep", 1)] {
        assert_eq!(
            snap.counter_value("synergy_requests_total", &[("kind", kind)]),
            Some(n as f64),
            "kind {kind}"
        );
    }
    // The scrape itself was counted before the snapshot was taken.
    assert_eq!(
        snap.counter_value("synergy_requests_total", &[("kind", "metrics")]),
        Some(1.0)
    );
    assert_eq!(
        snap.counter_value("synergy_connections_total", &[]),
        Some(1.0)
    );
    assert_eq!(
        snap.counter_value("synergy_enqueued_total", &[]),
        Some((COMPILES + 1) as f64),
        "data-plane admissions"
    );

    // End-to-end latency histograms saw one observation per request, all
    // with nonzero recorded time; queue-wait saw the data-plane ones.
    for (kind, n) in [("ping", PINGS), ("compile", COMPILES), ("sweep", 1)] {
        let h = snap
            .histogram_values("synergy_request_seconds", &[("kind", kind)])
            .unwrap_or_else(|| panic!("missing e2e histogram for {kind}"));
        assert_eq!(h.count, n, "e2e observations for {kind}");
        assert!(h.sum_ns > 0);
        assert!(h.quantile(0.99) > 0.0);
    }
    let qw = snap
        .histogram_values("synergy_queue_wait_seconds", &[("kind", "compile")])
        .expect("queue-wait histogram");
    assert_eq!(qw.count, COMPILES);
    let svc = snap
        .histogram_values("synergy_service_seconds", &[("kind", "sweep")])
        .expect("service histogram");
    assert_eq!(svc.count, 1);

    // The sweep's measured energy rolled into the fleet cost counters.
    assert!(snap.cost.total_joules > 0.0, "cost: {:?}", snap.cost);
    assert!(snap.cost.tco_usd > 0.0);
    assert!(snap
        .counters
        .iter()
        .any(|s| s.name == "synergy_device_energy_joules_total" && s.value > 0.0));

    // The grafted gauges/counters are present and sane.
    assert_eq!(
        snap.counter_value("synergy_recorder_dropped_events_total", &[]),
        Some(0.0)
    );
    assert!(snap
        .counter_value("synergy_model_store_misses_total", &[])
        .is_some());

    // The very same snapshot renders as OpenMetrics exposition text.
    let text = synergy::telemetry::expose::render_openmetrics(&snap);
    assert!(text.ends_with("# EOF\n"), "exposition must be terminated");
    assert!(text.contains("synergy_requests_total{kind=\"ping\"} 3"));
    assert!(text.contains("# TYPE synergy_request_seconds histogram"));
    assert!(text.contains("synergy_cost_tco_usd"));

    handle.drain();
    let stats = handle.join();
    assert_eq!(stats.errors, 0);
}

// ---------------------------------------------------------------------------
// Wire-protocol proptests (satellite): encode → frame → decode is
// bit-identical for arbitrary frames, and the decoder rejects oversized
// and garbage input without panicking.
// ---------------------------------------------------------------------------

/// Name pool with JSON-hostile content: quotes, backslashes, control
/// characters, non-ASCII and astral-plane scalars.
const TRICKY: [&str; 7] = [
    "plain",
    "with \"quotes\"",
    "back\\slash",
    "line\nbreak\ttab",
    "unicode-éναι",
    "astral-\u{1F600}",
    "ctl-\u{1}\u{1f}",
];

fn arb_name() -> impl Strategy<Value = String> {
    (0usize..TRICKY.len(), 0u32..1000)
        .prop_map(|(i, n)| format!("{}-{n}", TRICKY[i]))
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0usize..7, arb_name(), arb_name()),
        prop::collection::vec(arb_name(), 0..4),
        (
            prop::collection::vec(-1e300f64..1e300, 0..12),
            0u32..4000,
            0u32..4000,
        ),
    )
        .prop_map(
            |((variant, bench, device), targets, (features, mem_mhz, core_mhz))| match variant {
                0 => Request::Ping,
                1 => Request::Stats,
                2 => Request::Metrics,
                3 => Request::Drain,
                4 => Request::Compile {
                    bench,
                    device,
                    targets,
                },
                5 => Request::Sweep { bench, device },
                _ => Request::Predict {
                    device,
                    features,
                    mem_mhz,
                    core_mhz,
                },
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0usize..10, arb_name(), arb_name()),
        (
            prop::collection::vec((arb_name(), arb_name(), 1u32..2000, 1u32..2000), 0..4),
            prop::collection::vec(
                (1u32..2000, 1u32..2000, 0f64..1e3, 0f64..1e6),
                0..5,
            ),
        ),
        (
            prop::collection::vec((arb_name(), arb_name(), arb_name(), arb_name()), 0..3),
            (0u64..u64::MAX / 2, 0u64..100_000, 0f64..1e9),
        ),
    )
        .prop_map(
            |(
                (variant, name_a, name_b),
                (decisions, points),
                (diags, (big, small_n, metric)),
            )| {
                match variant {
                    0 => Response::Pong,
                    1 => Response::Compiled {
                        device: name_a,
                        coalesced: big % 2 == 0,
                        decisions: decisions
                            .into_iter()
                            .map(|(kernel, target, mem_mhz, core_mhz)| Decision {
                                kernel,
                                target,
                                mem_mhz,
                                core_mhz,
                            })
                            .collect(),
                    },
                    2 => Response::Predicted {
                        time_s: metric,
                        energy_j: metric * 2.0,
                        edp: metric * 3.0,
                        ed2p: metric * 4.0,
                    },
                    3 => Response::SweepFront {
                        device: name_a,
                        bench: name_b,
                        configurations: big,
                        pareto: points
                            .into_iter()
                            .map(|(mem_mhz, core_mhz, time_s, energy_j)| SweepPoint {
                                mem_mhz,
                                core_mhz,
                                time_s,
                                energy_j,
                            })
                            .collect(),
                    },
                    4 => Response::StatsReply {
                        connections: big,
                        enqueued: big / 2,
                        busy_rejections: small_n,
                        expired: small_n / 3,
                        responses: big / 4,
                        coalesce_leaders: small_n / 2,
                        coalesce_joins: small_n / 5,
                        lint_denials: small_n / 7,
                        errors: small_n / 9,
                        queue_depth: small_n % 64,
                        queue_depth_max: small_n % 128,
                        draining: big % 2 == 1,
                        percentiles: vec![
                            KindPercentiles {
                                kind: name_a,
                                p50_ms: metric,
                                p95_ms: metric * 2.0,
                                p99_ms: metric * 3.0,
                            },
                            KindPercentiles {
                                kind: name_b,
                                p50_ms: 0.0,
                                p95_ms: 0.25,
                                p99_ms: metric,
                            },
                        ],
                    },
                    5 => Response::MetricsReply {
                        snapshot: Json::obj(vec![
                            ("uptime_s", Json::Num(metric)),
                            (
                                "counters",
                                Json::Arr(vec![Json::obj(vec![
                                    ("name", Json::Str(name_a)),
                                    (
                                        "labels",
                                        Json::Arr(vec![Json::Arr(vec![
                                            Json::Str("kind".into()),
                                            Json::Str(name_b),
                                        ])]),
                                    ),
                                    ("value", Json::Int(big as i128)),
                                ])]),
                            ),
                        ]),
                    },
                    6 => Response::Busy {
                        retry_after_ms: small_n,
                    },
                    7 => Response::Draining { pending: small_n },
                    8 => Response::Expired { waited_ms: small_n },
                    _ => Response::Error {
                        kind: match big % 3 {
                            0 => ErrorKind::BadRequest,
                            1 => ErrorKind::LintDeny,
                            _ => ErrorKind::Internal,
                        },
                        message: name_b,
                        diagnostics: diags
                            .into_iter()
                            .map(|(code, severity, path, message)| WireDiagnostic {
                                code,
                                severity,
                                path,
                                message,
                            })
                            .collect(),
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request frames survive encode → length-prefixed framing → decode
    /// bit-identically, for hostile strings and extreme numbers.
    #[test]
    fn request_frames_round_trip(id in 0u64..u64::MAX, deadline_ms in 0u64..u64::MAX / 2, req in arb_request()) {
        let frame = RequestFrame { id, deadline_ms, req };
        let payload = frame.encode();
        let mut wire = Vec::new();
        synergy::serve::write_frame(&mut wire, &payload).expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        let read = synergy::serve::read_frame(&mut cursor).expect("read");
        prop_assert_eq!(&read, &payload);
        let decoded = RequestFrame::decode(&read).expect("decode");
        prop_assert_eq!(decoded, frame);
    }

    /// Response frames survive the same round trip.
    #[test]
    fn response_frames_round_trip(id in 0u64..u64::MAX, resp in arb_response()) {
        let frame = ResponseFrame { id, resp };
        let payload = frame.encode();
        let decoded = ResponseFrame::decode(&payload).expect("decode");
        prop_assert_eq!(decoded, frame);
    }

    /// Arbitrary garbage never panics the decoder: it errors or — for
    /// the rare accidentally-valid input — decodes.
    #[test]
    fn garbage_bytes_never_panic_the_decoder(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = RequestFrame::decode(&bytes);
        let _ = ResponseFrame::decode(&bytes);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = synergy::serve::read_frame(&mut cursor);
    }

    /// A frame header claiming more than `MAX_FRAME_LEN` is rejected
    /// before any allocation, whatever follows it.
    #[test]
    fn oversized_frames_are_rejected(extra in 1u32..1_000_000, tail in prop::collection::vec(0u8..=255, 0..64)) {
        let claimed = synergy::serve::MAX_FRAME_LEN as u32 + extra;
        let mut wire = claimed.to_be_bytes().to_vec();
        wire.extend_from_slice(&tail);
        let mut cursor = std::io::Cursor::new(wire);
        prop_assert!(matches!(
            synergy::serve::read_frame(&mut cursor),
            Err(synergy::serve::FrameError::TooLarge { .. })
        ));
    }
}

// --- Incremental frame decoder (the reactor's read path) ---------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental decoder reassembles frames bit-identically to the
    /// blocking whole-frame reader no matter where the byte stream is
    /// cut: headers split mid-length-prefix, payloads fragmented, and
    /// several frames coalesced into one read all yield the same frame
    /// sequence.
    #[test]
    fn incremental_decoder_is_split_invariant(
        payloads in prop::collection::vec(prop::collection::vec(0u8..=255, 0..300), 0..6),
        cuts in prop::collection::vec(1usize..600, 1..12),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&synergy::serve::frame_bytes(p));
        }

        // Reference: the blocking reader over the same byte stream.
        let mut cursor = std::io::Cursor::new(wire.clone());
        let mut reference: Vec<Vec<u8>> = Vec::new();
        while let Ok(p) = synergy::serve::read_frame(&mut cursor) {
            reference.push(p);
        }
        prop_assert_eq!(&reference, &payloads);

        // Incremental: the same bytes arriving in arbitrary chunks.
        let mut buf = synergy::serve::FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let (mut at, mut cut) = (0usize, 0usize);
        while at < wire.len() {
            let n = cuts[cut % cuts.len()].min(wire.len() - at);
            cut += 1;
            buf.extend(&wire[at..at + n]);
            at += n;
            while let Some(p) = buf.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        prop_assert_eq!(&got, &payloads);
        prop_assert_eq!(buf.pending(), 0);
    }

    /// One-byte trickle: worst-case fragmentation still yields the frame,
    /// and never a moment earlier than the final byte.
    #[test]
    fn incremental_decoder_survives_one_byte_trickle(
        payload in prop::collection::vec(0u8..=255, 0..600),
    ) {
        let wire = synergy::serve::frame_bytes(&payload);
        let mut buf = synergy::serve::FrameBuffer::new();
        let mut got: Option<Vec<u8>> = None;
        for (i, b) in wire.iter().enumerate() {
            buf.extend(std::slice::from_ref(b));
            if let Some(p) = buf.next_frame().unwrap() {
                prop_assert_eq!(i, wire.len() - 1, "frame completed before its last byte");
                got = Some(p.to_vec());
            }
        }
        prop_assert_eq!(got.as_deref(), Some(payload.as_slice()));
    }

    /// An oversized length prefix is rejected as soon as the header is
    /// readable — before the claimed payload is buffered — with an error,
    /// never a panic or an allocation of the claimed size.
    #[test]
    fn incremental_decoder_rejects_oversized_headers(
        extra in 1u32..1_000_000,
        tail in prop::collection::vec(0u8..=255, 0..64),
    ) {
        let claimed = synergy::serve::MAX_FRAME_LEN as u32 + extra;
        let mut buf = synergy::serve::FrameBuffer::new();
        buf.extend(&claimed.to_be_bytes());
        buf.extend(&tail);
        prop_assert!(matches!(
            buf.next_frame(),
            Err(synergy::serve::FrameError::TooLarge { .. })
        ));
    }

    /// Arbitrary garbage fed incrementally never panics the decoder:
    /// every step either waits for more bytes, yields a (garbage) frame,
    /// or rejects an oversized claim — after which the server would drop
    /// the connection.
    #[test]
    fn incremental_decoder_survives_garbage(
        bytes in prop::collection::vec(0u8..=255, 0..512),
        cuts in prop::collection::vec(1usize..16, 1..8),
    ) {
        let mut buf = synergy::serve::FrameBuffer::new();
        let (mut at, mut cut) = (0usize, 0usize);
        'feed: while at < bytes.len() {
            let n = cuts[cut % cuts.len()].min(bytes.len() - at);
            cut += 1;
            buf.extend(&bytes[at..at + n]);
            at += n;
            loop {
                match buf.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => break 'feed,
                }
            }
        }
    }
}
