//! Suite-wide characterization invariants across all 23 benchmarks on
//! both evaluation devices (the backbone of Figures 2, 7 and 8).

use synergy::metrics::{is_pareto_optimal, point_at, EnergyTarget};
use synergy::prelude::*;
use synergy::rt::measured_sweep;

#[test]
fn every_benchmark_characterizes_on_v100() {
    let spec = DeviceSpec::v100();
    for bench in synergy::apps::suite() {
        let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
        assert_eq!(sweep.len(), 196, "{}", bench.name);
        assert!(
            sweep.iter().all(|p| p.is_physical()),
            "{}: non-physical point",
            bench.name
        );
        let front = pareto_front(&sweep);
        assert!(!front.is_empty(), "{}", bench.name);
        // Every paper target must resolve.
        for target in EnergyTarget::PAPER_SET {
            let sel = synergy::metrics::search_optimal(target, &sweep, spec.baseline_clocks());
            assert!(sel.is_some(), "{}: {target}", bench.name);
        }
    }
}

#[test]
fn mi100_default_is_fastest_for_all_benchmarks() {
    // The paper's Section 8.2 finding, across the whole suite.
    let spec = DeviceSpec::mi100();
    for bench in synergy::apps::suite() {
        let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
        let base = point_at(&sweep, spec.baseline_clocks()).unwrap();
        let fastest = sweep
            .iter()
            .map(|p| p.time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            base.time_s <= fastest * 1.0 + 1e-12,
            "{}: default must be fastest on MI100",
            bench.name
        );
        assert!(is_pareto_optimal(&base, &sweep), "{}", bench.name);
    }
}

#[test]
fn v100_offers_more_tradeoff_space_than_mi100_defaults() {
    // "There exists more space to find performance-energy tradeoffs on
    // NVIDIA V100": the V100 default is strictly slower than its fastest
    // configuration for compute-bound kernels.
    let spec = DeviceSpec::v100();
    let bench = synergy::apps::by_name("sobel3").unwrap();
    let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
    let base = point_at(&sweep, spec.baseline_clocks()).unwrap();
    let fastest = sweep.iter().map(|p| p.time_s).fold(f64::INFINITY, f64::min);
    assert!(
        fastest < base.time_s * 0.95,
        "V100 default leaves >5% performance on the table for sobel3"
    );
}

#[test]
fn boundedness_labels_match_model() {
    use synergy::apps::Boundedness;
    let spec = DeviceSpec::v100();
    for bench in synergy::apps::suite() {
        let info = synergy::kernel::extract(&bench.ir);
        let wl = synergy::sim::Workload::from_static(&info, bench.work_items);
        let t = synergy::sim::evaluate(&spec, &wl, spec.baseline_clocks());
        match bench.bound {
            Boundedness::MemoryBound => assert!(
                t.is_memory_bound(),
                "{} labelled memory-bound but model says compute",
                bench.name
            ),
            Boundedness::ComputeBound => assert!(
                !t.is_memory_bound(),
                "{} labelled compute-bound but model says memory",
                bench.name
            ),
            Boundedness::Mixed => {} // either side is fine at default clocks
        }
    }
}

#[test]
fn energy_savings_vary_across_the_suite() {
    // Fine-grained tuning only makes sense if kernels differ; the suite
    // must span a wide range of achievable savings.
    let spec = DeviceSpec::v100();
    let mut savings: Vec<f64> = synergy::apps::suite()
        .iter()
        .map(|bench| {
            let sweep = measured_sweep(&spec, &bench.ir, bench.work_items);
            let base = point_at(&sweep, spec.baseline_clocks()).unwrap();
            let min_e = sweep.iter().map(|p| p.energy_j).fold(f64::INFINITY, f64::min);
            1.0 - min_e / base.energy_j
        })
        .collect();
    savings.sort_by(f64::total_cmp);
    let spread = savings.last().unwrap() - savings.first().unwrap();
    assert!(
        spread > 0.10,
        "suite savings spread {spread:.3} too narrow for fine-grained tuning to matter"
    );
}
