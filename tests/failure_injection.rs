//! Failure injection across the stack: broken NVML on one node, controller
//! outages, unsupported clock requests, permission races — the system must
//! degrade exactly the way the paper's plugin design intends (skip, never
//! crash, never leave a node dirty).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use synergy::prelude::*;
use synergy::sched::{
    Cluster, ClusterNode, ControllerStatus, JobRequest, NvGpuFreqPlugin, Slurm, NVGPUFREQ_GRES,
};
use synergy::sim::SimNode;

fn gres() -> Vec<String> {
    vec![NVGPUFREQ_GRES.to_string()]
}

#[test]
fn broken_nvml_on_one_node_skips_only_that_node() {
    let mut cluster = Cluster::new();
    cluster.add_node(ClusterNode::new(SimNode::marconi100("good"), gres()));
    let mut bad = ClusterNode::new(SimNode::marconi100("bad"), gres());
    bad.nvml_available = false;
    cluster.add_node(bad);

    let mut slurm = Slurm::new(cluster);
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));

    let record = slurm.run(
        JobRequest::builder("mixed", 1000)
            .nodes(2)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                // Good node: clocks scalable; bad node: permission denied.
                let good = &ctx.nodes[0].gpus[0];
                let bad = &ctx.nodes[1].gpus[0];
                assert!(!good.api_restricted());
                assert!(bad.api_restricted());
            }),
    );
    let applied: Vec<bool> = record.plugin_log.iter().map(|e| e.applied).collect();
    assert_eq!(applied, vec![true, false]);
    assert!(record.plugin_log[1]
        .reason
        .as_deref()
        .unwrap()
        .contains("NVML"));
}

#[test]
fn controller_outage_mid_stream_affects_only_new_jobs() {
    let mut slurm = Slurm::new(Cluster::marconi100(1, true));
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));

    let ok = slurm
        .run(
            JobRequest::builder("before", 1)
                .exclusive()
                .gres(NVGPUFREQ_GRES)
                .payload(|_| {}),
        )
        .plugin_log
        .iter()
        .all(|e| e.applied);
    assert!(ok);

    slurm.set_controller_status(ControllerStatus::Unreachable);
    let denied = slurm
        .run(
            JobRequest::builder("during", 1)
                .exclusive()
                .gres(NVGPUFREQ_GRES)
                .payload(|_| {}),
        )
        .plugin_log
        .iter()
        .all(|e| !e.applied);
    assert!(denied);

    slurm.set_controller_status(ControllerStatus::Reachable);
    let ok_again = slurm
        .run(
            JobRequest::builder("after", 1)
                .exclusive()
                .gres(NVGPUFREQ_GRES)
                .payload(|_| {}),
        )
        .plugin_log
        .iter()
        .all(|e| e.applied);
    assert!(ok_again);
}

#[test]
fn unsupported_clock_requests_fail_cleanly_and_kernels_still_run() {
    let dev = SimDevice::new(DeviceSpec::v100(), 0);
    dev.set_api_restriction(false);
    let queue = Queue::new(Arc::clone(&dev));
    let ir = IrBuilder::new().ops(Inst::FloatAdd, 4).build("k");
    // Memory clock that does not exist on V100.
    let ev = queue.submit_with_frequency(1215, 1410, |h| h.parallel_for_modeled(1 << 16, &ir));
    let err = ev.wait_and_throw().unwrap_err();
    assert!(matches!(err, synergy::hal::HalError::UnsupportedClock(_)));
    // The kernel executed at the device's current clocks regardless.
    assert_eq!(ev.execution().unwrap().clocks, dev.spec().baseline_clocks());
}

#[test]
fn queue_survives_many_denied_requests() {
    // A restricted device: every frequency request is denied; the queue
    // must keep executing and profiling correctly.
    let dev = SimDevice::new(DeviceSpec::v100(), 0);
    let queue = Queue::new(dev);
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::FloatAdd, 1)
        .ops(Inst::GlobalStore, 1)
        .build("denied");
    let denials = AtomicUsize::new(0);
    let mut events = Vec::new();
    for i in 0..50 {
        let core = 135 + (i * 7) % 1300;
        events.push(queue.submit_with_frequency(877, core as u32, |h| {
            h.parallel_for_modeled(1 << 14, &ir)
        }));
    }
    for ev in &events {
        if ev.wait_and_throw().is_err() {
            denials.fetch_add(1, Ordering::Relaxed);
        }
        assert!(ev.execution().is_some());
    }
    assert_eq!(denials.load(Ordering::Relaxed), 50);
    assert!(queue.device_energy_consumption() > 0.0);
}

#[test]
fn node_restored_even_when_job_panics_are_contained_by_design() {
    // The scheduler runs payloads synchronously; a payload that takes an
    // early return (simulating an aborted job) must still hit the epilogue.
    let mut slurm = Slurm::new(Cluster::marconi100(1, true));
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));
    slurm.run(
        JobRequest::builder("aborted", 1000)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                let dev = &ctx.nodes[0].gpus[0];
                dev.set_application_clocks(ClockConfig::new(877, 135)).unwrap();
                // "crash" — return without cleanup.
            }),
    );
    let gpu = &slurm.cluster().nodes[0].node.gpus[0];
    assert!(gpu.api_restricted());
    assert_eq!(gpu.application_clocks(), None);
}

#[test]
fn mixed_vendor_cluster_isolates_management_libraries() {
    let mut cluster = Cluster::new();
    cluster.add_node(ClusterNode::new(SimNode::marconi100("nv"), gres()));
    cluster.add_node(ClusterNode::new(SimNode::amd_node("amd"), gres()));
    let mut slurm = Slurm::new(cluster);
    slurm.register_plugin(Box::new(NvGpuFreqPlugin));
    let record = slurm.run(
        JobRequest::builder("mixed-vendor", 1000)
            .nodes(2)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                // NVML sees only the NVIDIA node's boards.
                let nvml_nv = Nvml::init(&ctx.nodes[0].gpus);
                let nvml_amd = Nvml::init(&ctx.nodes[1].gpus);
                assert_eq!(nvml_nv.device_count(), 4);
                assert_eq!(nvml_amd.device_count(), 0);
                // The AMD board answers through ROCm SMI instead.
                let smi = RocmSmi::init(&ctx.nodes[1].gpus);
                assert_eq!(smi.device_count(), 1);
            }),
    );
    // The nvgpufreq plugin applied on both nodes (it inspects, then
    // unlocks whatever NVIDIA boards exist — zero on the AMD node).
    assert!(record.plugin_log.iter().all(|e| e.applied));
}
