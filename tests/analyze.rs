//! Integration coverage for the `synergy-analyze` lint framework: every
//! built-in lint code fires on a crafted defect and stays quiet on healthy
//! inputs, level overrides promote and silence lints, deny-level findings
//! abort `compile_application`, the interval abstract interpreter's
//! envelopes contain the extraction pass's point estimates for the whole
//! suite (and for arbitrary generated IR trees), SARIF export matches a
//! golden fixture byte for byte, the ratcheting baseline catches both
//! regressions and drift, and the whole 23-benchmark suite lints
//! warn-clean end to end through the CLI entry points.

use proptest::prelude::*;
use synergy::analyze::{
    expected_row_len, interpret, AbsIntConfig, Baseline, Level, LintRegistry, Report,
    SuiteReport,
};
use synergy::kernel::{
    extract, generate_microbench, Inst, IrBuilder, KernelIr, MicroBenchConfig, Stmt, TripCount,
    NUM_FEATURES,
};
use synergy::metrics::{EnergyTarget, MetricPoint};
use synergy::ml::{Algorithm, MetricModels, ModelSelection, SweepSample};
use synergy::rt::{
    compile_application, compile_application_with_lints, train_device_models,
    CACHE_FORMAT_VERSION,
};
use synergy::sim::{ClockConfig, DeviceSpec};

fn lints() -> LintRegistry {
    LintRegistry::with_builtin()
}

/// A kernel no lint has anything to say about.
fn healthy_kernel() -> KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
        .ops(Inst::GlobalStore, 1)
        .build("healthy")
}

/// A physically-shaped training set over NUM_FEATURES-wide vectors and the
/// V100 clock range: time follows the 1/f compute law, power a DVFS cubic.
fn samples() -> Vec<SweepSample> {
    let mut out = Vec::new();
    for k in [1.0f64, 4.0, 16.0] {
        for step in 0..16 {
            let core = 135.0 + step as f64 * 93.0;
            let fhat = core / 1530.0;
            let mut features = vec![0.0; NUM_FEATURES];
            features[0] = k;
            features[8] = 2.0;
            let time = (0.2 * k + 0.3) / fhat + 0.05;
            let power = 40.0 + 200.0 * fhat * fhat * fhat;
            out.push(SweepSample {
                features,
                core_mhz: core,
                mem_mhz: 877.0,
                time_s: time,
                energy_j: power * time,
            });
        }
    }
    out
}

fn linear_models(samples: &[SweepSample], f_max: f64) -> MetricModels {
    MetricModels::train(ModelSelection::uniform(Algorithm::Linear), samples, f_max, 0)
}

fn point(core: u32, t: f64, e: f64) -> MetricPoint {
    MetricPoint::new(ClockConfig::new(877, core), t, e)
}

fn healthy_sweep() -> Vec<MetricPoint> {
    vec![
        point(400, 4.0, 8.0),
        point(600, 3.0, 6.0),
        point(800, 2.5, 5.0),
        point(1000, 2.2, 5.5),
        point(1312, 1.9, 7.5),
        point(1530, 1.8, 9.0),
    ]
}

#[test]
fn catalog_lists_all_builtin_codes_in_family_order() {
    let catalog = lints().catalog();
    let codes: Vec<&str> = catalog.iter().map(|(c, _, _)| *c).collect();
    let expected = [
        "IR001", "IR002", "IR003", "IR004", "IR005", "IR006", "IR007", "IR008", "IR009",
        "IR010", "IR011", "SW001", "SW002", "SW003", "SW004", "SW005", "SW006", "SW007",
        "ML001", "ML002", "ML003", "ML004", "ML005", "ML006", "IR101", "IR102", "IR103",
        "IR104",
    ];
    assert_eq!(codes, expected);
    for (code, summary, _) in catalog {
        assert!(!summary.is_empty(), "{code} has no summary");
    }
}

#[test]
fn findings_carry_tree_addressed_paths() {
    let k = IrBuilder::new()
        .ops(Inst::IntAdd, 1)
        .loop_n(4, |b| b.ops(Inst::FloatAdd, 1).ops(Inst::IntMul, 0))
        .build("nested");
    let rep = lints().check_kernel(&k);
    assert_eq!(rep.codes(), vec!["IR001"]);
    assert_eq!(rep.diagnostics[0].path, "body[1].loop.body[1]");

    let k = IrBuilder::new()
        .branch(
            0.5,
            |b| b.loop_n(2, |b| b.ops(Inst::FloatMul, 0)),
            |b| b.ops(Inst::FloatAdd, 1),
        )
        .build("branchy");
    let rep = lints().check_kernel(&k);
    assert_eq!(rep.diagnostics[0].path, "body[0].branch.then[0].loop.body[0]");
    let line = rep.render();
    assert!(line.contains("error[IR001]"), "render:\n{line}");

    // Per-kernel scoping for whole-application reports.
    let scoped = lints().check_kernel(&k).prefixed("branchy");
    assert!(scoped.diagnostics[0].path.starts_with("branchy.body[0]"));
}

#[test]
fn every_ir_lint_has_a_trigger_and_healthy_kernels_stay_clean() {
    let clean = lints().check_kernel(&healthy_kernel());
    assert!(clean.is_clean(), "unexpected findings:\n{}", clean.render());

    let zero_op = IrBuilder::new()
        .ops(Inst::FloatAdd, 0)
        .ops(Inst::FloatAdd, 1)
        .build("zero_op");
    let nan_trip = IrBuilder::new()
        .loop_est(f64::NAN, |b| b.ops(Inst::FloatAdd, 1))
        .build("nan_trip");
    // The builder clamps probabilities, so an out-of-range one has to be
    // assembled by hand — exactly the hostile input the lint exists for.
    let bad_prob = KernelIr::new(
        "bad_prob",
        vec![Stmt::Branch {
            prob: 1.5,
            then: vec![Stmt::op(Inst::FloatAdd)],
            els: vec![Stmt::op(Inst::FloatMul)],
        }],
    );
    let empty_loop = IrBuilder::new().loop_n(4, |b| b).build("empty_loop");
    let mut bad_fractions = IrBuilder::new().ops(Inst::FloatAdd, 1).build("bad_fractions");
    bad_fractions.coalescing = 2.0; // the builder clamps; a hand-built IR can't rely on that
    let one_sided = IrBuilder::new()
        .branch(1.0, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("one_sided");
    let dead_loop = IrBuilder::new()
        .loop_n(0, |b| b.ops(Inst::FloatAdd, 1))
        .build("dead_loop");
    let runaway_loop = IrBuilder::new()
        .loop_est(1e12, |b| b.ops(Inst::FloatAdd, 1))
        .build("runaway_loop");
    let dead_store = IrBuilder::new()
        .ops(Inst::LocalStore, 4)
        .ops(Inst::FloatAdd, 1)
        .build("dead_store");
    let compute_with_fractions = IrBuilder::new()
        .ops(Inst::FloatAdd, 4)
        .build("compute_with_fractions")
        .with_coalescing(0.5);
    // A NaN probability survives the builder's clamp and poisons the
    // extracted feature vector, which IR010's validity check catches.
    let nan_features = IrBuilder::new()
        .branch(f64::NAN, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("nan_features");
    let pure_copy = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::GlobalStore, 1)
        .build("pure_copy");

    let cases: Vec<(&str, &KernelIr)> = vec![
        ("IR001", &zero_op),
        ("IR002", &nan_trip),
        ("IR003", &bad_prob),
        ("IR004", &empty_loop),
        ("IR005", &bad_fractions),
        ("IR006", &one_sided),
        ("IR007", &dead_loop),
        ("IR007", &runaway_loop),
        ("IR008", &dead_store),
        ("IR009", &compute_with_fractions),
        ("IR010", &nan_features),
        ("IR011", &pure_copy),
    ];
    let registry = lints();
    for (code, kernel) in cases {
        let rep = registry.check_kernel(kernel);
        assert!(
            rep.has_code(code),
            "{code} did not fire on `{}`:\n{}",
            kernel.name,
            rep.render()
        );
    }
}

#[test]
fn level_overrides_promote_and_silence_lints() {
    let k = IrBuilder::new()
        .branch(1.0, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("one_sided");

    let mut registry = lints();
    let rep = registry.check_kernel(&k);
    assert!(rep.has_code("IR006") && !rep.has_deny(), "IR006 defaults to warn");
    assert_eq!(registry.level_of("IR006"), Some(Level::Warn));

    registry.set_level("IR006", Level::Deny);
    let rep = registry.check_kernel(&k);
    assert!(rep.has_deny(), "promoted IR006 must deny");
    assert_eq!(registry.level_of("IR006"), Some(Level::Deny));

    registry.set_level("IR006", Level::Allow);
    let rep = registry.check_kernel(&k);
    assert!(rep.is_clean(), "allowed IR006 must not run:\n{}", rep.render());
}

#[test]
fn every_sweep_lint_has_a_trigger_and_healthy_sweeps_stay_clean() {
    let registry = lints();
    let baseline = ClockConfig::new(877, 1312);

    let rep = registry.check_sweep(&healthy_sweep(), baseline, &EnergyTarget::PAPER_SET);
    assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());

    // SW001: a non-physical point.
    let mut pts = healthy_sweep();
    pts.push(point(1600, f64::NAN, 1.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW001"));

    // SW002: a duplicated configuration.
    let mut pts = healthy_sweep();
    pts.push(point(1530, 1.8, 9.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW002"));

    // SW003: a point out of ascending (mem, core) order.
    let mut pts = healthy_sweep();
    pts.push(point(500, 3.5, 7.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW003"));

    // SW004: nothing to select from (deny).
    let rep = registry.check_sweep(&[], baseline, &EnergyTarget::PAPER_SET);
    assert_eq!(rep.codes(), vec!["SW004"]);
    assert!(rep.has_deny());

    // SW005: ES_50's fastest-feasible tie-break lands on a point another
    // configuration dominates (equal time, strictly cheaper).
    let pts = vec![
        point(400, 4.0, 4.0),
        point(600, 2.0, 8.0),
        point(1000, 2.0, 7.0),
        point(1312, 1.5, 12.0),
    ];
    let rep = registry.check_sweep(&pts, baseline, &[EnergyTarget::EnergySaving(50)]);
    assert!(rep.has_code("SW005"), "findings:\n{}", rep.render());

    // SW006: no point at the baseline memory clock (deny).
    let rep = registry.check_sweep(&healthy_sweep(), ClockConfig::new(900, 1312), &[]);
    assert_eq!(rep.codes(), vec!["SW006"]);
    assert!(rep.has_deny());
}

#[test]
fn every_model_lint_has_a_trigger_and_healthy_models_stay_clean() {
    let registry = lints();
    let v100 = DeviceSpec::v100();

    let rep = registry.check_models(&linear_models(&samples(), 1530.0), &v100, NUM_FEATURES);
    assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());

    // ML001: targets 12 orders of magnitude out scale the OLS weights far
    // past anything honest (deny).
    let huge: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.time_s *= 1e12;
            s.energy_j *= 1e12;
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&huge, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML001"), "findings:\n{}", rep.render());
    assert!(rep.has_deny());

    // ML003: a bundle trained on 2-wide features against the 10-feature
    // basis (deny) — and ML005 must skip probing it rather than panic.
    let narrow: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.features.truncate(2);
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&narrow, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML003") && rep.has_deny());
    assert!(!rep.has_code("ML005"));

    // ML004: models normalized to 1000 MHz queried on a device sweeping to
    // 1530 MHz.
    let rep = registry.check_models(&linear_models(&samples(), 1000.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML004"), "findings:\n{}", rep.render());

    // ML005: targets at the prediction floor collapse every corner probe.
    let collapsed: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.time_s = 1e-15;
            s.energy_j = 1e-15;
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&collapsed, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML005"), "findings:\n{}", rep.render());
}

#[test]
fn cache_lint_flags_stale_and_mismatched_bundles() {
    let registry = lints();
    let row_len = expected_row_len(NUM_FEATURES);

    // A directory that never existed is trivially clean.
    let rep = registry.check_model_cache(
        std::path::Path::new("/nonexistent/synergy-analyze-it"),
        CACHE_FORMAT_VERSION,
        row_len,
    );
    assert!(rep.is_clean());

    let dir = std::env::temp_dir().join(format!("synergy-analyze-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    let weights: Vec<f64> = vec![0.0; row_len];
    let bundle = |key: &str, version: u32, weights: &[f64]| {
        serde_json::json!({
            "version": version,
            "key": key,
            "models": { "time": { "Linear": { "weights": weights, "intercept": 0.0 } } },
        })
        .to_string()
    };
    let cases = [
        ("models-good00.json", bundle("good00", CACHE_FORMAT_VERSION, &weights)),
        ("models-badver.json", bundle("badver", CACHE_FORMAT_VERSION + 1, &weights)),
        ("models-miskey.json", bundle("other!", CACHE_FORMAT_VERSION, &weights)),
        ("models-narrow.json", bundle("narrow", CACHE_FORMAT_VERSION, &weights[..2])),
        ("models-broken.json", "not json {".to_string()),
    ];
    for (name, text) in &cases {
        std::fs::write(dir.join(name), text).expect("write cache fixture");
    }

    let rep = registry.check_model_cache(&dir, CACHE_FORMAT_VERSION, row_len);
    std::fs::remove_dir_all(&dir).ok();

    assert!(rep.codes().iter().all(|c| *c == "ML002"), "findings:\n{}", rep.render());
    for bad in ["badver", "miskey", "narrow", "broken"] {
        assert!(
            rep.diagnostics.iter().any(|d| d.path.contains(bad)),
            "models-{bad}.json not flagged:\n{}",
            rep.render()
        );
    }
    assert!(
        !rep.diagnostics.iter().any(|d| d.path.contains("good00")),
        "the self-consistent bundle must not be flagged:\n{}",
        rep.render()
    );
    assert!(!rep.has_deny(), "ML002 defaults to warn");
}

#[test]
fn compile_application_aborts_on_deny_findings() {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(5, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite[..16], ModelSelection::paper_best(), 24, 1);

    let dead = IrBuilder::new()
        .ops(Inst::FloatAdd, 0)
        .ops(Inst::GlobalLoad, 1)
        .ops(Inst::FloatMul, 2)
        .ops(Inst::GlobalStore, 1)
        .build("dead");
    let err = compile_application(&spec, &models, &[dead], &EnergyTarget::PAPER_SET)
        .expect_err("a deny-level IR defect must abort the compile step");
    assert!(err.report.has_deny());
    assert!(err.report.has_code("IR001"));
    assert!(
        err.report.diagnostics.iter().any(|d| d.path.starts_with("dead.")),
        "findings are scoped by kernel name:\n{}",
        err.report.render()
    );
    let rendered = err.to_string();
    assert!(rendered.contains("compile aborted"), "{rendered}");
    assert!(rendered.contains("IR001"), "{rendered}");

    let registry = compile_application(
        &spec,
        &models,
        &[healthy_kernel()],
        &EnergyTarget::PAPER_SET,
    )
    .expect("a healthy kernel compiles");
    assert_eq!(registry.len(), EnergyTarget::PAPER_SET.len());
}

#[test]
fn compile_with_custom_lints_honors_level_overrides() {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(5, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite[..16], ModelSelection::paper_best(), 24, 1);
    let copy = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::GlobalStore, 1)
        .build("pure_copy");

    // IR011 is a warning by default: a pure copy kernel compiles.
    compile_application(&spec, &models, std::slice::from_ref(&copy), &[EnergyTarget::MinEdp])
        .expect("warn-level findings do not block");

    // Promoted to deny it aborts the same compile.
    let mut strict = LintRegistry::with_builtin();
    strict.set_level("IR011", Level::Deny);
    let err = compile_application_with_lints(
        &spec,
        &models,
        std::slice::from_ref(&copy),
        &[EnergyTarget::MinEdp],
        &strict,
    )
    .expect_err("deny-promoted IR011 must abort");
    assert!(err.report.has_code("IR011"));
}

#[test]
fn reports_round_trip_as_json() {
    let k = IrBuilder::new().ops(Inst::FloatAdd, 0).build("zero_op");
    let rep = lints().check_kernel(&k).prefixed("zero_op");
    assert!(!rep.is_clean());
    let back: Report = serde_json::from_str(&rep.to_json()).expect("report JSON parses");
    assert_eq!(back, rep);
}

#[test]
fn suite_envelopes_contain_the_extraction_point_estimates() {
    // The defining soundness invariant of the abstract interpreter,
    // checked over every shipped benchmark: the point estimate the
    // extraction pass computes lies inside the interval envelope for
    // every feature class, the access counters, and ops/byte.
    let cfg = AbsIntConfig::default();
    for bench in synergy::apps::suite() {
        let info = extract(&bench.ir);
        assert!(info.features.is_valid(), "{} extracts invalid features", bench.name);
        let env = interpret(&bench.ir, &cfg);
        let violations = env.containment_violations(&info);
        assert!(
            violations.is_empty(),
            "{} escapes its envelope:\n{}",
            bench.name,
            violations.join("\n")
        );
    }
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::IntAdd),
        Just(Inst::IntMul),
        Just(Inst::FloatAdd),
        Just(Inst::FloatMul),
        Just(Inst::FloatDiv),
        Just(Inst::SpecialFn),
        Just(Inst::GlobalLoad),
        Just(Inst::GlobalStore),
        Just(Inst::LocalLoad),
        Just(Inst::LocalStore),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = (arb_inst(), 0u64..64).prop_map(|(i, n)| Stmt::Op(i, n));
    leaf.prop_recursive(3, 24, 4, |inner| {
        let trip = prop_oneof![
            (0u64..32).prop_map(TripCount::Const),
            (0.1f64..48.0).prop_map(TripCount::Estimated),
        ];
        prop_oneof![
            (trip, prop::collection::vec(inner.clone(), 0..4))
                .prop_map(|(trip, body)| Stmt::Loop { trip, body }),
            (
                0.0f64..1.0,
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner, 0..3),
            )
                .prop_map(|(prob, then, els)| Stmt::Branch { prob, then, els }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For arbitrary IR trees (nested loops, branches, estimated trip
    /// counts) and any widening factor, the envelope contains the
    /// extraction pass's expected values — branch hulls and loop scaling
    /// never cut the point estimate out.
    #[test]
    fn envelopes_contain_extraction_for_arbitrary_ir(
        body in prop::collection::vec(arb_stmt(), 1..5),
        u in 0.0f64..2.0,
    ) {
        let k = KernelIr::new("prop", body);
        let info = extract(&k);
        // Generated probabilities and trips are always finite, so the
        // extraction is valid; guard anyway rather than assume support.
        if info.features.is_valid() {
            let env = interpret(&k, &AbsIntConfig { trip_uncertainty: u });
            let violations = env.containment_violations(&info);
            prop_assert!(violations.is_empty(), "{}", violations.join("\n"));
        }
    }
}

/// A deterministic three-level suite report for the SARIF fixture: one
/// deny, one warn, one allow-level diagnostic with tree-addressed paths.
fn sarif_fixture_report() -> SuiteReport {
    use synergy::analyze::Diagnostic;
    let mut deny = Report::new();
    deny.diagnostics.push(Diagnostic {
        code: "IR001".into(),
        severity: Level::Deny,
        path: "body[1].loop.body[0]".into(),
        message: "op bundle with count 0".into(),
        suggestion: Some("drop the statement".into()),
    });
    let mut warn = Report::new();
    warn.diagnostics.push(Diagnostic {
        code: "IR011".into(),
        severity: Level::Warn,
        path: "body[0]".into(),
        message: "kernel performs no compute".into(),
        suggestion: None,
    });
    warn.diagnostics.push(Diagnostic {
        code: "IR104".into(),
        severity: Level::Allow,
        path: "body[2].branch.then[0]".into(),
        message: "compute ops envelope [0, 400] is effectively unbounded".into(),
        suggestion: Some("bound the hot arm".into()),
    });
    let mut suite = SuiteReport::default();
    suite.push("vecadd", "v100", deny);
    suite.push("mandelbrot", "mi100", warn);
    suite.push("nbody", "a100", Report::new());
    suite
}

#[test]
fn sarif_export_matches_the_golden_fixture_and_round_trips() {
    use synergy::analyze::json::Json;
    use synergy::analyze::sarif::encode_sarif;

    let suite = sarif_fixture_report();
    let text = encode_sarif(&suite, &lints().catalog());

    // Byte-for-byte against the checked-in fixture: SARIF output is part
    // of the tool's contract (CI annotators parse it), so any change must
    // be deliberate and show up in review. Regenerate with
    // `SYNERGY_REGEN_FIXTURES=1 cargo test sarif_export`.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/analyze_golden.sarif");
    if std::env::var_os("SYNERGY_REGEN_FIXTURES").is_some() {
        std::fs::write(path, &text).expect("write fixture");
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture exists");
    assert_eq!(
        text, golden,
        "SARIF encoding drifted from tests/fixtures/analyze_golden.sarif; \
         if the change is intended, regenerate the fixture"
    );

    // Round trip through the self-contained codec and check the SARIF
    // 2.1.0 shape: schema/version, one run, rules present, three results
    // at three distinct levels, logical locations carrying provenance.
    let doc = Json::parse(&text).expect("SARIF parses");
    assert_eq!(doc.str_field("version").unwrap(), "2.1.0");
    let runs = doc.arr_field("runs").unwrap();
    assert_eq!(runs.len(), 1);
    let results = runs[0].arr_field("results").unwrap();
    assert_eq!(results.len(), 3);
    let levels: Vec<&str> = results.iter().map(|r| r.str_field("level").unwrap()).collect();
    assert_eq!(levels, vec!["error", "warning", "note"]);
    for r in results {
        let loc = &r.arr_field("locations").unwrap()[0].arr_field("logicalLocations").unwrap()[0];
        let fqn = loc.str_field("fullyQualifiedName").unwrap();
        assert!(fqn.contains(": body["), "no provenance path in {fqn}");
    }
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("driver present");
    let rules = driver.arr_field("rules").unwrap();
    let rule_ids: Vec<&str> = rules.iter().map(|r| r.str_field("id").unwrap()).collect();
    for id in ["IR001", "IR011", "IR104", "SW007", "ML006"] {
        assert!(rule_ids.contains(&id), "rule {id} missing from the SARIF catalog");
    }
}

#[test]
fn ratchet_baseline_catches_regressions_and_drift() {
    let suite = sarif_fixture_report();
    let baseline = Baseline::from_report(&suite);

    // Same findings → exact match, no regressions, no drift.
    let diff = baseline.diff(&suite);
    assert!(diff.no_regressions() && diff.is_exact());

    // A new finding in a fresh bucket is a regression and fails the gate.
    let mut grown = sarif_fixture_report();
    let mut extra = Report::new();
    extra.diagnostics.push(synergy::analyze::Diagnostic {
        code: "IR006".into(),
        severity: Level::Warn,
        path: "body[0].branch".into(),
        message: "branch probability 1".into(),
        suggestion: None,
    });
    grown.push("bfs", "titanx", extra);
    let diff = baseline.diff(&grown);
    assert!(!diff.no_regressions());
    assert!(diff.render().contains("bfs/titanx/IR006"), "{}", diff.render());

    // A disappeared finding is drift: not a regression, but not exact —
    // the gate asks for a --write-baseline re-lock.
    let mut shrunk = SuiteReport::default();
    shrunk.push("nbody", "a100", Report::new());
    let diff = baseline.diff(&shrunk);
    assert!(diff.no_regressions() && !diff.is_exact());
    assert!(diff.render().contains("--write-baseline"), "{}", diff.render());

    // The on-disk encoding round-trips exactly.
    let back = Baseline::from_json_str(&baseline.encode()).expect("baseline parses");
    assert!(back.diff(&suite).is_exact());
}

#[test]
fn cli_analyze_writes_sarif_and_ratchets_against_a_baseline() {
    let dir = std::env::temp_dir().join(format!("synergy-analyze-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let sarif_path = dir.join("out.sarif");
    let base_path = dir.join("baseline.json");

    // First run: --all across every device, write the baseline.
    let mut opts = synergy_cli::commands::AnalyzeOptions {
        benches: Vec::new(),
        device: "all".into(),
        format: "sarif".into(),
        out: sarif_path.display().to_string(),
        baseline: base_path.display().to_string(),
        write_baseline: true,
        uncertainty: 0.5,
        deep: false,
    };
    let mut buf = Vec::new();
    let outcome = synergy_cli::commands::analyze(&mut buf, &opts).expect("analyze runs");
    assert!(!outcome.failed(), "baseline write must succeed");
    assert!(outcome.wrote_baseline);

    // The SARIF artifact parses and covers suite × devices.
    let text = std::fs::read_to_string(&sarif_path).expect("sarif written");
    let doc = synergy::analyze::json::Json::parse(&text).expect("sarif parses");
    assert_eq!(doc.str_field("version").unwrap(), "2.1.0");

    // Second run against the just-written baseline: exact match, exit 0.
    opts.write_baseline = false;
    let mut buf = Vec::new();
    let outcome = synergy_cli::commands::analyze(&mut buf, &opts).expect("analyze runs");
    assert!(!outcome.failed(), "a just-written baseline must ratchet clean");
    let log = String::from_utf8(buf).expect("utf-8");
    assert!(log.contains("ratchet: clean"), "{log}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_lint_runs_warn_clean_over_the_whole_suite() {
    // The acceptance bar for the shipped benchmarks: every suite kernel,
    // its measured V100 sweep, the trained paper-best models and the model
    // cache produce zero findings at any level.
    let suite = synergy::apps::suite();
    assert_eq!(suite.len(), 23);
    for bench in suite {
        let mut buf = Vec::new();
        let report = synergy_cli::commands::lint(&mut buf, bench.name, "v100", false)
            .expect("lint runs");
        assert!(
            report.is_clean(),
            "{} is not warn-clean:\n{}",
            bench.name,
            report.render()
        );
        let text = String::from_utf8(buf).expect("utf-8 output");
        assert!(text.contains("clean"), "{text}");
    }
}
