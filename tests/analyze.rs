//! Integration coverage for the `synergy-analyze` lint framework: every
//! built-in lint code fires on a crafted defect and stays quiet on healthy
//! inputs, level overrides promote and silence lints, deny-level findings
//! abort `compile_application`, and the whole 23-benchmark suite lints
//! warn-clean end to end through the CLI entry point.

use synergy::analyze::{expected_row_len, Level, LintRegistry, Report};
use synergy::kernel::{
    generate_microbench, Inst, IrBuilder, KernelIr, MicroBenchConfig, Stmt, NUM_FEATURES,
};
use synergy::metrics::{EnergyTarget, MetricPoint};
use synergy::ml::{Algorithm, MetricModels, ModelSelection, SweepSample};
use synergy::rt::{
    compile_application, compile_application_with_lints, train_device_models,
    CACHE_FORMAT_VERSION,
};
use synergy::sim::{ClockConfig, DeviceSpec};

fn lints() -> LintRegistry {
    LintRegistry::with_builtin()
}

/// A kernel no lint has anything to say about.
fn healthy_kernel() -> KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
        .ops(Inst::GlobalStore, 1)
        .build("healthy")
}

/// A physically-shaped training set over NUM_FEATURES-wide vectors and the
/// V100 clock range: time follows the 1/f compute law, power a DVFS cubic.
fn samples() -> Vec<SweepSample> {
    let mut out = Vec::new();
    for k in [1.0f64, 4.0, 16.0] {
        for step in 0..16 {
            let core = 135.0 + step as f64 * 93.0;
            let fhat = core / 1530.0;
            let mut features = vec![0.0; NUM_FEATURES];
            features[0] = k;
            features[8] = 2.0;
            let time = (0.2 * k + 0.3) / fhat + 0.05;
            let power = 40.0 + 200.0 * fhat * fhat * fhat;
            out.push(SweepSample {
                features,
                core_mhz: core,
                mem_mhz: 877.0,
                time_s: time,
                energy_j: power * time,
            });
        }
    }
    out
}

fn linear_models(samples: &[SweepSample], f_max: f64) -> MetricModels {
    MetricModels::train(ModelSelection::uniform(Algorithm::Linear), samples, f_max, 0)
}

fn point(core: u32, t: f64, e: f64) -> MetricPoint {
    MetricPoint::new(ClockConfig::new(877, core), t, e)
}

fn healthy_sweep() -> Vec<MetricPoint> {
    vec![
        point(400, 4.0, 8.0),
        point(600, 3.0, 6.0),
        point(800, 2.5, 5.0),
        point(1000, 2.2, 5.5),
        point(1312, 1.9, 7.5),
        point(1530, 1.8, 9.0),
    ]
}

#[test]
fn catalog_lists_all_builtin_codes_in_family_order() {
    let catalog = lints().catalog();
    let codes: Vec<&str> = catalog.iter().map(|(c, _, _)| *c).collect();
    let expected = [
        "IR001", "IR002", "IR003", "IR004", "IR005", "IR006", "IR007", "IR008", "IR009",
        "IR010", "IR011", "SW001", "SW002", "SW003", "SW004", "SW005", "SW006", "ML001",
        "ML002", "ML003", "ML004", "ML005",
    ];
    assert_eq!(codes, expected);
    for (code, summary, _) in catalog {
        assert!(!summary.is_empty(), "{code} has no summary");
    }
}

#[test]
fn findings_carry_tree_addressed_paths() {
    let k = IrBuilder::new()
        .ops(Inst::IntAdd, 1)
        .loop_n(4, |b| b.ops(Inst::FloatAdd, 1).ops(Inst::IntMul, 0))
        .build("nested");
    let rep = lints().check_kernel(&k);
    assert_eq!(rep.codes(), vec!["IR001"]);
    assert_eq!(rep.diagnostics[0].path, "body[1].loop.body[1]");

    let k = IrBuilder::new()
        .branch(
            0.5,
            |b| b.loop_n(2, |b| b.ops(Inst::FloatMul, 0)),
            |b| b.ops(Inst::FloatAdd, 1),
        )
        .build("branchy");
    let rep = lints().check_kernel(&k);
    assert_eq!(rep.diagnostics[0].path, "body[0].branch.then[0].loop.body[0]");
    let line = rep.render();
    assert!(line.contains("error[IR001]"), "render:\n{line}");

    // Per-kernel scoping for whole-application reports.
    let scoped = lints().check_kernel(&k).prefixed("branchy");
    assert!(scoped.diagnostics[0].path.starts_with("branchy.body[0]"));
}

#[test]
fn every_ir_lint_has_a_trigger_and_healthy_kernels_stay_clean() {
    let clean = lints().check_kernel(&healthy_kernel());
    assert!(clean.is_clean(), "unexpected findings:\n{}", clean.render());

    let zero_op = IrBuilder::new()
        .ops(Inst::FloatAdd, 0)
        .ops(Inst::FloatAdd, 1)
        .build("zero_op");
    let nan_trip = IrBuilder::new()
        .loop_est(f64::NAN, |b| b.ops(Inst::FloatAdd, 1))
        .build("nan_trip");
    // The builder clamps probabilities, so an out-of-range one has to be
    // assembled by hand — exactly the hostile input the lint exists for.
    let bad_prob = KernelIr::new(
        "bad_prob",
        vec![Stmt::Branch {
            prob: 1.5,
            then: vec![Stmt::op(Inst::FloatAdd)],
            els: vec![Stmt::op(Inst::FloatMul)],
        }],
    );
    let empty_loop = IrBuilder::new().loop_n(4, |b| b).build("empty_loop");
    let mut bad_fractions = IrBuilder::new().ops(Inst::FloatAdd, 1).build("bad_fractions");
    bad_fractions.coalescing = 2.0; // the builder clamps; a hand-built IR can't rely on that
    let one_sided = IrBuilder::new()
        .branch(1.0, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("one_sided");
    let dead_loop = IrBuilder::new()
        .loop_n(0, |b| b.ops(Inst::FloatAdd, 1))
        .build("dead_loop");
    let runaway_loop = IrBuilder::new()
        .loop_est(1e12, |b| b.ops(Inst::FloatAdd, 1))
        .build("runaway_loop");
    let dead_store = IrBuilder::new()
        .ops(Inst::LocalStore, 4)
        .ops(Inst::FloatAdd, 1)
        .build("dead_store");
    let compute_with_fractions = IrBuilder::new()
        .ops(Inst::FloatAdd, 4)
        .build("compute_with_fractions")
        .with_coalescing(0.5);
    // A NaN probability survives the builder's clamp and poisons the
    // extracted feature vector, which IR010's validity check catches.
    let nan_features = IrBuilder::new()
        .branch(f64::NAN, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("nan_features");
    let pure_copy = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::GlobalStore, 1)
        .build("pure_copy");

    let cases: Vec<(&str, &KernelIr)> = vec![
        ("IR001", &zero_op),
        ("IR002", &nan_trip),
        ("IR003", &bad_prob),
        ("IR004", &empty_loop),
        ("IR005", &bad_fractions),
        ("IR006", &one_sided),
        ("IR007", &dead_loop),
        ("IR007", &runaway_loop),
        ("IR008", &dead_store),
        ("IR009", &compute_with_fractions),
        ("IR010", &nan_features),
        ("IR011", &pure_copy),
    ];
    let registry = lints();
    for (code, kernel) in cases {
        let rep = registry.check_kernel(kernel);
        assert!(
            rep.has_code(code),
            "{code} did not fire on `{}`:\n{}",
            kernel.name,
            rep.render()
        );
    }
}

#[test]
fn level_overrides_promote_and_silence_lints() {
    let k = IrBuilder::new()
        .branch(1.0, |b| b.ops(Inst::FloatAdd, 1), |b| b.ops(Inst::FloatMul, 1))
        .build("one_sided");

    let mut registry = lints();
    let rep = registry.check_kernel(&k);
    assert!(rep.has_code("IR006") && !rep.has_deny(), "IR006 defaults to warn");
    assert_eq!(registry.level_of("IR006"), Some(Level::Warn));

    registry.set_level("IR006", Level::Deny);
    let rep = registry.check_kernel(&k);
    assert!(rep.has_deny(), "promoted IR006 must deny");
    assert_eq!(registry.level_of("IR006"), Some(Level::Deny));

    registry.set_level("IR006", Level::Allow);
    let rep = registry.check_kernel(&k);
    assert!(rep.is_clean(), "allowed IR006 must not run:\n{}", rep.render());
}

#[test]
fn every_sweep_lint_has_a_trigger_and_healthy_sweeps_stay_clean() {
    let registry = lints();
    let baseline = ClockConfig::new(877, 1312);

    let rep = registry.check_sweep(&healthy_sweep(), baseline, &EnergyTarget::PAPER_SET);
    assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());

    // SW001: a non-physical point.
    let mut pts = healthy_sweep();
    pts.push(point(1600, f64::NAN, 1.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW001"));

    // SW002: a duplicated configuration.
    let mut pts = healthy_sweep();
    pts.push(point(1530, 1.8, 9.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW002"));

    // SW003: a point out of ascending (mem, core) order.
    let mut pts = healthy_sweep();
    pts.push(point(500, 3.5, 7.0));
    assert!(registry.check_sweep(&pts, baseline, &[]).has_code("SW003"));

    // SW004: nothing to select from (deny).
    let rep = registry.check_sweep(&[], baseline, &EnergyTarget::PAPER_SET);
    assert_eq!(rep.codes(), vec!["SW004"]);
    assert!(rep.has_deny());

    // SW005: ES_50's fastest-feasible tie-break lands on a point another
    // configuration dominates (equal time, strictly cheaper).
    let pts = vec![
        point(400, 4.0, 4.0),
        point(600, 2.0, 8.0),
        point(1000, 2.0, 7.0),
        point(1312, 1.5, 12.0),
    ];
    let rep = registry.check_sweep(&pts, baseline, &[EnergyTarget::EnergySaving(50)]);
    assert!(rep.has_code("SW005"), "findings:\n{}", rep.render());

    // SW006: no point at the baseline memory clock (deny).
    let rep = registry.check_sweep(&healthy_sweep(), ClockConfig::new(900, 1312), &[]);
    assert_eq!(rep.codes(), vec!["SW006"]);
    assert!(rep.has_deny());
}

#[test]
fn every_model_lint_has_a_trigger_and_healthy_models_stay_clean() {
    let registry = lints();
    let v100 = DeviceSpec::v100();

    let rep = registry.check_models(&linear_models(&samples(), 1530.0), &v100, NUM_FEATURES);
    assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());

    // ML001: targets 12 orders of magnitude out scale the OLS weights far
    // past anything honest (deny).
    let huge: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.time_s *= 1e12;
            s.energy_j *= 1e12;
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&huge, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML001"), "findings:\n{}", rep.render());
    assert!(rep.has_deny());

    // ML003: a bundle trained on 2-wide features against the 10-feature
    // basis (deny) — and ML005 must skip probing it rather than panic.
    let narrow: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.features.truncate(2);
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&narrow, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML003") && rep.has_deny());
    assert!(!rep.has_code("ML005"));

    // ML004: models normalized to 1000 MHz queried on a device sweeping to
    // 1530 MHz.
    let rep = registry.check_models(&linear_models(&samples(), 1000.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML004"), "findings:\n{}", rep.render());

    // ML005: targets at the prediction floor collapse every corner probe.
    let collapsed: Vec<SweepSample> = samples()
        .into_iter()
        .map(|mut s| {
            s.time_s = 1e-15;
            s.energy_j = 1e-15;
            s
        })
        .collect();
    let rep = registry.check_models(&linear_models(&collapsed, 1530.0), &v100, NUM_FEATURES);
    assert!(rep.has_code("ML005"), "findings:\n{}", rep.render());
}

#[test]
fn cache_lint_flags_stale_and_mismatched_bundles() {
    let registry = lints();
    let row_len = expected_row_len(NUM_FEATURES);

    // A directory that never existed is trivially clean.
    let rep = registry.check_model_cache(
        std::path::Path::new("/nonexistent/synergy-analyze-it"),
        CACHE_FORMAT_VERSION,
        row_len,
    );
    assert!(rep.is_clean());

    let dir = std::env::temp_dir().join(format!("synergy-analyze-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    let weights: Vec<f64> = vec![0.0; row_len];
    let bundle = |key: &str, version: u32, weights: &[f64]| {
        serde_json::json!({
            "version": version,
            "key": key,
            "models": { "time": { "Linear": { "weights": weights, "intercept": 0.0 } } },
        })
        .to_string()
    };
    let cases = [
        ("models-good00.json", bundle("good00", CACHE_FORMAT_VERSION, &weights)),
        ("models-badver.json", bundle("badver", CACHE_FORMAT_VERSION + 1, &weights)),
        ("models-miskey.json", bundle("other!", CACHE_FORMAT_VERSION, &weights)),
        ("models-narrow.json", bundle("narrow", CACHE_FORMAT_VERSION, &weights[..2])),
        ("models-broken.json", "not json {".to_string()),
    ];
    for (name, text) in &cases {
        std::fs::write(dir.join(name), text).expect("write cache fixture");
    }

    let rep = registry.check_model_cache(&dir, CACHE_FORMAT_VERSION, row_len);
    std::fs::remove_dir_all(&dir).ok();

    assert!(rep.codes().iter().all(|c| *c == "ML002"), "findings:\n{}", rep.render());
    for bad in ["badver", "miskey", "narrow", "broken"] {
        assert!(
            rep.diagnostics.iter().any(|d| d.path.contains(bad)),
            "models-{bad}.json not flagged:\n{}",
            rep.render()
        );
    }
    assert!(
        !rep.diagnostics.iter().any(|d| d.path.contains("good00")),
        "the self-consistent bundle must not be flagged:\n{}",
        rep.render()
    );
    assert!(!rep.has_deny(), "ML002 defaults to warn");
}

#[test]
fn compile_application_aborts_on_deny_findings() {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(5, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite[..16], ModelSelection::paper_best(), 24, 1);

    let dead = IrBuilder::new()
        .ops(Inst::FloatAdd, 0)
        .ops(Inst::GlobalLoad, 1)
        .ops(Inst::FloatMul, 2)
        .ops(Inst::GlobalStore, 1)
        .build("dead");
    let err = compile_application(&spec, &models, &[dead], &EnergyTarget::PAPER_SET)
        .expect_err("a deny-level IR defect must abort the compile step");
    assert!(err.report.has_deny());
    assert!(err.report.has_code("IR001"));
    assert!(
        err.report.diagnostics.iter().any(|d| d.path.starts_with("dead.")),
        "findings are scoped by kernel name:\n{}",
        err.report.render()
    );
    let rendered = err.to_string();
    assert!(rendered.contains("compile aborted"), "{rendered}");
    assert!(rendered.contains("IR001"), "{rendered}");

    let registry = compile_application(
        &spec,
        &models,
        &[healthy_kernel()],
        &EnergyTarget::PAPER_SET,
    )
    .expect("a healthy kernel compiles");
    assert_eq!(registry.len(), EnergyTarget::PAPER_SET.len());
}

#[test]
fn compile_with_custom_lints_honors_level_overrides() {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(5, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite[..16], ModelSelection::paper_best(), 24, 1);
    let copy = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::GlobalStore, 1)
        .build("pure_copy");

    // IR011 is a warning by default: a pure copy kernel compiles.
    compile_application(&spec, &models, std::slice::from_ref(&copy), &[EnergyTarget::MinEdp])
        .expect("warn-level findings do not block");

    // Promoted to deny it aborts the same compile.
    let mut strict = LintRegistry::with_builtin();
    strict.set_level("IR011", Level::Deny);
    let err = compile_application_with_lints(
        &spec,
        &models,
        std::slice::from_ref(&copy),
        &[EnergyTarget::MinEdp],
        &strict,
    )
    .expect_err("deny-promoted IR011 must abort");
    assert!(err.report.has_code("IR011"));
}

#[test]
fn reports_round_trip_as_json() {
    let k = IrBuilder::new().ops(Inst::FloatAdd, 0).build("zero_op");
    let rep = lints().check_kernel(&k).prefixed("zero_op");
    assert!(!rep.is_clean());
    let back: Report = serde_json::from_str(&rep.to_json()).expect("report JSON parses");
    assert_eq!(back, rep);
}

#[test]
fn cli_lint_runs_warn_clean_over_the_whole_suite() {
    // The acceptance bar for the shipped benchmarks: every suite kernel,
    // its measured V100 sweep, the trained paper-best models and the model
    // cache produce zero findings at any level.
    let suite = synergy::apps::suite();
    assert_eq!(suite.len(), 23);
    for bench in suite {
        let mut buf = Vec::new();
        let report = synergy_cli::commands::lint(&mut buf, bench.name, "v100", false)
            .expect("lint runs");
        assert!(
            report.is_clean(),
            "{} is not warn-clean:\n{}",
            bench.name,
            report.render()
        );
        let text = String::from_utf8(buf).expect("utf-8 output");
        assert!(text.contains("clean"), "{text}");
    }
}
