//! Integration tests for the `synergy-fleet` coordinator: mixed load
//! routes across a fleet and every request is answered with the matching
//! kind; a node killed mid-sweep loses no accepted work and the merged
//! Pareto front stays bit-identical to a single node's; a saturated
//! fleet rejects with `Busy` and the shared retry policy absorbs it;
//! preemption honours the grace window and a rejoin revives the node;
//! and the coordinator's metrics rollup sums the per-node snapshots
//! exactly.

use std::thread;
use std::time::{Duration, Instant};

use synergy::fleet::{spawn_fleet, FleetConfig, FleetHandle, NodeConfig};
use synergy::serve::{
    spawn, Client, ModelProfile, Request, Response, RetryPolicy, ServeConfig, ServerHandle,
    SweepPoint,
};
use synergy::telemetry::Metrics;

fn spawn_node(config: ServeConfig) -> ServerHandle {
    spawn(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        profile: ModelProfile::small(),
        ..config
    })
    .expect("bind node")
}

fn spawn_fleet_over(nodes: &[&ServerHandle], config: FleetConfig) -> FleetHandle {
    let roster = nodes
        .iter()
        .map(|h| NodeConfig {
            addr: h.addr().to_string(),
            devices: Vec::new(),
        })
        .collect();
    spawn_fleet(FleetConfig {
        nodes: roster,
        heartbeat_interval: Duration::from_millis(25),
        dead_after: Duration::from_millis(250),
        ..config
    })
    .expect("bind coordinator")
}

/// Fetch one sweep front directly from a standalone node — the
/// reference the fleet's chunk-merged front must match exactly.
fn reference_front(bench: &str, device: &str) -> Vec<SweepPoint> {
    let node = spawn_node(ServeConfig::default());
    let mut client = Client::connect(node.addr()).expect("connect reference");
    let resp = client.sweep(bench, device).expect("reference sweep");
    node.drain();
    node.join();
    match resp {
        Response::SweepFront { pareto, .. } => pareto,
        other => panic!("expected SweepFront, got {other:?}"),
    }
}

/// Mixed Compile / Sweep / Predict / Ping load through a 3-node fleet:
/// everything is answered with the matching kind, the coordinator
/// forwards (rather than computing), and the roster stays up.
#[test]
fn mixed_load_routes_across_three_nodes() {
    let nodes: Vec<ServerHandle> = (0..3).map(|_| spawn_node(ServeConfig::default())).collect();
    let fleet = spawn_fleet_over(&nodes.iter().collect::<Vec<_>>(), FleetConfig::default());
    let addr = fleet.addr();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut policy = RetryPolicy::new(1000, 2, 50, c as u64 + 1);
                for i in 0..PER_CLIENT {
                    let req = match (c + i) % 4 {
                        0 => Request::Compile {
                            bench: "vec_add".into(),
                            device: "v100".into(),
                            targets: vec!["ES_50".into()],
                        },
                        1 => Request::Sweep {
                            bench: "sobel3".into(),
                            device: "v100".into(),
                        },
                        2 => Request::Predict {
                            device: "v100".into(),
                            features: vec![1.0; synergy::kernel::NUM_FEATURES],
                            mem_mhz: 877,
                            core_mhz: 1312,
                        },
                        _ => Request::Ping,
                    };
                    let resp = client
                        .request_with_retry(&req, 30_000, &mut policy)
                        .expect("transport");
                    let ok = matches!(
                        (&req, &resp),
                        (Request::Compile { .. }, Response::Compiled { .. })
                            | (Request::Sweep { .. }, Response::SweepFront { .. })
                            | (Request::Predict { .. }, Response::Predicted { .. })
                            | (Request::Ping, Response::Pong)
                    );
                    assert!(ok, "request {req:?} got mismatched response {resp:?}");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }

    let roster = fleet.nodes();
    assert_eq!(roster.len(), 3);
    assert!(roster.iter().all(|n| n.state == "up"), "roster: {roster:?}");

    let stats = fleet.join();
    // Pings are control plane — answered inline on the reactor, never
    // admitted as data-plane work. Each client's 8 requests hit every
    // kind exactly twice, so 6 of 8 are accepted and 2 are pings.
    let data_plane = (CLIENTS * PER_CLIENT * 3 / 4) as u64;
    let pings = (CLIENTS * PER_CLIENT / 4) as u64;
    assert_eq!(stats.accepted, data_plane);
    assert!(stats.forwarded > 0, "coordinator never forwarded work");
    assert_eq!(stats.responses, data_plane + pings + stats.busy_rejections);
    for node in nodes {
        node.drain();
        node.join();
    }
}

/// The volatility guarantee, end to end: kill a node abruptly while
/// chunked sweeps are in flight across a 3-node fleet. Every sweep must
/// still come back, the merged Pareto front must be bit-identical to a
/// standalone node's answer, and the coordinator must have reassigned
/// the dead node's orphaned chunks rather than dropping them.
#[test]
fn killed_node_mid_sweep_loses_nothing() {
    let reference = reference_front("mat_mul", "v100");

    let mut nodes: Vec<ServerHandle> = (0..3)
        .map(|_| {
            spawn_node(ServeConfig {
                // Stretch each chunk so the kill lands mid-sweep.
                compute_delay: Duration::from_millis(3),
                ..ServeConfig::default()
            })
        })
        .collect();
    let fleet = spawn_fleet_over(
        &nodes.iter().collect::<Vec<_>>(),
        FleetConfig {
            // Small chunks -> many per sweep -> work on every node.
            sweep_chunk: 16,
            ..FleetConfig::default()
        },
    );
    let addr = fleet.addr();

    const SWEEPS: usize = 6;
    let joins: Vec<_> = (0..SWEEPS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let _ = client.set_timeout(Some(Duration::from_secs(60)));
                let mut policy = RetryPolicy::new(10_000, 2, 50, c as u64 + 1);
                let req = Request::Sweep {
                    bench: "mat_mul".into(),
                    device: "v100".into(),
                };
                match client.request_with_retry(&req, 60_000, &mut policy) {
                    Ok(Response::SweepFront { pareto, configurations, .. }) => {
                        (pareto, configurations)
                    }
                    other => panic!("sweep {c} not answered with a front: {other:?}"),
                }
            })
        })
        .collect();

    // Let chunks spread across the fleet, then yank a node with no
    // drain, no goodbye — in-flight chunks die with it.
    thread::sleep(Duration::from_millis(30));
    let victim = nodes.pop().expect("three nodes");
    victim.kill();

    let mut fronts = Vec::new();
    for j in joins {
        fronts.push(j.join().expect("sweep client"));
    }
    for (pareto, configurations) in &fronts {
        assert!(*configurations > 0);
        assert_eq!(
            pareto, &reference,
            "fleet-merged front differs from the single-node reference"
        );
    }

    let stats = fleet.join();
    assert_eq!(stats.accepted, SWEEPS as u64);
    // Every accepted sweep answered exactly once; the only other
    // responses are `Busy` bounces the retry policy absorbed.
    assert_eq!(
        stats.responses,
        stats.accepted + stats.busy_rejections,
        "a sweep went unanswered: {stats:?}"
    );
    assert!(
        stats.reassigned + stats.orphaned > 0,
        "the kill should have orphaned or reassigned at least one chunk: {stats:?}"
    );
    for node in nodes {
        node.drain();
        node.join();
    }
}

/// One single-slot node: concurrent clients overflow admission into
/// `Busy`, and the shared retry policy absorbs every rejection.
#[test]
fn saturation_rejects_busy_and_retries_recover() {
    let node = spawn_node(ServeConfig {
        compute_delay: Duration::from_millis(2),
        ..ServeConfig::default()
    });
    let fleet = spawn_fleet_over(
        &[&node],
        FleetConfig {
            max_inflight_per_node: 1,
            ..FleetConfig::default()
        },
    );
    let addr = fleet.addr();

    const CLIENTS: usize = 6;
    let joins: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut policy = RetryPolicy::new(10_000, 1, 20, c as u64 + 1);
                // Compiles (not pings — those are control plane and are
                // never admission-checked) so the single slot saturates.
                let req = Request::Compile {
                    bench: "vec_add".into(),
                    device: "v100".into(),
                    targets: vec!["ES_50".into()],
                };
                for _ in 0..4 {
                    let resp = client
                        .request_with_retry(&req, 30_000, &mut policy)
                        .expect("transport");
                    assert!(matches!(resp, Response::Compiled { .. }), "got {resp:?}");
                }
            })
        })
        .collect();
    for j in joins {
        j.join().expect("client thread");
    }

    let stats = fleet.join();
    assert_eq!(stats.accepted, (CLIENTS * 4) as u64);
    assert!(
        stats.busy_rejections > 0,
        "a single-slot fleet under 6 concurrent clients must reject: {stats:?}"
    );
    node.drain();
    node.join();
}

/// Preemption honours the grace window, the roster tracks the state
/// machine, and an explicit rejoin revives the node.
#[test]
fn preemption_grace_window_and_rejoin() {
    let nodes: Vec<ServerHandle> = (0..2).map(|_| spawn_node(ServeConfig::default())).collect();
    let fleet = spawn_fleet_over(&nodes.iter().collect::<Vec<_>>(), FleetConfig::default());
    let victim = nodes[1].addr().to_string();

    assert!(fleet.preempt(&victim, 60), "victim should be known");
    let state_of = |fleet: &FleetHandle, addr: &str| {
        fleet
            .nodes()
            .into_iter()
            .find(|n| n.addr == addr)
            .map(|n| n.state)
            .expect("in roster")
    };
    assert_eq!(state_of(&fleet, &victim), "preempting");

    // Past the grace window the heartbeat plane finalizes the
    // preemption and orphans anything still queued there.
    let deadline = Instant::now() + Duration::from_secs(5);
    while state_of(&fleet, &victim) != "preempted" {
        assert!(Instant::now() < deadline, "preemption never finalized");
        thread::sleep(Duration::from_millis(10));
    }

    // The fleet still answers on the surviving node.
    let mut client = Client::connect(fleet.addr()).expect("connect");
    let mut policy = RetryPolicy::standard(7);
    let resp = client
        .request_with_retry(
            &Request::Compile {
                bench: "vec_add".into(),
                device: "v100".into(),
                targets: vec!["ES_50".into()],
            },
            30_000,
            &mut policy,
        )
        .expect("transport");
    assert!(matches!(resp, Response::Compiled { .. }), "got {resp:?}");

    // Rejoin revives the node; heartbeats confirm it within a beat or
    // two.
    fleet.join_node(&victim);
    let deadline = Instant::now() + Duration::from_secs(5);
    while state_of(&fleet, &victim) != "up" {
        assert!(Instant::now() < deadline, "rejoined node never came up");
        thread::sleep(Duration::from_millis(10));
    }

    let stats = fleet.join();
    assert!(stats.preemptions >= 1);
    for node in nodes {
        node.drain();
        node.join();
    }
}

/// The coordinator's `metrics` op returns the bucket-exact merge of the
/// per-node snapshots: fleet-wide energy equals the sum over nodes.
#[test]
fn fleet_metrics_rollup_sums_node_energy() {
    let nodes: Vec<ServerHandle> = (0..2)
        .map(|_| {
            spawn_node(ServeConfig {
                metrics: Metrics::enabled(),
                ..ServeConfig::default()
            })
        })
        .collect();
    let fleet = spawn_fleet_over(
        &nodes.iter().collect::<Vec<_>>(),
        FleetConfig {
            metrics: Metrics::enabled(),
            ..FleetConfig::default()
        },
    );
    let addr = fleet.addr();

    // Sweeps are what feed the per-device energy counters; spread a few
    // across the fleet.
    let mut client = Client::connect(addr).expect("connect");
    let mut policy = RetryPolicy::new(1000, 2, 50, 3);
    for bench in ["vec_add", "sobel3", "mat_mul"] {
        let resp = client
            .request_with_retry(
                &Request::Sweep {
                    bench: bench.into(),
                    device: "v100".into(),
                },
                30_000,
                &mut policy,
            )
            .expect("transport");
        assert!(matches!(resp, Response::SweepFront { .. }), "got {resp:?}");
    }

    // The rollup is heartbeat-fed; poll until it catches up with the
    // ground truth read straight off the nodes.
    let expected: f64 = nodes
        .iter()
        .map(|n| n.metrics_snapshot().cost.total_joules)
        .sum();
    assert!(expected > 0.0, "sweeps should have accrued energy");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let merged = fleet.metrics_snapshot();
        if (merged.cost.total_joules - expected).abs() < 1e-9 {
            assert_eq!(
                merged.cost.joules_by_device.len(),
                1,
                "all energy came from v100: {:?}",
                merged.cost.joules_by_device
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rollup never converged: merged {} vs nodes {}",
            merged.cost.total_joules,
            expected
        );
        thread::sleep(Duration::from_millis(20));
    }

    // The same rollup crosses the wire through the coordinator's
    // `metrics` op.
    let resp = client.metrics().expect("transport");
    match resp {
        Response::MetricsReply { snapshot } => {
            let snap = synergy::serve::snapshot_from_wire(&snapshot).expect("wire snapshot");
            assert!((snap.cost.total_joules - expected).abs() < 1e-9);
        }
        other => panic!("expected MetricsReply, got {other:?}"),
    }

    fleet.join();
    for node in nodes {
        node.drain();
        node.join();
    }
}
