//! Weak-scaling integration (the Figure-10 machinery) at test scale.

use std::sync::Arc;
use synergy::cluster::{
    fresh_v100_ranks, run_weak_scaling, CommModel, FrequencySchedule, MiniApp,
    WeakScalingConfig,
};
use synergy::kernel::{generate_microbench, MicroBenchConfig};
use synergy::prelude::*;

fn cfg(gpus: usize) -> WeakScalingConfig {
    WeakScalingConfig {
        gpus,
        local_nx: 2048,
        local_ny: 2048,
        steps: 2,
        comm: CommModel::edr_dragonfly(),
    }
}

fn registry(app: MiniApp) -> Arc<TargetRegistry> {
    let spec = DeviceSpec::v100();
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), 12, 3);
    Arc::new(
        compile_application(&spec, &models, &app.kernel_irs(), &EnergyTarget::PAPER_SET)
            .expect("mini-app kernels lint clean"),
    )
}

#[test]
fn runs_are_deterministic() {
    let go = || {
        run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg(4),
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::Default,
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a, b);
}

#[test]
fn both_apps_save_energy_with_es50() {
    for app in [MiniApp::CloverLeaf, MiniApp::MiniWeather] {
        let reg = registry(app);
        let base = run_weak_scaling(
            app,
            &cfg(4),
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        let es = run_weak_scaling(
            app,
            &cfg(4),
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::PerKernel {
                registry: reg,
                target: EnergyTarget::EnergySaving(50),
            },
        );
        let saving = 1.0 - es.energy_j / base.energy_j;
        assert!(
            saving > 0.05,
            "{}: ES_50 saving {saving:.3} too small",
            app.name()
        );
    }
}

#[test]
fn energy_scales_roughly_linearly_with_gpus() {
    let e4 = run_weak_scaling(
        MiniApp::MiniWeather,
        &cfg(4),
        &fresh_v100_ranks(4),
        Caller::Root,
        &FrequencySchedule::Default,
    )
    .energy_j;
    let e16 = run_weak_scaling(
        MiniApp::MiniWeather,
        &cfg(16),
        &fresh_v100_ranks(16),
        Caller::Root,
        &FrequencySchedule::Default,
    )
    .energy_j;
    let ratio = e16 / e4;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "weak scaling should multiply energy ~4x, got {ratio:.2}"
    );
}

#[test]
fn pl_targets_trade_time_monotonically() {
    let app = MiniApp::CloverLeaf;
    let reg = registry(app);
    let mut last_time = 0.0;
    for x in [25u8, 50, 75] {
        let out = run_weak_scaling(
            app,
            &cfg(4),
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::PerKernel {
                registry: Arc::clone(&reg),
                target: EnergyTarget::PerfLoss(x),
            },
        );
        assert!(
            out.time_s >= last_time * 0.999,
            "PL_{x} time {} should not drop below PL_{} time {last_time}",
            out.time_s,
            x - 25
        );
        last_time = out.time_s;
    }
}
