//! # SYnergy (Rust reproduction)
//!
//! A full-system reproduction of *"SYnergy: Fine-grained Energy-Efficient
//! Heterogeneous Computing for Scalable Energy Saving"* (SC '23) in Rust:
//! an energy-aware SYCL-style runtime with per-kernel energy targets, a
//! compile-time modeling pipeline (feature extraction → ML models →
//! frequency search), a SLURM-like scheduler with the `nvgpufreq`
//! privilege-raising plugin, and the simulated V100/A100/MI100 hardware
//! substrate the evaluation runs on.
//!
//! This crate is a facade: it re-exports the component crates under stable
//! module names. Start with [`rt::Queue`] (the paper's `synergy::queue`),
//! then [`rt::compile_application`] for energy targets, and
//! [`sched::Slurm`] for cluster runs.
//!
//! ```
//! use synergy::prelude::*;
//!
//! // Bring up a simulated V100 and an energy-aware queue (Listing 1).
//! let device = SimDevice::new(DeviceSpec::v100(), 0);
//! let queue = Queue::new(device);
//!
//! let n = 1 << 16;
//! let x = Buffer::from_slice(&vec![1.0f32; n]);
//! let y = Buffer::from_slice(&vec![2.0f32; n]);
//! let z: Buffer<f32> = Buffer::zeros(n);
//! let (xa, ya, za) = (x.accessor(), y.accessor(), z.accessor());
//!
//! let ir = IrBuilder::new()
//!     .ops(Inst::GlobalLoad, 2)
//!     .ops(Inst::FloatAdd, 1)
//!     .ops(Inst::GlobalStore, 1)
//!     .build("vec_add");
//! let event = queue.submit(move |h| {
//!     h.parallel_for(n, &ir, move |i| za.set(i, xa.get(i) + ya.get(i)));
//! });
//! event.wait();
//! assert!(queue.kernel_energy_exact(&event) > 0.0);
//! assert_eq!(z.to_vec()[0], 3.0);
//! ```

#![warn(missing_docs)]

/// Kernel IR, Table-1 static features, extraction pass, micro-benchmarks.
pub use synergy_kernel as kernel;

/// Cross-stack lint & diagnostics: IR, sweep and model lint families.
pub use synergy_analyze as analyze;

/// GPU/DVFS simulator: device models, frequency tables, power traces.
pub use synergy_sim as sim;

/// Vendor management-library analogues (NVML, ROCm SMI) and privileges.
pub use synergy_hal as hal;

/// Energy metrics: EDP/ED2P/ES_x/PL_x, Pareto fronts, target search.
pub use synergy_metrics as metrics;

/// Regression models (linear, lasso, random forest, SVR-RBF) and errors.
pub use synergy_ml as ml;

/// The energy-aware runtime: queues, buffers, events, the compile step.
pub use synergy_rt as rt;

/// SLURM-like scheduler with the `nvgpufreq` plugin.
pub use synergy_sched as sched;

/// The 23-benchmark suite plus CloverLeaf and MiniWeather mini-apps.
pub use synergy_apps as apps;

/// Multi-node weak-scaling simulation (Figure 10).
pub use synergy_cluster as cluster;

/// Structured tracing: typed events, counters, Chrome/Perfetto export.
pub use synergy_telemetry as telemetry;

/// The energy-tuning daemon: wire protocol, server, blocking client.
pub use synergy_serve as serve;

/// The distributed tuning fleet: coordinator, affinity routing,
/// preemption tolerance, exact work reassignment.
pub use synergy_fleet as fleet;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::analyze::{Level, LintRegistry, Report};
    pub use crate::hal::{Caller, Nvml, NvmlDevice, RocmSmi};
    pub use crate::kernel::{extract, Inst, IrBuilder, KernelIr};
    pub use crate::metrics::{pareto_front, EnergyTarget, MetricPoint};
    pub use crate::ml::{Algorithm, ModelSelection};
    pub use crate::rt::{
        compile_application, train_device_models, Buffer, CompileError, Event, Handler,
        ModelStore, Queue, TargetRegistry,
    };
    pub use crate::sim::{ClockConfig, DeviceSpec, SimDevice, SimNode};
    pub use crate::telemetry::{ChromeTrace, Recorder, TelemetrySummary};
}
