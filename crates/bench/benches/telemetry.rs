//! Telemetry hot-path micro-benchmarks: the cost of a `record_with` call
//! against a disabled recorder (must be a branch on a `None`), against an
//! enabled recorder (one shard lock + push), and the drain/export path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synergy_telemetry::{ChromeTrace, Clocks, EventKind, Recorder, TelemetrySummary};

fn kernel_run(i: u64) -> EventKind {
    EventKind::KernelRun {
        kernel: "bench_kernel".to_string(),
        start_ns: i * 1_000,
        end_ns: i * 1_000 + 800,
        energy_j: 1.25e-3,
        clocks: Clocks {
            core_mhz: 1380,
            mem_mhz: 877,
        },
    }
}

fn bench_record(c: &mut Criterion) {
    let disabled = Recorder::disabled();
    c.bench_function("record_disabled", |b| {
        b.iter(|| disabled.record_with(black_box(42), || kernel_run(black_box(7))))
    });

    let enabled = Recorder::enabled();
    let mut i = 0u64;
    c.bench_function("record_enabled", |b| {
        b.iter(|| {
            i += 1;
            enabled.record_with(black_box(i), || kernel_run(black_box(i)))
        })
    });
}

fn bench_export(c: &mut Criterion) {
    let rec = Recorder::enabled();
    for i in 0..10_000 {
        rec.record_with(i, || kernel_run(i));
    }
    let events = rec.drain();
    c.bench_function("chrome_export_10k", |b| {
        b.iter(|| black_box(ChromeTrace::from_events(black_box(&events)).to_json()))
    });
    c.bench_function("summary_10k", |b| {
        b.iter(|| black_box(TelemetrySummary::from_events(black_box(&events), 0)))
    });
}

criterion_group!(benches, bench_record, bench_export);
criterion_main!(benches);
