//! Training-engine benchmarks: the flat (pre-sorted, allocation-free)
//! trainers against the original reference implementations, per algorithm
//! and for the full four-model bundle — the cold-compile hot path
//! `pipeline_perf` tracks as `train_cold_s`/`train_speedup`, isolated so
//! a regression pinpoints the algorithm responsible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synergy_bench::microbench_suite;
use synergy_ml::{
    Algorithm, MetricModels, ModelSelection, SweepSample, TrainedRegressor, TrainMatrix,
};
use synergy_rt::build_training_set;
use synergy_sim::DeviceSpec;

const STRIDE: usize = 32;

fn training_samples() -> (Vec<SweepSample>, f64) {
    let spec = DeviceSpec::v100();
    let mut suite = microbench_suite();
    suite.truncate(8);
    let samples = build_training_set(&spec, &suite, STRIDE);
    (samples, spec.freq_table.max_core() as f64)
}

fn training_xy() -> (Vec<Vec<f64>>, Vec<f64>) {
    let (samples, f_max) = training_samples();
    let x: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| synergy_ml::input_row(&s.features, s.core_mhz, s.mem_mhz, f_max))
        .collect();
    let y: Vec<f64> = samples.iter().map(|s| s.energy_j).collect();
    (x, y)
}

fn bench_per_algorithm(c: &mut Criterion) {
    let (x, y) = training_xy();
    let m = TrainMatrix::from_rows(&x);
    for algo in Algorithm::ALL {
        c.bench_function(format!("train_flat_{algo}").as_str(), |b| {
            b.iter(|| black_box(TrainedRegressor::fit_flat(algo, 0, &m, &y)))
        });
        c.bench_function(format!("train_reference_{algo}").as_str(), |b| {
            b.iter(|| black_box(TrainedRegressor::fit_reference(algo, 0, &x, &y)))
        });
    }
}

fn bench_full_bundle(c: &mut Criterion) {
    let (samples, f_max) = training_samples();
    let sel = ModelSelection::paper_best();
    c.bench_function("train_bundle_flat", |b| {
        b.iter(|| black_box(MetricModels::train(sel, &samples, f_max, 0)))
    });
    c.bench_function("train_bundle_reference", |b| {
        b.iter(|| black_box(MetricModels::train_reference(sel, &samples, f_max, 0)))
    });
}

criterion_group!(train, bench_per_algorithm, bench_full_bundle);
criterion_main!(train);
