//! Compile-time pipeline benchmarks: training-set build (serial vs
//! parallel), model training, registry compilation, and the indexed sweep
//! lookup — the stages `pipeline_perf` tracks end to end, isolated here so
//! regressions pinpoint a stage.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synergy_bench::microbench_suite;
use synergy_kernel::{KernelIr, MicroBenchmark};
use synergy_metrics::{point_at, EnergyTarget, IndexedSweep};
use synergy_ml::{Algorithm, ModelSelection};
use synergy_rt::{
    build_training_set, build_training_set_serial, clock_grid, compile_application,
    measured_sweep, predict_sweep_from_info_serial, predict_sweep_over_grid,
    train_device_models, ModelStore,
};
use synergy_sim::DeviceSpec;

const STRIDE: usize = 32;

fn small_suite() -> Vec<MicroBenchmark> {
    let mut suite = microbench_suite();
    suite.truncate(8);
    suite
}

fn app_kernels(n: usize) -> Vec<KernelIr> {
    synergy_apps::suite().into_iter().take(n).map(|b| b.ir).collect()
}

fn bench_train_set_build(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let suite = small_suite();
    c.bench_function("train_set_build_serial", |b| {
        b.iter(|| black_box(build_training_set_serial(&spec, &suite, STRIDE)))
    });
    c.bench_function("train_set_build_parallel", |b| {
        b.iter(|| black_box(build_training_set(&spec, &suite, STRIDE)))
    });
}

fn bench_model_training(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let suite = small_suite();
    c.bench_function("train_models_linear", |b| {
        b.iter(|| {
            black_box(train_device_models(
                &spec,
                &suite,
                ModelSelection::uniform(Algorithm::Linear),
                STRIDE,
                0,
            ))
        })
    });
    c.bench_function("model_store_memory_hit", |b| {
        let store = ModelStore::in_memory();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let _ = store.get_or_train(&spec, &suite, sel, STRIDE, 0);
        b.iter(|| black_box(store.get_or_train(&spec, &suite, sel, STRIDE, 0)))
    });
}

fn bench_registry_compilation(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let suite = small_suite();
    let models = train_device_models(
        &spec,
        &suite,
        ModelSelection::uniform(Algorithm::Linear),
        STRIDE,
        0,
    );
    let kernels = app_kernels(4);
    c.bench_function("compile_registry_4_kernels", |b| {
        b.iter(|| {
            black_box(
                compile_application(&spec, &models, &kernels, &EnergyTarget::PAPER_SET)
                    .expect("bench kernels lint clean"),
            )
        })
    });
}

fn bench_indexed_lookup(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let ir = synergy_apps::by_name("mat_mul").unwrap().ir;
    let sweep = measured_sweep(&spec, &ir, 1 << 20);
    let queries: Vec<_> = sweep.iter().map(|p| p.clocks).collect();
    c.bench_function("point_at_linear_196", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(point_at(&sweep, q));
            }
        })
    });
    let indexed = IndexedSweep::new(sweep.clone());
    c.bench_function("point_at_indexed_196", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(indexed.point_at(q));
            }
        })
    });
}

fn bench_predict_batch(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let suite = small_suite();
    // The paper-best selection is the forest/SVR-heavy hot path the
    // batched engine targets.
    let models = train_device_models(&spec, &suite, ModelSelection::paper_best(), STRIDE, 0);
    let info = synergy_kernel::extract(&synergy_apps::by_name("mat_mul").unwrap().ir);
    let grid = clock_grid(&spec);
    c.bench_function("predict_sweep_per_config_196", |b| {
        b.iter(|| black_box(predict_sweep_from_info_serial(&spec, &models, &info)))
    });
    c.bench_function("predict_sweep_batch_196", |b| {
        b.iter(|| black_box(predict_sweep_over_grid(&models, &info, &grid)))
    });
}

criterion_group!(
    pipeline,
    bench_train_set_build,
    bench_model_training,
    bench_registry_compilation,
    bench_indexed_lookup,
    bench_predict_batch
);
criterion_main!(pipeline);
