//! Component micro-benchmarks: throughput of the building blocks the
//! methodology leans on — feature extraction, the device model, Pareto
//! fronts, target selection, and model inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use synergy_bench::DeviceContext;
use synergy_kernel::extract;
use synergy_metrics::{pareto_front, search_optimal, EnergyTarget, MetricPoint};
use synergy_rt::{measured_sweep, predict_sweep};
use synergy_sim::{evaluate, ClockConfig, DeviceSpec, Workload};

fn bench_extraction(c: &mut Criterion) {
    let irs: Vec<_> = synergy_apps::suite().into_iter().map(|b| b.ir).collect();
    c.bench_function("extract_23_benchmarks", |b| {
        b.iter(|| {
            for ir in &irs {
                black_box(extract(ir));
            }
        })
    });
}

fn bench_device_model(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let info = extract(&synergy_apps::by_name("mat_mul").unwrap().ir);
    let wl = Workload::from_static(&info, 1 << 20);
    c.bench_function("model_evaluate", |b| {
        b.iter(|| black_box(evaluate(&spec, &wl, ClockConfig::new(877, 1086))))
    });
    c.bench_function("measured_sweep_196", |b| {
        let ir = synergy_apps::by_name("mat_mul").unwrap().ir;
        b.iter(|| black_box(measured_sweep(&spec, &ir, 1 << 20)))
    });
}

fn bench_pareto_and_selection(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let sweep: Vec<MetricPoint> =
        measured_sweep(&spec, &synergy_apps::by_name("sobel3").unwrap().ir, 1 << 20);
    c.bench_function("pareto_front_196", |b| {
        b.iter(|| black_box(pareto_front(&sweep)))
    });
    c.bench_function("target_search_all_10", |b| {
        b.iter(|| {
            for &t in &EnergyTarget::PAPER_SET {
                black_box(search_optimal(t, &sweep, spec.baseline_clocks()));
            }
        })
    });
}

fn bench_prediction(c: &mut Criterion) {
    let ctx = DeviceContext::v100();
    let ir = synergy_apps::by_name("black_scholes").unwrap().ir;
    c.bench_function("predict_sweep_196", |b| {
        b.iter(|| black_box(predict_sweep(&ctx.spec, &ctx.models, &ir)))
    });
}

criterion_group!(
    components,
    bench_extraction,
    bench_device_model,
    bench_pareto_and_selection,
    bench_prediction
);
criterion_main!(components);
