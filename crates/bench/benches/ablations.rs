//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * fine-grained (per-kernel) vs coarse-grained (per-application)
//!   frequency selection — the Section 2.2 motivation;
//! * per-kernel clock-set overhead growth with submitted-kernel count
//!   (Section 4.4);
//! * power-sampling interval vs profiling error on short kernels
//!   (Section 4.4);
//! * model choice per objective (Table 2) — cost of training each
//!   algorithm.
//!
//! Each group also prints the simulated-energy outcome once, so the
//! ablation's *result* (not just its cost) is visible in bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use synergy_bench::microbench_suite;
use synergy_cluster::MiniApp;
use synergy_kernel::extract;
use synergy_metrics::EnergyTarget;
use synergy_ml::{Algorithm, ModelSelection};
use synergy_rt::train_device_models;
use synergy_sim::{DeviceSpec, SimDevice, Workload};

/// Fine-grained per-kernel tuning vs one coarse frequency, over a
/// deliberately *diverse* application (memory-bound streaming + compute-
/// bound physics + transcendental finance): the Section 2.2 motivation,
/// quantified. The coarse baseline is the best brute-forced single
/// frequency whose total time stays within the fine schedule's time.
fn bench_fine_vs_coarse(c: &mut Criterion) {
    use synergy_metrics::search_optimal;
    use synergy_rt::measured_sweep;

    let spec = DeviceSpec::v100();
    let app: Vec<synergy_apps::Benchmark> = ["vec_add", "nbody", "black_scholes", "sobel3", "median_filter"]
        .iter()
        .map(|n| synergy_apps::by_name(n).expect("suite benchmark"))
        .collect();

    // Measured sweeps per kernel, with launch sizes rebalanced so every
    // kernel contributes comparable energy at default clocks (in a real
    // application no single kernel would drown the rest; without this the
    // comparison degenerates to tuning one kernel).
    let base_clocks = spec.baseline_clocks();
    let default_energies: Vec<f64> = app
        .iter()
        .map(|b| {
            let s = measured_sweep(&spec, &b.ir, b.work_items);
            synergy_metrics::point_at(&s, base_clocks).unwrap().energy_j
        })
        .collect();
    let e_max = default_energies.iter().cloned().fold(0.0f64, f64::max);
    let sweeps: Vec<_> = app
        .iter()
        .zip(&default_energies)
        .map(|(b, &e)| {
            let items = (b.work_items as f64 * e_max / e).round() as u64;
            measured_sweep(&spec, &b.ir, items.max(1))
        })
        .collect();

    // Default: every kernel at default clocks.
    let at = |sweep: &[synergy_metrics::MetricPoint], clocks| {
        synergy_metrics::point_at(sweep, clocks).expect("clock in sweep")
    };
    let default_e: f64 = sweeps.iter().map(|s| at(s, base_clocks).energy_j).sum();
    let default_t: f64 = sweeps.iter().map(|s| at(s, base_clocks).time_s).sum();

    // Fine-grained: each kernel at its own measured MIN_ENERGY optimum —
    // memory-bound kernels drop deep (losing no time), compute-bound ones
    // stop at their knee.
    let fine: Vec<_> = sweeps
        .iter()
        .map(|s| search_optimal(EnergyTarget::MinEnergy, s, base_clocks).unwrap())
        .collect();
    let fine_e: f64 = fine.iter().map(|p| p.energy_j).sum();
    let fine_t: f64 = fine.iter().map(|p| p.time_s).sum();
    for (b, p) in app.iter().zip(&fine) {
        println!(
            "[ablation fine-vs-coarse] {:>14} -> {:>4} MHz ({:.3} J)",
            b.name, p.clocks.core_mhz, p.energy_j
        );
    }

    // Coarse: best single core clock with total time <= fine total time.
    let mut coarse_best: Option<(u32, f64)> = None;
    for &core in &spec.freq_table.core_mhz {
        let clocks = synergy_sim::ClockConfig::new(877, core);
        let t: f64 = sweeps.iter().map(|s| at(s, clocks).time_s).sum();
        if t > fine_t * 1.0001 {
            continue;
        }
        let e: f64 = sweeps.iter().map(|s| at(s, clocks).energy_j).sum();
        if coarse_best.is_none_or(|(_, be)| e < be) {
            coarse_best = Some((core, e));
        }
    }
    let (coarse_core, coarse_e) = coarse_best.expect("default qualifies");
    println!(
        "\n[ablation fine-vs-coarse] default {default_e:.2} J ({default_t:.4} s) | \
         best coarse@{coarse_core} {coarse_e:.2} J | fine MIN_ENERGY {fine_e:.2} J ({fine_t:.4} s) \
         -> fine saves {:.1}% over the best coarse at equal-or-better time",
        (1.0 - fine_e / coarse_e) * 100.0
    );
    assert!(
        fine_e < coarse_e,
        "fine-grained must beat any single frequency on a diverse app"
    );

    let mut g = c.benchmark_group("fine_vs_coarse");
    g.sample_size(10);
    g.bench_function("measured_sweep_and_search", |b| {
        b.iter(|| {
            let s = measured_sweep(&spec, &app[0].ir, app[0].work_items);
            black_box(search_optimal(EnergyTarget::MinEnergy, &s, base_clocks))
        })
    });
    g.finish();
}

/// Clock-set overhead as the number of submitted kernels grows.
fn bench_clock_set_overhead(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let irs = MiniApp::CloverLeaf.kernel_irs();
    let infos: Vec<_> = irs.iter().map(extract).collect();
    let lo = spec.freq_table.nearest_core(900);
    let hi = spec.freq_table.max_core();

    // Simulated overhead report: total switching time grows linearly with
    // the number of submitted kernels (Section 4.4), and its share depends
    // on kernel duration.
    for &kernels in &[8usize, 64, 512] {
        let dev = SimDevice::new(spec.clone(), 0);
        for i in 0..kernels {
            let core = if i % 2 == 0 { lo } else { hi };
            dev.set_application_clocks(synergy_sim::ClockConfig::new(877, core))
                .unwrap();
            let wl = Workload::from_static(&infos[i % infos.len()], 1 << 20);
            dev.execute(&wl);
        }
        let switch_ns = dev.clock_sets() * spec.clock_set_latency_ns;
        println!(
            "[ablation clock-set] {} kernels: {:.2} ms total switching time ({:.1}% of device time at 1M-item kernels)",
            kernels,
            switch_ns as f64 / 1e6,
            switch_ns as f64 / dev.now_ns() as f64 * 100.0
        );
    }
    // The same 512 kernels at 16M items each: switching shrinks to noise —
    // per-kernel DVFS pays off when kernels are long.
    {
        let dev = SimDevice::new(spec.clone(), 0);
        for i in 0..64 {
            let core = if i % 2 == 0 { lo } else { hi };
            dev.set_application_clocks(synergy_sim::ClockConfig::new(877, core))
                .unwrap();
            dev.execute(&Workload::from_static(&infos[i % infos.len()], 1 << 24));
        }
        let switch_ns = dev.clock_sets() * spec.clock_set_latency_ns;
        println!(
            "[ablation clock-set] 64 kernels at 16M items: {:.1}% of device time switching",
            switch_ns as f64 / dev.now_ns() as f64 * 100.0
        );
    }

    let mut g = c.benchmark_group("clock_set_overhead");
    g.sample_size(10);
    for kernels in [8usize, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(kernels), &kernels, |b, &n| {
            b.iter(|| {
                let dev = SimDevice::new(spec.clone(), 0);
                for i in 0..n {
                    let core = if i % 2 == 0 { lo } else { hi };
                    dev.set_application_clocks(synergy_sim::ClockConfig::new(877, core))
                        .unwrap();
                    dev.execute(&Workload::from_static(&infos[i % infos.len()], 1 << 20));
                }
                black_box(dev.now_ns())
            })
        });
    }
    g.finish();
}

/// Sampling-interval vs fine-grained profiling error.
fn bench_sampling_error(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    // A dial-a-duration kernel: loop length controls execution time.
    let timed_ir = |loops: u64| {
        synergy_kernel::IrBuilder::new()
            .ops(synergy_kernel::Inst::GlobalLoad, 1)
            .loop_n(loops, |b| {
                b.ops(synergy_kernel::Inst::FloatMul, 1)
                    .ops(synergy_kernel::Inst::FloatAdd, 1)
            })
            .ops(synergy_kernel::Inst::GlobalStore, 1)
            .build("timed")
    };
    for (label, loops, items) in [
        ("short_kernel", 64u64, 1u64 << 18),
        ("long_kernel", 1 << 16, 1u64 << 24),
    ] {
        let dev = SimDevice::new(spec.clone(), 0);
        let info = extract(&timed_ir(loops));
        dev.advance_idle(50_000_000);
        let rec = dev.execute(&Workload::from_static(&info, items));
        let trace = dev.trace_snapshot();
        let interval = spec.power_sample_interval_ns;
        let samples = trace.sample(rec.start_ns, rec.end_ns, interval, None);
        let measured =
            synergy_sim::PowerTrace::sampled_energy_j(&samples, interval, rec.end_ns);
        let err = (measured - rec.energy_j).abs() / rec.energy_j * 100.0;
        println!(
            "[ablation sampling] {label}: duration {:.2} ms, profiling error {err:.1}%",
            (rec.end_ns - rec.start_ns) as f64 / 1e6
        );
    }

    let mut g = c.benchmark_group("profiling");
    g.sample_size(20);
    g.bench_function("sample_long_trace", |b| {
        let dev = SimDevice::new(spec.clone(), 0);
        let ir = synergy_apps::by_name("black_scholes").unwrap().ir;
        let info = extract(&ir);
        let rec = dev.execute(&Workload::from_static(&info, 1 << 26));
        let trace = dev.trace_snapshot();
        b.iter(|| {
            black_box(trace.sample(
                rec.start_ns,
                rec.end_ns,
                spec.power_sample_interval_ns,
                None,
            ))
        })
    });
    g.finish();
}

/// Training cost of each ML algorithm (the Table-2 choice dimension).
fn bench_model_choice(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let suite = microbench_suite();
    let mut g = c.benchmark_group("model_training");
    g.sample_size(10);
    for algo in [Algorithm::Linear, Algorithm::Lasso, Algorithm::RandomForest] {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.to_string()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    train_device_models(
                        &spec,
                        &suite,
                        ModelSelection::uniform(algo),
                        16,
                        7,
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_fine_vs_coarse,
    bench_clock_set_overhead,
    bench_sampling_error,
    bench_model_choice
);
criterion_main!(ablations);
