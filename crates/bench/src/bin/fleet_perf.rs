//! Scaling and volatility harness for the `synergy-fleet` coordinator.
//!
//! Spawns N in-process `synergy-serve` nodes behind one coordinator and
//! drives the `serve_perf` traffic mix (Compile / Sweep / Predict /
//! Ping over a small benchmark pool) through the fleet with blocking
//! clients, at a ladder of node counts. Each pass reports closed-loop
//! throughput; the ladder yields `scaling_max` — pass-N throughput over
//! pass-1 throughput — the fleet's headline number.
//!
//! After the ladder, a *volatility* pass at the widest node count
//! preempts one node mid-run (grace window, then rejoin): its queued
//! work is orphaned, the rebalancer re-dispatches it through the exact
//! Hungarian matcher, and the pass still must answer every accepted
//! request with the matching kind — the zero-drop guarantee under
//! preemption, measured rather than asserted in a unit test.
//!
//! Clients retry `Busy { retry_after_ms }` through the shared
//! [`RetryPolicy`] (the same jittered-backoff schedule the CLI and the
//! coordinator's forwarders use), with an effectively unbounded budget
//! so admission rejections never masquerade as drops.
//!
//! Flags:
//!
//! * `--small` — CI-sized: node ladder 1→4, fewer requests.
//! * `--nodes N` — cap the ladder at N nodes (default 8).
//! * `--per-client N` — fixed requests per client (default scaled).
//!
//! Emits `experiments/BENCH_fleet.json` and appends a commit-stamped
//! `fleet_perf` line to `experiments/bench_history.jsonl`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use synergy_bench::{append_bench_history, artifact_dir, print_table};
use synergy_fleet::{spawn_fleet, FleetConfig, FleetStats, NodeConfig};
use synergy_kernel::NUM_FEATURES;
use synergy_serve::{
    spawn, Client, Json, ModelProfile, Request, Response, RetryPolicy, ServeConfig, ServerHandle,
};
use synergy_telemetry::Metrics;

/// Deterministic per-client request mixer (no external RNG) — the same
/// LCG and mix as `serve_perf`, so fleet numbers compare like for like.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const BENCH_POOL: [&str; 3] = ["vec_add", "sobel3", "mat_mul"];

fn pick_request(rng: &mut Lcg) -> Request {
    let bench = BENCH_POOL[(rng.next() % BENCH_POOL.len() as u64) as usize].to_string();
    match rng.next() % 100 {
        0..=44 => Request::Compile {
            bench,
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        },
        45..=74 => Request::Sweep {
            bench,
            device: "v100".to_string(),
        },
        75..=89 => Request::Predict {
            device: "v100".to_string(),
            features: vec![1.0; NUM_FEATURES],
            mem_mhz: 877,
            core_mhz: 1312,
        },
        _ => Request::Ping,
    }
}

fn matches_kind(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (Request::Compile { .. }, Response::Compiled { .. })
            | (Request::Sweep { .. }, Response::SweepFront { .. })
            | (Request::Predict { .. }, Response::Predicted { .. })
            | (Request::Ping, Response::Pong)
    )
}

/// One pass's merged client-side tally plus the coordinator's counters.
struct PassOutcome {
    nodes: usize,
    clients: usize,
    total: u64,
    answered: u64,
    mismatched: u64,
    expired: u64,
    busy_retries: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    fleet: FleetStats,
}

impl PassOutcome {
    fn dropped(&self) -> u64 {
        self.total - self.answered - self.mismatched - self.expired
    }
}

/// Spawn `n` serve nodes, pre-train their model caches (so the timed
/// region measures steady-state routing, not one-off training), front
/// them with a coordinator, and drive `clients × per_client` requests.
///
/// `preempt_one` turns on the volatility injection: ~a third of the way
/// in, one node is preempted with a 50ms grace window and rejoined 300ms
/// later; the pass must still answer everything.
fn run_pass(n: usize, clients: usize, per_client: usize, preempt_one: bool) -> PassOutcome {
    let mut nodes: Vec<ServerHandle> = (0..n)
        .map(|_| {
            spawn(ServeConfig {
                workers: 4,
                queue_capacity: 64,
                profile: ModelProfile::small(),
                compute_delay: Duration::from_millis(2),
                metrics: Metrics::disabled(),
                ..ServeConfig::default()
            })
            .expect("bind node")
        })
        .collect();
    for node in &nodes {
        let mut warm = Client::connect(node.addr()).expect("warmup connect");
        let _ = warm.set_timeout(Some(Duration::from_secs(300)));
        for bench in BENCH_POOL {
            let _ = warm.compile(bench, "v100", &["ES_50"]);
        }
    }

    let roster: Vec<NodeConfig> = nodes
        .iter()
        .map(|h| NodeConfig {
            addr: h.addr().to_string(),
            devices: Vec::new(),
        })
        .collect();
    let fleet = spawn_fleet(FleetConfig {
        nodes: roster,
        heartbeat_interval: Duration::from_millis(100),
        dead_after: Duration::from_millis(1000),
        max_inflight_per_node: 8,
        metrics: Metrics::disabled(),
        ..FleetConfig::default()
    })
    .expect("bind coordinator");
    let addr = fleet.addr();
    println!(
        "fleet_perf[{}]: {clients} clients x {per_client} through {addr} over {n} node(s){}",
        if preempt_one { "volatility" } else { "scaling" },
        if preempt_one { " with preemption" } else { "" },
    );

    let answered = AtomicU64::new(0);
    let mismatched = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let busy_retries = AtomicU64::new(0);
    let started = Instant::now();
    thread::scope(|s| {
        for c in 0..clients {
            let (answered, mismatched, expired, busy_retries) =
                (&answered, &mismatched, &expired, &busy_retries);
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                let _ = client.set_timeout(Some(Duration::from_secs(60)));
                let mut rng = Lcg(0xf1ee7 ^ (c as u64) << 17);
                for _ in 0..per_client {
                    let req = pick_request(&mut rng);
                    // Effectively unbounded: an admission rejection must
                    // never exhaust into a client-visible Busy, or it
                    // would read as a drop.
                    let budget = 1_000_000u32;
                    let mut policy = RetryPolicy::new(budget, 5, 200, 0xb0ff ^ c as u64);
                    let resp = client
                        .request_with_retry(&req, 30_000, &mut policy)
                        .expect("fleet request");
                    busy_retries
                        .fetch_add((budget - policy.retries_left()) as u64, Ordering::Relaxed);
                    match resp {
                        Response::Expired { .. } => expired.fetch_add(1, Ordering::Relaxed),
                        other if matches_kind(&req, &other) => {
                            answered.fetch_add(1, Ordering::Relaxed)
                        }
                        _ => mismatched.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        if preempt_one {
            let fleet = &fleet;
            let victim = nodes.last().expect("at least one node").addr().to_string();
            s.spawn(move || {
                thread::sleep(Duration::from_millis(150));
                assert!(fleet.preempt(&victim, 50), "victim node not in roster");
                thread::sleep(Duration::from_millis(300));
                fleet.join_node(&victim);
            });
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    fleet.drain();
    let stats = fleet.join();
    for node in nodes.drain(..) {
        node.drain();
        node.join();
    }

    let answered = answered.into_inner();
    PassOutcome {
        nodes: n,
        clients,
        total: (clients * per_client) as u64,
        answered,
        mismatched: mismatched.into_inner(),
        expired: expired.into_inner(),
        busy_retries: busy_retries.into_inner(),
        elapsed_s,
        throughput_rps: answered as f64 / elapsed_s,
        fleet: stats,
    }
}

struct Cli {
    small: bool,
    max_nodes: usize,
    per_client: Option<usize>,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let mut max_nodes = if small { 4 } else { 8 };
    let mut per_client = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--nodes" => max_nodes = grab("--nodes").max(1),
            "--per-client" => per_client = Some(grab("--per-client").max(1)),
            "--small" => {}
            other => panic!("unknown fleet_perf flag `{other}` (try --small, --nodes, --per-client)"),
        }
    }
    Cli {
        small,
        max_nodes,
        per_client,
    }
}

fn main() {
    let cli = parse_cli();
    // The node-count ladder: powers of two up to the cap.
    let mut ladder = vec![1usize];
    while *ladder.last().expect("nonempty") * 2 <= cli.max_nodes {
        ladder.push(ladder.last().expect("nonempty") * 2);
    }
    let per_client = cli.per_client.unwrap_or(if cli.small { 12 } else { 24 });

    // Scaling ladder: offered load grows with the fleet (6 clients per
    // node — inside the 8-slot admission bound, so Busy churn stays low
    // and the ladder measures capacity, not retry backoff).
    let mut passes: Vec<PassOutcome> = ladder
        .iter()
        .map(|&n| run_pass(n, 6 * n, per_client, false))
        .collect();

    let base = passes[0].throughput_rps;
    let top = passes.last().expect("nonempty").throughput_rps;
    let scaling_max = if base > 0.0 { top / base } else { 0.0 };

    // Volatility pass at the widest count: preempt one node mid-run,
    // rejoin it, and still answer everything.
    let widest = *ladder.last().expect("nonempty");
    let volatility = run_pass(widest.max(2), 6 * widest.max(2), per_client, true);

    let mut rows: Vec<Vec<String>> = passes
        .iter()
        .map(|p| {
            vec![
                format!("{} node(s)", p.nodes),
                p.total.to_string(),
                p.answered.to_string(),
                p.dropped().to_string(),
                p.busy_retries.to_string(),
                format!("{:.1}", p.throughput_rps),
                p.fleet.reassigned.to_string(),
                p.fleet.preemptions.to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        format!("{} +preempt", volatility.nodes),
        volatility.total.to_string(),
        volatility.answered.to_string(),
        volatility.dropped().to_string(),
        volatility.busy_retries.to_string(),
        format!("{:.1}", volatility.throughput_rps),
        volatility.fleet.reassigned.to_string(),
        volatility.fleet.preemptions.to_string(),
    ]);
    print_table(
        &[
            "pass",
            "requests",
            "answered",
            "dropped",
            "busy retries",
            "req/s",
            "reassigned",
            "preemptions",
        ],
        &rows,
    );
    println!("scaling 1->{widest}: {scaling_max:.2}x");

    passes.push(volatility);
    let pass_json = |p: &PassOutcome, volatility: bool| {
        Json::Obj(vec![
            ("nodes".into(), Json::Int(p.nodes as i128)),
            ("clients".into(), Json::Int(p.clients as i128)),
            ("volatility".into(), Json::Bool(volatility)),
            ("total_requests".into(), Json::Int(p.total as i128)),
            ("answered".into(), Json::Int(p.answered as i128)),
            ("mismatched".into(), Json::Int(p.mismatched as i128)),
            ("expired".into(), Json::Int(p.expired as i128)),
            ("dropped".into(), Json::Int(p.dropped() as i128)),
            ("busy_retries".into(), Json::Int(p.busy_retries as i128)),
            ("elapsed_s".into(), Json::Num(p.elapsed_s)),
            ("throughput_rps".into(), Json::Num(p.throughput_rps)),
            ("forwarded".into(), Json::Int(p.fleet.forwarded as i128)),
            ("reassigned".into(), Json::Int(p.fleet.reassigned as i128)),
            ("orphaned".into(), Json::Int(p.fleet.orphaned as i128)),
            ("preemptions".into(), Json::Int(p.fleet.preemptions as i128)),
            ("dead_nodes".into(), Json::Int(p.fleet.dead_nodes as i128)),
        ])
    };
    let last = passes.len() - 1;
    let artifact = Json::Obj(vec![
        (
            "mode".into(),
            Json::Str(if cli.small { "small" } else { "default" }.into()),
        ),
        ("per_client".into(), Json::Int(per_client as i128)),
        (
            "node_counts".into(),
            Json::Arr(ladder.iter().map(|&n| Json::Int(n as i128)).collect()),
        ),
        ("scaling_max".into(), Json::Num(scaling_max)),
        (
            "passes".into(),
            Json::Arr(
                passes
                    .iter()
                    .enumerate()
                    .map(|(i, p)| pass_json(p, i == last))
                    .collect(),
            ),
        ),
    ]);
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(&path, artifact.encode()).expect("write artifact");
    println!("\n[artifact] {}", path.display());

    let vol = passes.last().expect("nonempty");
    append_bench_history(
        "fleet_perf",
        &serde_json::json!({
            "mode": if cli.small { "small" } else { "default" },
            "node_counts": ladder,
            "per_client": per_client,
            "scaling_max": scaling_max,
            "base_throughput_rps": base,
            "top_throughput_rps": top,
            "volatility_answered": vol.answered,
            "volatility_dropped": vol.dropped(),
            "volatility_reassigned": vol.fleet.reassigned,
            "volatility_preemptions": vol.fleet.preemptions,
        }),
    );

    // Acceptance gates: nothing dropped or mismatched anywhere, and the
    // volatility pass actually exercised preemption.
    let mut failed = false;
    for p in &passes {
        if p.dropped() != 0 || p.mismatched != 0 {
            eprintln!(
                "FAIL: pass at {} node(s): {} dropped, {} mismatched",
                p.nodes,
                p.dropped(),
                p.mismatched
            );
            failed = true;
        }
    }
    if vol.fleet.preemptions == 0 {
        eprintln!("FAIL: volatility pass never preempted a node");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("fleet_perf: OK");
}
