//! Figure 9: absolute percentage error of the predicted optimal frequency
//! per benchmark, per ML algorithm, per objective.
//!
//! Expected shapes (Section 8.3): many zero-APE cells for MAX_PERF
//! (predicted frequency equals the actual optimum); Linear best on the
//! performance-flavoured objectives, Random Forest best on the
//! energy-flavoured ones.

use synergy_bench::accuracy::run_accuracy_study;
use synergy_bench::{print_table, write_artifact, EXPERIMENT_SEED, TRAIN_STRIDE};
use synergy_ml::Algorithm;
use synergy_sim::DeviceSpec;

fn main() {
    println!("Figure 9 — per-benchmark frequency-prediction APE (V100)\n");
    let spec = DeviceSpec::v100();
    let (records, _summaries) = run_accuracy_study(&spec, EXPERIMENT_SEED, TRAIN_STRIDE);

    // One printed panel per headline objective (the paper's subfigures).
    for objective in ["MAX_PERF", "MIN_ENERGY", "MIN_EDP", "MIN_ED2P"] {
        println!("\n--- objective {objective} (APE, %) ---");
        let benches: Vec<String> = records
            .iter()
            .filter(|r| r.algorithm == "Linear" && r.target == objective)
            .map(|r| r.benchmark.clone())
            .collect();
        let rows: Vec<Vec<String>> = benches
            .iter()
            .map(|b| {
                let mut row = vec![b.clone()];
                for algo in Algorithm::ALL {
                    let ape = records
                        .iter()
                        .find(|r| {
                            r.benchmark == *b
                                && r.algorithm == algo.to_string()
                                && r.target == objective
                        })
                        .map(|r| r.ape * 100.0)
                        .unwrap_or(f64::NAN);
                    row.push(format!("{ape:.2}"));
                }
                row
            })
            .collect();
        print_table(&["benchmark", "Linear", "Lasso", "RandomForest", "SVR_RBF"], &rows);
    }

    let zero_maxperf = records
        .iter()
        .filter(|r| r.target == "MAX_PERF" && r.ape == 0.0)
        .count();
    println!(
        "\n{} of {} MAX_PERF cells have zero APE (predicted frequency == \
         actual optimum), matching the paper's Figure 9a observation.",
        zero_maxperf,
        records.iter().filter(|r| r.target == "MAX_PERF").count()
    );
    write_artifact("fig9_prediction_ape", &records);
}
