//! Figure 2: two kernels with different energy characterization on V100 —
//! LinearRegression (compute-bound, little to save) vs MedianFilter
//! (friendly tradeoffs, >20% savings available).

use serde::Serialize;
use synergy_bench::{characterization_points, characterize, print_table, write_artifact, CharacterizationPoint};
use synergy_apps::by_name;
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct KernelCharacterization {
    kernel: String,
    max_energy_saving_pct: f64,
    speedup_range_on_front: (f64, f64),
    points: Vec<CharacterizationPoint>,
}

fn characterize_one(spec: &DeviceSpec, name: &str) -> KernelCharacterization {
    let bench = by_name(name).expect("benchmark exists");
    let sweep = characterize(spec, &bench);
    let pts = characterization_points(spec, &sweep);
    let min_energy = pts
        .iter()
        .map(|p| p.normalized_energy)
        .fold(f64::INFINITY, f64::min);
    let front: Vec<&CharacterizationPoint> = pts.iter().filter(|p| p.pareto).collect();
    let spd = front
        .iter()
        .map(|p| p.speedup)
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s), hi.max(s))
        });
    KernelCharacterization {
        kernel: name.to_string(),
        max_energy_saving_pct: (1.0 - min_energy) * 100.0,
        speedup_range_on_front: spd,
        points: pts,
    }
}

fn main() {
    println!("Figure 2 — energy characterization of two kernels (V100)\n");
    let spec = DeviceSpec::v100();
    let results = [
        characterize_one(&spec, "linear_regression"),
        characterize_one(&spec, "median_filter"),
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.1}%", r.max_energy_saving_pct),
                format!(
                    "{:.2}..{:.2}",
                    r.speedup_range_on_front.0, r.speedup_range_on_front.1
                ),
            ]
        })
        .collect();
    print_table(&["kernel", "max energy saving", "front speedup range"], &rows);
    println!(
        "\nPaper: linear regression saves <10% with inefficient low-frequency \
         configs; median filter saves >20% without losing much performance."
    );
    write_artifact("fig2_characterization", &results);
}
