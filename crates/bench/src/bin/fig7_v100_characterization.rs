//! Figure 7: speedup / normalized-energy characterization (with Pareto
//! fronts) of MatMul, Sobel3, MedianFilter and NBody on NVIDIA V100.
//!
//! Shape targets from the paper: Sobel3's Pareto-front speedups span a
//! wide range (0.73–1.15); MatMul's are nearly flat (0.95–1.01) while it
//! saves ~33% energy at ~5% performance loss; the default configuration is
//! not always Pareto-optimal on V100.

use serde::Serialize;
use synergy_bench::{
    characterization_points, characterize, print_table, write_artifact, CharacterizationPoint,
};
use synergy_apps::figure7_selection;
use synergy_metrics::{point_at, search_optimal, EnergyTarget};
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct BenchCharacterization {
    kernel: String,
    front_speedup_min: f64,
    front_speedup_max: f64,
    max_energy_saving_pct: f64,
    /// Energy saving of the PL_25-style "cheap" tradeoff: best energy at
    /// ≤5% performance loss vs default.
    saving_at_5pct_loss: f64,
    default_is_pareto: bool,
    points: Vec<CharacterizationPoint>,
}

fn characterize_bench(spec: &DeviceSpec, name: &str) -> BenchCharacterization {
    let bench = synergy_apps::by_name(name).expect("benchmark exists");
    let sweep = characterize(spec, &bench);
    let pts = characterization_points(spec, &sweep);
    let front: Vec<&CharacterizationPoint> = pts.iter().filter(|p| p.pareto).collect();
    let (lo, hi) = front.iter().fold((f64::MAX, f64::MIN), |(l, h), p| {
        (l.min(p.speedup), h.max(p.speedup))
    });
    let min_e = pts
        .iter()
        .map(|p| p.normalized_energy)
        .fold(f64::INFINITY, f64::min);
    // Best energy among configs within 5% of default performance.
    let cheap = pts
        .iter()
        .filter(|p| p.speedup >= 0.95)
        .map(|p| p.normalized_energy)
        .fold(f64::INFINITY, f64::min);
    let base = point_at(&sweep, spec.baseline_clocks()).unwrap();
    let default_is_pareto = synergy_metrics::is_pareto_optimal(&base, &sweep);
    // Sanity: targets still resolve on this sweep.
    let _ = search_optimal(EnergyTarget::MinEdp, &sweep, spec.baseline_clocks()).unwrap();
    BenchCharacterization {
        kernel: name.to_string(),
        front_speedup_min: lo,
        front_speedup_max: hi,
        max_energy_saving_pct: (1.0 - min_e) * 100.0,
        saving_at_5pct_loss: (1.0 - cheap) * 100.0,
        default_is_pareto,
        points: pts,
    }
}

fn main() {
    println!("Figure 7 — benchmark characterization on NVIDIA V100\n");
    let spec = DeviceSpec::v100();
    let results: Vec<BenchCharacterization> = figure7_selection()
        .iter()
        .map(|b| characterize_bench(&spec, b.name))
        .collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.2}..{:.2}", r.front_speedup_min, r.front_speedup_max),
                format!("{:.1}%", r.max_energy_saving_pct),
                format!("{:.1}%", r.saving_at_5pct_loss),
                r.default_is_pareto.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "front speedup",
            "max saving",
            "saving@<=5% loss",
            "default on front",
        ],
        &rows,
    );
    println!(
        "\nPaper shapes: mat_mul flat speedups (0.95..1.01) with ~33% saving at \
         ~5% loss; sobel3 wide speedups (0.73..1.15), ~30% saving at ~27% loss; \
         the V100 default is not always Pareto-optimal."
    );
    write_artifact("fig7_v100_characterization", &results);
}
