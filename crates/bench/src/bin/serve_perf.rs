//! Closed-loop load test for the `synergy-serve` daemon: N client
//! threads hammer an in-process server with a mixed Compile / Sweep /
//! Predict / Ping workload over a deliberately small benchmark pool, so
//! duplicate in-flight keys exercise request coalescing and the bounded
//! queue exercises admission control. Emits `BENCH_serve.json` so the
//! serving-path perf trajectory is visible across PRs.
//!
//! Every request must come back with a response of the matching kind —
//! `Busy` replies are retried after the server-suggested backoff, and
//! the binary exits non-zero on any dropped or mismatched response.
//!
//! Run with `--small` for the CI-sized configuration (8 clients, fewer
//! requests); the default runs 16 clients.

use std::thread;
use std::time::{Duration, Instant};

use synergy_bench::{artifact_dir, print_table};
use synergy_kernel::NUM_FEATURES;
use synergy_serve::{spawn, Client, Json, ModelProfile, Request, Response, ServeConfig};

/// Deterministic per-client request mixer (no external RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The small pool keeps duplicate (kernel, device, target) keys in
/// flight simultaneously, which is what coalescing collapses.
const BENCH_POOL: [&str; 3] = ["vec_add", "sobel3", "mat_mul"];

fn pick_request(rng: &mut Lcg) -> Request {
    let bench = BENCH_POOL[(rng.next() % BENCH_POOL.len() as u64) as usize].to_string();
    match rng.next() % 100 {
        0..=44 => Request::Compile {
            bench,
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        },
        45..=74 => Request::Sweep {
            bench,
            device: "v100".to_string(),
        },
        75..=89 => Request::Predict {
            device: "v100".to_string(),
            features: vec![1.0; NUM_FEATURES],
            mem_mhz: 877,
            core_mhz: 1312,
        },
        _ => Request::Ping,
    }
}

fn matches_kind(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (Request::Compile { .. }, Response::Compiled { .. })
            | (Request::Sweep { .. }, Response::SweepFront { .. })
            | (Request::Predict { .. }, Response::Predicted { .. })
            | (Request::Ping, Response::Pong)
    )
}

/// Per-client tally, merged after the join.
#[derive(Default)]
struct ClientReport {
    latencies_ms: Vec<f64>,
    busy_retries: u64,
    mismatched: u64,
    answered: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (clients, per_client) = if small { (8usize, 24usize) } else { (16usize, 96usize) };

    // A short synthetic service time keeps requests overlapping, so the
    // queue actually fills and duplicate keys coalesce; model training
    // itself is memoized after the first hit.
    let handle = spawn(ServeConfig {
        workers: 4,
        queue_capacity: 2 * clients,
        profile: ModelProfile::small(),
        compute_delay: Duration::from_millis(2),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    println!(
        "serve_perf: {clients} clients x {per_client} requests against {addr} ({} mode)",
        if small { "small" } else { "default" }
    );

    let started = Instant::now();
    let reports: Vec<ClientReport> = {
        let mut joins = Vec::new();
        for c in 0..clients {
            joins.push(thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut rng = Lcg(0x5eed ^ (c as u64) << 17);
                let mut report = ClientReport::default();
                for _ in 0..per_client {
                    let req = pick_request(&mut rng);
                    let begun = Instant::now();
                    loop {
                        let resp = client
                            .request_with_deadline(req.clone(), 10_000)
                            .expect("transport");
                        match resp {
                            Response::Busy { retry_after_ms } => {
                                report.busy_retries += 1;
                                thread::sleep(Duration::from_millis(retry_after_ms));
                            }
                            other => {
                                if matches_kind(&req, &other) {
                                    report.answered += 1;
                                } else {
                                    report.mismatched += 1;
                                }
                                break;
                            }
                        }
                    }
                    report
                        .latencies_ms
                        .push(begun.elapsed().as_secs_f64() * 1e3);
                }
                report
            }));
        }
        joins.into_iter().map(|j| j.join().expect("client thread")).collect()
    };
    let elapsed = started.elapsed().as_secs_f64();

    handle.drain();
    let stats = handle.join();

    let mut latencies: Vec<f64> = Vec::new();
    let (mut busy_retries, mut mismatched, mut answered) = (0u64, 0u64, 0u64);
    for r in &reports {
        latencies.extend_from_slice(&r.latencies_ms);
        busy_retries += r.busy_retries;
        mismatched += r.mismatched;
        answered += r.answered;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));

    let total = (clients * per_client) as u64;
    let dropped = total - answered - mismatched;
    let throughput = answered as f64 / elapsed;
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let coalesce_total = stats.coalesce_leaders + stats.coalesce_joins;
    let coalesce_rate = if coalesce_total == 0 {
        0.0
    } else {
        stats.coalesce_joins as f64 / coalesce_total as f64
    };

    print_table(
        &["metric", "value"],
        &[
            vec!["clients".into(), clients.to_string()],
            vec!["requests".into(), total.to_string()],
            vec!["answered".into(), answered.to_string()],
            vec!["mismatched".into(), mismatched.to_string()],
            vec!["dropped".into(), dropped.to_string()],
            vec!["busy retries".into(), busy_retries.to_string()],
            vec!["expired".into(), stats.expired.to_string()],
            vec!["throughput (req/s)".into(), format!("{throughput:.1}")],
            vec!["p50 latency (ms)".into(), format!("{p50:.3}")],
            vec!["p95 latency (ms)".into(), format!("{p95:.3}")],
            vec!["p99 latency (ms)".into(), format!("{p99:.3}")],
            vec!["peak queue depth".into(), stats.queue_depth_max.to_string()],
            vec!["coalesce leaders".into(), stats.coalesce_leaders.to_string()],
            vec!["coalesce joins".into(), stats.coalesce_joins.to_string()],
            vec!["coalescing rate".into(), format!("{coalesce_rate:.3}")],
        ],
    );

    // The artifact is hand-encoded through the serve JSON codec so the
    // binary stays independent of serde for its output path.
    let f = |v: f64| Json::Num(v);
    let i = |v: u64| Json::Int(v as i128);
    let artifact = Json::Obj(vec![
        ("mode".into(), Json::Str(if small { "small" } else { "default" }.into())),
        ("clients".into(), i(clients as u64)),
        ("requests_per_client".into(), i(per_client as u64)),
        ("total_requests".into(), i(total)),
        ("answered".into(), i(answered)),
        ("mismatched".into(), i(mismatched)),
        ("dropped".into(), i(dropped)),
        ("busy_retries".into(), i(busy_retries)),
        ("expired".into(), i(stats.expired)),
        ("elapsed_s".into(), f(elapsed)),
        ("throughput_rps".into(), f(throughput)),
        ("p50_ms".into(), f(p50)),
        ("p95_ms".into(), f(p95)),
        ("p99_ms".into(), f(p99)),
        ("queue_depth_max".into(), i(stats.queue_depth_max)),
        ("coalesce_leaders".into(), i(stats.coalesce_leaders)),
        ("coalesce_joins".into(), i(stats.coalesce_joins)),
        ("coalescing_rate".into(), f(coalesce_rate)),
        ("busy_rejections".into(), i(stats.busy_rejections)),
        ("lint_denials".into(), i(stats.lint_denials)),
        ("errors".into(), i(stats.errors)),
        ("connections".into(), i(stats.connections)),
    ]);
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, artifact.encode()).expect("write artifact");
    println!("\n[artifact] {}", path.display());

    // Acceptance gates: every request answered with the matching kind,
    // and duplicate-key traffic actually coalesced.
    let mut failed = false;
    if dropped != 0 || mismatched != 0 {
        eprintln!("FAIL: {dropped} dropped, {mismatched} mismatched responses");
        failed = true;
    }
    if stats.coalesce_joins == 0 {
        eprintln!("FAIL: coalescing never triggered on duplicate-key traffic");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_perf: OK");
}
