//! Closed-loop load test for the `synergy-serve` daemon.
//!
//! N simulated clients hammer an in-process server with a mixed
//! Compile / Sweep / Predict / Ping workload over a deliberately small
//! benchmark pool, so duplicate in-flight keys exercise request
//! coalescing and the bounded queue exercises admission control. The
//! clients are *multiplexed*: a handful of driver threads each run a
//! `poll(2)` loop over nonblocking sockets, one state machine per
//! connection, so `--clients 10000` costs ten thousand sockets rather
//! than ten thousand threads — the same trick the server's reactor
//! plays, pointed back at it.
//!
//! Every request must come back with a response of the matching kind —
//! `Busy` replies are retried after the server-suggested backoff, and
//! the binary exits non-zero on any dropped or mismatched response.
//!
//! Flags:
//!
//! * `--small` — the CI-sized configuration (8 clients, fewer requests).
//! * `--clients N` — simulate N connections (default 16; scales to 10k).
//! * `--duration SECS` — run each client until the wall deadline instead
//!   of a fixed per-client request count.
//! * `--reactors N` — server reactor shards (default: scaled to clients).
//!
//! Latency percentiles come from the shared telemetry
//! [`LogHistogram`] — the same fixed-bucket type the daemon's live
//! metrics plane uses — so per-client tallies merge exactly instead of
//! concatenating and sorting every sample. A pair of small calibration
//! passes (metrics plane disabled, then enabled) measures the live
//! metrics overhead on the closed-loop wall time.
//!
//! Emits `BENCH_serve.json` (including `clients`, `p99_ms`,
//! accept→first-byte percentiles and `metrics_overhead_pct`) and appends
//! a commit-stamped line to `experiments/bench_history.jsonl` so the
//! serving-path perf trajectory is visible across PRs.

#![deny(unsafe_op_in_unsafe_fn)]

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::thread;
use std::time::{Duration, Instant};

use synergy_bench::{append_bench_history, artifact_dir, print_table};
use synergy_kernel::NUM_FEATURES;
use synergy_serve::poll::{self, PollFd, POLLIN, POLLOUT};
use synergy_serve::{
    spawn, Client, FrameBuffer, Json, ModelProfile, Request, RequestFrame, Response,
    ResponseFrame, RetryPolicy, ServeConfig, StatsSnapshot,
};
use synergy_telemetry::{LogHistogram, Metrics};

/// Deterministic per-client request mixer (no external RNG).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The small pool keeps duplicate (kernel, device, target) keys in
/// flight simultaneously, which is what coalescing collapses.
const BENCH_POOL: [&str; 3] = ["vec_add", "sobel3", "mat_mul"];

fn pick_request(rng: &mut Lcg) -> Request {
    let bench = BENCH_POOL[(rng.next() % BENCH_POOL.len() as u64) as usize].to_string();
    match rng.next() % 100 {
        0..=44 => Request::Compile {
            bench,
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        },
        45..=74 => Request::Sweep {
            bench,
            device: "v100".to_string(),
        },
        75..=89 => Request::Predict {
            device: "v100".to_string(),
            features: vec![1.0; NUM_FEATURES],
            mem_mhz: 877,
            core_mhz: 1312,
        },
        _ => Request::Ping,
    }
}

fn matches_kind(req: &Request, resp: &Response) -> bool {
    matches!(
        (req, resp),
        (Request::Compile { .. }, Response::Compiled { .. })
            | (Request::Sweep { .. }, Response::SweepFront { .. })
            | (Request::Predict { .. }, Response::Predicted { .. })
            | (Request::Ping, Response::Pong)
    )
}

/// Per-client tally. The latency and first-byte distributions live in
/// the shared log-bucketed histogram, so merging reports after the join
/// is exact bucket addition — no per-sample vectors, no full sort.
#[derive(Default)]
struct ClientReport {
    latency: LogHistogram,
    first_byte: LogHistogram,
    busy_retries: u64,
    mismatched: u64,
    answered: u64,
}

/// One simulated connection: a nonblocking socket plus the closed-loop
/// request state machine a client thread used to be.
struct SimClient {
    stream: TcpStream,
    fd: RawFd,
    inbuf: FrameBuffer,
    /// Encoded-but-unsent request bytes ([`out_at`](Self::out_at) is the
    /// write cursor; partial writes resume there).
    out: Vec<u8>,
    out_at: usize,
    rng: Lcg,
    next_id: u64,
    /// Backoff schedule for Busy replies — the shared [`RetryPolicy`]
    /// (jittered exponential growth over the server's hint), re-armed
    /// per logical request with an unbounded budget so the closed loop
    /// never abandons a request.
    policy: RetryPolicy,
    /// The in-flight request: id, body (kept for kind-matching and Busy
    /// retries), and when the *logical* request began — retries are part
    /// of the same latency sample, as in the thread-per-client harness.
    outstanding: Option<(u64, Request, Instant)>,
    /// A Busy backoff in progress: when to resend, what, and the
    /// original begin time.
    retry_at: Option<(Instant, Request, Instant)>,
    connected_at: Instant,
    /// Requests left in fixed-count mode; `None` in `--duration` mode.
    remaining: Option<usize>,
    done: bool,
    report: ClientReport,
}

impl SimClient {
    fn connect(
        addr: SocketAddr,
        seed: u64,
        remaining: Option<usize>,
    ) -> SimClient {
        let stream = connect_with_retry(addr);
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).expect("nonblocking client");
        let fd = stream.as_raw_fd();
        SimClient {
            stream,
            fd,
            inbuf: FrameBuffer::new(),
            out: Vec::new(),
            out_at: 0,
            rng: Lcg(seed),
            next_id: 0,
            policy: RetryPolicy::new(u32::MAX, 1, 400, seed | 1),
            outstanding: None,
            retry_at: None,
            connected_at: Instant::now(),
            remaining,
            done: false,
            report: ClientReport::default(),
        }
    }

    fn send_request(&mut self, req: Request, begun: Instant) {
        self.next_id += 1;
        let frame = RequestFrame {
            id: self.next_id,
            deadline_ms: 10_000,
            req: req.clone(),
        };
        self.out.extend_from_slice(&frame.encode_framed());
        self.outstanding = Some((self.next_id, req, begun));
    }

    /// Begin the next logical request, or mark the client finished.
    fn issue_next(&mut self, wall_deadline: Option<Instant>) {
        let more = match (self.remaining.as_mut(), wall_deadline) {
            (Some(0), _) => false,
            (Some(n), _) => {
                *n -= 1;
                true
            }
            (None, Some(d)) => Instant::now() < d,
            (None, None) => false,
        };
        if !more {
            self.done = true;
            return;
        }
        let req = pick_request(&mut self.rng);
        // Fresh backoff per logical request, so one congested stretch
        // doesn't ratchet the floor up for the rest of the run.
        self.policy = RetryPolicy::new(u32::MAX, 1, 400, self.rng.next() | 1);
        self.send_request(req, Instant::now());
    }

    /// Write queued bytes as far as the socket allows.
    fn flush(&mut self) {
        while self.out_at < self.out.len() {
            match (&self.stream).write(&self.out[self.out_at..]) {
                Ok(0) => panic!("server closed connection mid-write"),
                Ok(n) => self.out_at += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("transport write: {e}"),
            }
        }
        if self.out_at == self.out.len() {
            self.out.clear();
            self.out_at = 0;
        }
    }

    /// Drain the socket and run the state machine over every complete
    /// response frame.
    fn read_and_dispatch(&mut self, wall_deadline: Option<Instant>) {
        loop {
            let n = {
                let mut r = &self.stream;
                self.inbuf.read_from(&mut r)
            };
            match n {
                Ok(0) => panic!("server closed connection with a request outstanding"),
                Ok(_) => {
                    if self.report.first_byte.count() == 0 {
                        self.report.first_byte.observe(self.connected_at.elapsed());
                    }
                    loop {
                        // Small copy so the state machine can borrow
                        // `self` mutably; response frames are tiny.
                        let payload = match self.inbuf.next_frame() {
                            Ok(Some(p)) => p.to_vec(),
                            Ok(None) => break,
                            Err(e) => panic!("response framing: {e}"),
                        };
                        self.on_response(&payload, wall_deadline);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("transport read: {e}"),
            }
        }
    }

    fn on_response(&mut self, payload: &[u8], wall_deadline: Option<Instant>) {
        let resp = ResponseFrame::decode(payload).expect("decode response");
        let Some((id, req, begun)) = self.outstanding.take() else {
            return; // stale response to a request we no longer track
        };
        if resp.id != id {
            self.outstanding = Some((id, req, begun));
            return;
        }
        match resp.resp {
            Response::Busy { retry_after_ms } => {
                self.report.busy_retries += 1;
                let delay = self
                    .policy
                    .next_delay(retry_after_ms)
                    .expect("unbounded retry budget");
                self.retry_at = Some((Instant::now() + delay, req, begun));
            }
            other => {
                if matches_kind(&req, &other) {
                    self.report.answered += 1;
                } else {
                    self.report.mismatched += 1;
                }
                self.report.latency.observe(begun.elapsed());
                self.issue_next(wall_deadline);
            }
        }
    }
}

/// In-process load tests cost two descriptors per simulated client
/// (client socket + accepted socket), so 10k clients overruns the usual
/// 1024-fd soft limit by an order of magnitude. Raise the soft limit
/// toward the hard limit, best-effort — the same minimal-FFI approach
/// as the `poll(2)` wrapper.
#[cfg(unix)]
fn raise_fd_limit(want: u64) {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    // SAFETY: `RLimit` is `#[repr(C)]` with the kernel's two-u64
    // `struct rlimit` layout; `getrlimit` writes through a valid pointer
    // to a stack local we exclusively own, and `setrlimit` only reads
    // its pointee. Both calls are checked for failure and best-effort.
    unsafe {
        let mut lim = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < want {
            lim.cur = want.min(lim.max);
            let _ = setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

#[cfg(not(unix))]
fn raise_fd_limit(_want: u64) {}

/// Loopback connects can transiently fail while thousands of clients
/// pile onto one listener backlog; back off and retry.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_millis(2);
    for _ in 0..60 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => {
                thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
        }
    }
    panic!("could not connect to {addr} after repeated retries");
}

/// Drive one chunk of clients to completion over a poll loop.
fn drive(mut clients: Vec<SimClient>, wall_deadline: Option<Instant>) -> Vec<ClientReport> {
    let mut fds: Vec<PollFd> = Vec::new();
    let mut idxs: Vec<usize> = Vec::new();
    loop {
        // Fire due Busy retries; find the next backoff deadline.
        let now = Instant::now();
        let mut next_retry: Option<Instant> = None;
        for c in clients.iter_mut() {
            if c.done || c.retry_at.is_none() {
                continue;
            }
            let (when, _, _) = c.retry_at.as_ref().expect("checked above");
            if *when <= now {
                let (_, req, begun) = c.retry_at.take().expect("checked above");
                c.send_request(req, begun);
            } else {
                let when = *when;
                next_retry = Some(next_retry.map_or(when, |n| n.min(when)));
            }
        }

        fds.clear();
        idxs.clear();
        for (i, c) in clients.iter().enumerate() {
            if c.done {
                continue;
            }
            let mut interest = POLLIN;
            if c.out_at < c.out.len() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(c.fd, interest));
            idxs.push(i);
        }
        if fds.is_empty() {
            break;
        }

        let timeout = match next_retry {
            Some(t) => t.saturating_duration_since(now),
            None => Duration::from_millis(100),
        };
        let _ = poll::wait(&mut fds, Some(timeout));

        for (k, fd) in fds.iter().enumerate() {
            let c = &mut clients[idxs[k]];
            if fd.writable() {
                c.flush();
            }
            if fd.readable() {
                c.read_and_dispatch(wall_deadline);
            }
            // Responses often trigger the next request immediately;
            // push it now rather than waiting a poll cycle.
            if c.out_at < c.out.len() {
                c.flush();
            }
        }
    }
    clients.into_iter().map(|c| c.report).collect()
}

struct Cli {
    small: bool,
    clients: usize,
    per_client: Option<usize>,
    duration: Option<Duration>,
    reactors: usize,
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let mut clients = if small { 8 } else { 16 };
    let mut duration = None;
    let mut reactors = 0;
    let mut explicit_clients = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match a.as_str() {
            "--clients" => {
                clients = grab("--clients") as usize;
                explicit_clients = true;
            }
            "--duration" => duration = Some(Duration::from_secs_f64(grab("--duration"))),
            "--reactors" => reactors = grab("--reactors") as usize,
            "--small" => {}
            other => panic!("unknown serve_perf flag `{other}` (try --small, --clients, --duration, --reactors)"),
        }
    }
    let clients = clients.max(1);
    // Fixed per-client count unless a wall-clock duration was given.
    let per_client = if duration.is_some() {
        None
    } else if small {
        Some(24)
    } else if explicit_clients {
        // Scale the fixed budget down as the client count grows so
        // `--clients 10000` stays a minutes-not-hours run by default.
        Some((4096 / clients).clamp(4, 96))
    } else {
        Some(96)
    };
    if reactors == 0 {
        reactors = if clients >= 512 { 2 } else { 1 };
    }
    Cli {
        small,
        clients,
        per_client,
        duration,
        reactors,
    }
}

/// The merged result of one complete closed-loop pass.
struct LoadOutcome {
    elapsed: f64,
    latency: LogHistogram,
    first_byte: LogHistogram,
    busy_retries: u64,
    mismatched: u64,
    answered: u64,
    stats: StatsSnapshot,
}

/// Spawn a server (with the given live-metrics registry), run the fleet
/// against it, drain, and merge the per-client reports exactly.
fn run_load(
    label: &str,
    clients: usize,
    per_client: Option<usize>,
    duration: Option<Duration>,
    reactors: usize,
    metrics: Metrics,
) -> LoadOutcome {
    // A short synthetic service time keeps requests overlapping, so the
    // queue actually fills and duplicate keys coalesce; model training
    // itself is memoized after the first hit. The queue cap is bounded
    // so queue *wait* stays well inside the request deadline no matter
    // how many clients pile in — overflow turns into Busy/retry instead.
    let handle = spawn(ServeConfig {
        workers: 4,
        reactors,
        queue_capacity: (2 * clients).min(1024),
        profile: ModelProfile::small(),
        compute_delay: Duration::from_millis(2),
        metrics,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let addr = handle.addr();
    println!(
        "serve_perf[{label}]: {clients} clients x {} against {addr} ({reactors} reactor shard(s))",
        match (per_client, duration) {
            (Some(n), _) => format!("{n} requests"),
            (None, Some(d)) => format!("{:.1}s", d.as_secs_f64()),
            (None, None) => "nothing".to_string(),
        },
    );

    // Big fleets: pre-train the models through one blocking client so
    // ten thousand cold-start compiles don't all wait on the trainer.
    if clients > 64 {
        let mut warm = Client::connect(addr).expect("warmup connect");
        let _ = warm.set_timeout(Some(Duration::from_secs(300)));
        for bench in BENCH_POOL {
            let req = Request::Compile {
                bench: bench.to_string(),
                device: "v100".to_string(),
                targets: vec!["ES_50".to_string()],
            };
            let mut policy = RetryPolicy::standard(0x5eed);
            let _ = warm.request_with_retry(&req, 0, &mut policy);
        }
    }

    // Each driver thread connects its own chunk and starts traffic per
    // client as soon as it is connected — no fleet-wide barrier, and at
    // most `drivers` concurrent connects, so the listener backlog never
    // overflows even at ten thousand clients.
    let started = Instant::now();
    let wall_deadline = duration.map(|d| started + d);
    let drivers = clients.clamp(1, 8);
    let reports: Vec<ClientReport> = (0..drivers)
        .map(|d| {
            thread::spawn(move || {
                let sims: Vec<SimClient> = (d..clients)
                    .step_by(drivers)
                    .map(|c| {
                        let mut s =
                            SimClient::connect(addr, 0x5eed ^ (c as u64) << 17, per_client);
                        s.issue_next(wall_deadline);
                        s.flush();
                        s
                    })
                    .collect();
                drive(sims, wall_deadline)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|j| j.join().expect("driver thread"))
        .collect();
    let elapsed = started.elapsed().as_secs_f64();

    handle.drain();
    let stats = handle.join();

    let latency = LogHistogram::new();
    let first_byte = LogHistogram::new();
    let (mut busy_retries, mut mismatched, mut answered) = (0u64, 0u64, 0u64);
    for r in &reports {
        latency.merge_from(&r.latency);
        first_byte.merge_from(&r.first_byte);
        busy_retries += r.busy_retries;
        mismatched += r.mismatched;
        answered += r.answered;
    }
    LoadOutcome {
        elapsed,
        latency,
        first_byte,
        busy_retries,
        mismatched,
        answered,
        stats,
    }
}

fn main() {
    let cli = parse_cli();
    let (clients, per_client) = (cli.clients, cli.per_client);
    raise_fd_limit(2 * clients as u64 + 512);

    let run = run_load(
        "main",
        clients,
        per_client,
        cli.duration,
        cli.reactors,
        Metrics::disabled(),
    );
    let (elapsed, stats) = (run.elapsed, run.stats);
    let (busy_retries, mismatched, answered) =
        (run.busy_retries, run.mismatched, run.answered);

    // Live-metrics overhead: the identical CI-sized workload twice —
    // instruments disabled, then enabled — on one reactor shard. The
    // closed-loop wall-time delta is the cost of the metrics plane; the
    // 2ms synthetic service time dominates both passes, so anything
    // beyond noise indicates real hot-path regression.
    let cal_clients = clients.min(8);
    let t_dis = run_load(
        "overhead-off",
        cal_clients,
        Some(24),
        None,
        1,
        Metrics::disabled(),
    )
    .elapsed;
    let t_en = run_load(
        "overhead-on",
        cal_clients,
        Some(24),
        None,
        1,
        Metrics::enabled(),
    )
    .elapsed;
    let metrics_overhead_pct = ((t_en - t_dis) / t_dis * 100.0).max(0.0);

    let drivers = clients.clamp(1, 8);
    let total = match per_client {
        Some(n) => (clients * n) as u64,
        None => answered + mismatched, // duration mode issues until the bell
    };
    let dropped = total - answered - mismatched;
    let throughput = answered as f64 / elapsed;
    let lat = run.latency.snapshot_values();
    let fb = run.first_byte.snapshot_values();
    let (p50, p95, p99) = (
        lat.quantile_ms(0.50),
        lat.quantile_ms(0.95),
        lat.quantile_ms(0.99),
    );
    let (fb_p50, fb_p99) = (fb.quantile_ms(0.50), fb.quantile_ms(0.99));
    let coalesce_total = stats.coalesce_leaders + stats.coalesce_joins;
    let coalesce_rate = if coalesce_total == 0 {
        0.0
    } else {
        stats.coalesce_joins as f64 / coalesce_total as f64
    };

    print_table(
        &["metric", "value"],
        &[
            vec!["clients".into(), clients.to_string()],
            vec!["requests".into(), total.to_string()],
            vec!["answered".into(), answered.to_string()],
            vec!["mismatched".into(), mismatched.to_string()],
            vec!["dropped".into(), dropped.to_string()],
            vec!["busy retries".into(), busy_retries.to_string()],
            vec!["expired".into(), stats.expired.to_string()],
            vec!["throughput (req/s)".into(), format!("{throughput:.1}")],
            vec!["p50 latency (ms)".into(), format!("{p50:.3}")],
            vec!["p95 latency (ms)".into(), format!("{p95:.3}")],
            vec!["p99 latency (ms)".into(), format!("{p99:.3}")],
            vec!["first byte p50 (ms)".into(), format!("{fb_p50:.3}")],
            vec!["first byte p99 (ms)".into(), format!("{fb_p99:.3}")],
            vec!["peak queue depth".into(), stats.queue_depth_max.to_string()],
            vec!["coalesce leaders".into(), stats.coalesce_leaders.to_string()],
            vec!["coalesce joins".into(), stats.coalesce_joins.to_string()],
            vec!["coalescing rate".into(), format!("{coalesce_rate:.3}")],
            vec![
                "metrics overhead (%)".into(),
                format!("{metrics_overhead_pct:.2}"),
            ],
        ],
    );

    // The artifact is hand-encoded through the serve JSON codec so the
    // binary stays independent of serde for its output path.
    let f = Json::Num;
    let i = |v: u64| Json::Int(v as i128);
    let artifact = Json::Obj(vec![
        ("mode".into(), Json::Str(if cli.small { "small" } else { "default" }.into())),
        ("clients".into(), i(clients as u64)),
        (
            "requests_per_client".into(),
            per_client.map_or(Json::Null, |n| i(n as u64)),
        ),
        (
            "duration_requested_s".into(),
            cli.duration.map_or(Json::Null, |d| f(d.as_secs_f64())),
        ),
        ("reactors".into(), i(cli.reactors as u64)),
        ("driver_threads".into(), i(drivers as u64)),
        ("total_requests".into(), i(total)),
        ("answered".into(), i(answered)),
        ("mismatched".into(), i(mismatched)),
        ("dropped".into(), i(dropped)),
        ("busy_retries".into(), i(busy_retries)),
        ("expired".into(), i(stats.expired)),
        ("elapsed_s".into(), f(elapsed)),
        ("throughput_rps".into(), f(throughput)),
        ("p50_ms".into(), f(p50)),
        ("p95_ms".into(), f(p95)),
        ("p99_ms".into(), f(p99)),
        ("first_byte_p50_ms".into(), f(fb_p50)),
        ("first_byte_p99_ms".into(), f(fb_p99)),
        ("queue_depth_max".into(), i(stats.queue_depth_max)),
        ("coalesce_leaders".into(), i(stats.coalesce_leaders)),
        ("coalesce_joins".into(), i(stats.coalesce_joins)),
        ("coalescing_rate".into(), f(coalesce_rate)),
        ("metrics_overhead_pct".into(), f(metrics_overhead_pct)),
        ("busy_rejections".into(), i(stats.busy_rejections)),
        ("lint_denials".into(), i(stats.lint_denials)),
        ("errors".into(), i(stats.errors)),
        ("connections".into(), i(stats.connections)),
    ]);
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, artifact.encode()).expect("write artifact");
    println!("\n[artifact] {}", path.display());

    append_bench_history(
        "serve_perf",
        &serde_json::json!({
            "mode": if cli.small { "small" } else { "default" },
            "clients": clients,
            "reactors": cli.reactors,
            "total_requests": total,
            "busy_retries": busy_retries,
            "elapsed_s": elapsed,
            "throughput_rps": throughput,
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
            "first_byte_p50_ms": fb_p50,
            "first_byte_p99_ms": fb_p99,
            "coalesce_joins": stats.coalesce_joins,
            "queue_depth_max": stats.queue_depth_max,
            "metrics_overhead_pct": metrics_overhead_pct,
        }),
    );

    // Acceptance gates: every request answered with the matching kind,
    // and duplicate-key traffic actually coalesced.
    let mut failed = false;
    if dropped != 0 || mismatched != 0 {
        eprintln!("FAIL: {dropped} dropped, {mismatched} mismatched responses");
        failed = true;
    }
    if stats.coalesce_joins == 0 {
        eprintln!("FAIL: coalescing never triggered on duplicate-key traffic");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_perf: OK");
}
