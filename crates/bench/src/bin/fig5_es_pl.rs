//! Figure 5: the ES_x and PL_x markers on the Black-Scholes energy and
//! time curves (V100). ES_25/50/75 step down the energy axis between the
//! default configuration and the minimum-energy configuration; PL_25/50/75
//! step along the time axis over the same interval.

use serde::Serialize;
use synergy_apps::by_name;
use synergy_bench::{characterize, print_table, write_artifact};
use synergy_metrics::{point_at, search_optimal, EnergyTarget};
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct TargetMarker {
    target: String,
    core_mhz: u32,
    time_s: f64,
    energy_j: f64,
    energy_saving_pct: f64,
    perf_loss_pct: f64,
}

fn main() {
    println!("Figure 5 — ES_x and PL_x markers for Black-Scholes (V100)\n");
    let spec = DeviceSpec::v100();
    let bench = by_name("black_scholes").expect("benchmark exists");
    let sweep = characterize(&spec, &bench);
    let base_clocks = spec.baseline_clocks();
    let base = point_at(&sweep, base_clocks).unwrap();

    let targets = [
        EnergyTarget::EnergySaving(25),
        EnergyTarget::EnergySaving(50),
        EnergyTarget::EnergySaving(75),
        EnergyTarget::EnergySaving(100),
        EnergyTarget::PerfLoss(25),
        EnergyTarget::PerfLoss(50),
        EnergyTarget::PerfLoss(75),
        EnergyTarget::PerfLoss(100),
    ];
    let markers: Vec<TargetMarker> = targets
        .iter()
        .map(|&t| {
            let p = search_optimal(t, &sweep, base_clocks).unwrap();
            TargetMarker {
                target: t.to_string(),
                core_mhz: p.clocks.core_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
                energy_saving_pct: (1.0 - p.energy_j / base.energy_j) * 100.0,
                perf_loss_pct: (p.time_s / base.time_s - 1.0) * 100.0,
            }
        })
        .collect();

    let rows: Vec<Vec<String>> = markers
        .iter()
        .map(|m| {
            vec![
                m.target.clone(),
                m.core_mhz.to_string(),
                format!("{:+.1}%", m.energy_saving_pct),
                format!("{:+.1}%", m.perf_loss_pct),
            ]
        })
        .collect();
    print_table(&["target", "core MHz", "energy saved", "perf loss"], &rows);

    // Shape checks: ES savings grow with x; PL losses grow with x.
    for w in markers[..4].windows(2) {
        assert!(
            w[1].energy_saving_pct >= w[0].energy_saving_pct - 1e-9,
            "ES savings must be monotone"
        );
    }
    for w in markers[4..].windows(2) {
        assert!(
            w[1].perf_loss_pct >= w[0].perf_loss_pct - 1e-9,
            "PL losses must be monotone"
        );
    }
    println!("\nShape check passed: ES savings and PL losses are monotone in x.");
    write_artifact("fig5_es_pl", &markers);
}
