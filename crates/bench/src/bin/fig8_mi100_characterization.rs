//! Figure 8: the same four benchmarks characterized on AMD MI100.
//!
//! Shape target from the paper: on MI100 the default configuration (the
//! auto-boost maximum) always delivers the best performance, so every
//! Pareto-front speedup tops out at 1.0.

use serde::Serialize;
use synergy_bench::{
    characterization_points, characterize, print_table, write_artifact, CharacterizationPoint,
};
use synergy_apps::figure7_selection;
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct Mi100Characterization {
    kernel: String,
    front_speedup_max: f64,
    max_energy_saving_pct: f64,
    configurations: usize,
    points: Vec<CharacterizationPoint>,
}

fn main() {
    println!("Figure 8 — benchmark characterization on AMD MI100\n");
    let spec = DeviceSpec::mi100();
    let mut results = Vec::new();
    for bench in figure7_selection() {
        let sweep = characterize(&spec, &bench);
        let pts = characterization_points(&spec, &sweep);
        let front_max = pts
            .iter()
            .filter(|p| p.pareto)
            .map(|p| p.speedup)
            .fold(f64::MIN, f64::max);
        let min_e = pts
            .iter()
            .map(|p| p.normalized_energy)
            .fold(f64::INFINITY, f64::min);
        results.push(Mi100Characterization {
            kernel: bench.name.to_string(),
            front_speedup_max: front_max,
            max_energy_saving_pct: (1.0 - min_e) * 100.0,
            configurations: pts.len(),
            points: pts,
        });
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{:.3}", r.front_speedup_max),
                format!("{:.1}%", r.max_energy_saving_pct),
                r.configurations.to_string(),
            ]
        })
        .collect();
    print_table(
        &["kernel", "best front speedup", "max saving", "#configs"],
        &rows,
    );
    for r in &results {
        assert!(
            r.front_speedup_max <= 1.0 + 1e-9,
            "{}: MI100 default must be fastest",
            r.kernel
        );
        assert_eq!(r.configurations, 16, "MI100 exposes 16 configurations");
    }
    println!(
        "\nShape check passed: the MI100 default (auto max) is the fastest \
         configuration for every benchmark (paper Section 8.2)."
    );
    write_artifact("fig8_mi100_characterization", &results);
}
