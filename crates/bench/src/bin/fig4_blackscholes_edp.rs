//! Figure 4: Black-Scholes EDP and ED2P versus core frequency on V100,
//! with the minima marked. The expected shape: the ED2P minimum sits close
//! to the maximum-performance frequency; the EDP minimum lies between the
//! minimum-energy point and maximum performance.

use serde::Serialize;
use synergy_apps::by_name;
use synergy_bench::{characterize, print_table, write_artifact};
use synergy_metrics::{search_optimal, EnergyTarget};
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct EdpCurvePoint {
    core_mhz: u32,
    time_s: f64,
    energy_j: f64,
    edp: f64,
    ed2p: f64,
}

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct Figure4 {
    min_edp_core_mhz: u32,
    min_ed2p_core_mhz: u32,
    min_energy_core_mhz: u32,
    max_perf_core_mhz: u32,
    curve: Vec<EdpCurvePoint>,
}

fn main() {
    println!("Figure 4 — Black-Scholes EDP / ED2P vs core frequency (V100)\n");
    let spec = DeviceSpec::v100();
    let bench = by_name("black_scholes").expect("benchmark exists");
    let sweep = characterize(&spec, &bench);
    let base = spec.baseline_clocks();

    let pick = |t: EnergyTarget| search_optimal(t, &sweep, base).unwrap().clocks.core_mhz;
    let fig = Figure4 {
        min_edp_core_mhz: pick(EnergyTarget::MinEdp),
        min_ed2p_core_mhz: pick(EnergyTarget::MinEd2p),
        min_energy_core_mhz: pick(EnergyTarget::MinEnergy),
        max_perf_core_mhz: pick(EnergyTarget::MaxPerf),
        curve: sweep
            .iter()
            .map(|p| EdpCurvePoint {
                core_mhz: p.clocks.core_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
                edp: p.edp(),
                ed2p: p.ed2p(),
            })
            .collect(),
    };

    print_table(
        &["marker", "core MHz"],
        &[
            vec!["MIN_ENERGY".into(), fig.min_energy_core_mhz.to_string()],
            vec!["MIN_EDP".into(), fig.min_edp_core_mhz.to_string()],
            vec!["MIN_ED2P".into(), fig.min_ed2p_core_mhz.to_string()],
            vec!["MAX_PERF".into(), fig.max_perf_core_mhz.to_string()],
        ],
    );

    assert!(
        fig.min_energy_core_mhz <= fig.min_edp_core_mhz
            && fig.min_edp_core_mhz <= fig.min_ed2p_core_mhz
            && fig.min_ed2p_core_mhz <= fig.max_perf_core_mhz,
        "expected MIN_ENERGY <= MIN_EDP <= MIN_ED2P <= MAX_PERF ordering"
    );
    println!(
        "\nShape check passed: MIN_ENERGY <= MIN_EDP <= MIN_ED2P <= MAX_PERF, \
         with ED2P close to maximum performance (paper Section 5.1)."
    );
    write_artifact("fig4_blackscholes_edp", &fig);
}
