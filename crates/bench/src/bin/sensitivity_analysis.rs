//! Model-sensitivity ablation: how the headline characterization results
//! respond to the simulator's free parameters (the DVFS knee position, the
//! stall-activity share, the compute/memory overlap residual). This
//! documents which conclusions are robust to calibration and which are
//! knob-driven.

use serde::Serialize;
use synergy_apps::by_name;
use synergy_bench::{print_table, write_artifact};
use synergy_metrics::{is_pareto_optimal, point_at, MetricPoint};
use synergy_rt::measured_sweep;
use synergy_sim::{DeviceSpec, VfCurve};

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct SensitivityRow {
    parameter: String,
    value: f64,
    matmul_saving_5pct: f64,
    sobel3_front_low_speedup: f64,
    sobel3_max_saving: f64,
}

fn characterize(spec: &DeviceSpec) -> (f64, f64, f64) {
    let matmul = by_name("mat_mul").unwrap();
    let sobel = by_name("sobel3").unwrap();
    let base = spec.baseline_clocks();

    let mm = measured_sweep(spec, &matmul.ir, matmul.work_items);
    let mm_base = point_at(&mm, base).unwrap();
    let saving_5pct = mm
        .iter()
        .filter(|p| p.time_s <= mm_base.time_s * 1.05)
        .map(|p| 1.0 - p.energy_j / mm_base.energy_j)
        .fold(f64::NEG_INFINITY, f64::max);

    let so = measured_sweep(spec, &sobel.ir, sobel.work_items);
    let so_base = point_at(&so, base).unwrap();
    let front: Vec<&MetricPoint> = so.iter().filter(|p| is_pareto_optimal(p, &so)).collect();
    let low_speedup = front
        .iter()
        .map(|p| so_base.time_s / p.time_s)
        .fold(f64::INFINITY, f64::min);
    let max_saving = so
        .iter()
        .map(|p| 1.0 - p.energy_j / so_base.energy_j)
        .fold(f64::NEG_INFINITY, f64::max);
    (saving_5pct, low_speedup, max_saving)
}

fn main() {
    println!("Sensitivity analysis — simulator parameters vs headline shapes\n");
    let mut rows = Vec::new();

    // Knee position.
    for knee in [800.0f64, 1000.0, 1200.0] {
        let mut spec = DeviceSpec::v100();
        spec.vf = VfCurve::knee(135.0, knee, 1530.0, 0.712);
        let (a, b, c) = characterize(&spec);
        rows.push(SensitivityRow {
            parameter: "vf_knee_mhz".into(),
            value: knee,
            matmul_saving_5pct: a,
            sobel3_front_low_speedup: b,
            sobel3_max_saving: c,
        });
    }
    // Stall activity.
    for stall in [0.0f64, 0.2, 0.4, 0.6] {
        let mut spec = DeviceSpec::v100();
        spec.stall_activity = stall;
        let (a, b, c) = characterize(&spec);
        rows.push(SensitivityRow {
            parameter: "stall_activity".into(),
            value: stall,
            matmul_saving_5pct: a,
            sobel3_front_low_speedup: b,
            sobel3_max_saving: c,
        });
    }
    // Overlap residual.
    for rho in [0.0f64, 0.15, 0.3] {
        let mut spec = DeviceSpec::v100();
        spec.overlap_residual = rho;
        let (a, b, c) = characterize(&spec);
        rows.push(SensitivityRow {
            parameter: "overlap_residual".into(),
            value: rho,
            matmul_saving_5pct: a,
            sobel3_front_low_speedup: b,
            sobel3_max_saving: c,
        });
    }

    print_table(
        &[
            "parameter",
            "value",
            "matmul saving@5%",
            "sobel3 front low",
            "sobel3 max saving",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.parameter.clone(),
                    format!("{:.2}", r.value),
                    format!("{:.1}%", r.matmul_saving_5pct * 100.0),
                    format!("{:.3}", r.sobel3_front_low_speedup),
                    format!("{:.1}%", r.sobel3_max_saving * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Robustness assertions: the qualitative findings must survive every
    // parameter setting we swept.
    for r in &rows {
        assert!(
            r.matmul_saving_5pct > 0.10,
            "{}={}: matmul must keep double-digit cheap savings",
            r.parameter,
            r.value
        );
        assert!(
            r.sobel3_front_low_speedup < 0.95,
            "{}={}: sobel3 front must stay wide",
            r.parameter,
            r.value
        );
    }
    println!(
        "\nRobustness check passed: the paper's qualitative contrasts survive \
         every parameter setting; magnitudes shift with the knee position."
    );
    write_artifact("sensitivity_analysis", &rows);
}
