//! Figure 1: available core and memory frequencies for NVIDIA V100,
//! NVIDIA A100 and AMD MI100.

use serde::Serialize;
use synergy_bench::{print_table, write_artifact};
use synergy_sim::DeviceSpec;

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct DeviceFrequencies {
    device: String,
    mem_mhz: Vec<u32>,
    core_count: usize,
    core_min_mhz: u32,
    core_max_mhz: u32,
    default_core_mhz: Option<u32>,
    core_mhz: Vec<u32>,
}

fn main() {
    println!("Figure 1 — available frequencies per device\n");
    let specs = [DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::mi100()];
    let mut rows = Vec::new();
    let mut artifacts = Vec::new();
    for spec in &specs {
        let t = &spec.freq_table;
        rows.push(vec![
            spec.name.clone(),
            format!("{:?}", t.mem_mhz),
            t.core_mhz.len().to_string(),
            format!("{}..{}", t.min_core(), t.max_core()),
            spec.default_clocks
                .map_or("auto".to_string(), |c| c.core_mhz.to_string()),
        ]);
        artifacts.push(DeviceFrequencies {
            device: spec.name.clone(),
            mem_mhz: t.mem_mhz.clone(),
            core_count: t.core_mhz.len(),
            core_min_mhz: t.min_core(),
            core_max_mhz: t.max_core(),
            default_core_mhz: spec.default_clocks.map(|c| c.core_mhz),
            core_mhz: t.core_mhz.clone(),
        });
    }
    print_table(
        &["device", "mem MHz", "#core cfgs", "core range MHz", "default"],
        &rows,
    );
    println!(
        "\nPaper: V100 196 cfgs 135-1530 @877; A100 81 cfgs 210-1410 @1215; \
         MI100 16 cfgs 300-1502 @1200 (no default)."
    );
    write_artifact("fig1_frequencies", &artifacts);
}
