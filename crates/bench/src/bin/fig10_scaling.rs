//! Figure 10: weak-scaling energy study of CloverLeaf and MiniWeather on
//! 4–64 simulated V100 GPUs, one point per energy target, run as
//! exclusive `nvgpufreq` SLURM jobs so the plugin grants clock control.
//!
//! Shape targets: EDP tracks the default closely; ES_50 / PL_50 deliver
//! real savings — around 20% on CloverLeaf and up to 30% on MiniWeather.

use serde::Serialize;
use std::sync::Arc;
use synergy_bench::{print_table, write_artifact, DeviceContext};
use synergy_cluster::{
    run_weak_scaling, FrequencySchedule, MiniApp, ScalingOutcome, WeakScalingConfig,
};
use synergy_metrics::EnergyTarget;
use synergy_rt::{compile_application, TargetRegistry};
use synergy_sched::{Cluster, JobRequest, NvGpuFreqPlugin, Slurm, NVGPUFREQ_GRES};

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct Figure10 {
    outcomes: Vec<ScalingOutcome>,
}

fn compile_registry(ctx: &DeviceContext, app: MiniApp) -> Arc<TargetRegistry> {
    Arc::new(
        compile_application(&ctx.spec, &ctx.models, &app.kernel_irs(), &EnergyTarget::PAPER_SET)
            .expect("mini-app kernels lint clean"),
    )
}

fn main() {
    println!("Figure 10 — real-world application energy scaling (V100 cluster)\n");
    let ctx = DeviceContext::v100();
    let schedules: Vec<(String, Option<EnergyTarget>)> = vec![
        ("default".into(), None),
        ("MIN_EDP".into(), Some(EnergyTarget::MinEdp)),
        ("MIN_ED2P".into(), Some(EnergyTarget::MinEd2p)),
        ("ES_25".into(), Some(EnergyTarget::EnergySaving(25))),
        ("ES_50".into(), Some(EnergyTarget::EnergySaving(50))),
        ("ES_75".into(), Some(EnergyTarget::EnergySaving(75))),
        ("PL_25".into(), Some(EnergyTarget::PerfLoss(25))),
        ("PL_50".into(), Some(EnergyTarget::PerfLoss(50))),
        ("PL_75".into(), Some(EnergyTarget::PerfLoss(75))),
    ];

    let mut outcomes: Vec<ScalingOutcome> = Vec::new();
    for app in [MiniApp::CloverLeaf, MiniApp::MiniWeather] {
        let registry = compile_registry(&ctx, app);
        for gpus in [4usize, 16, 64] {
            let nodes = gpus.div_ceil(4);
            for (label, target) in &schedules {
                // Fresh cluster per point: every run starts from t = 0.
                let mut slurm = Slurm::new(Cluster::marconi100(nodes, true));
                slurm.register_plugin(Box::new(NvGpuFreqPlugin));
                let schedule = match target {
                    None => FrequencySchedule::Default,
                    Some(t) => FrequencySchedule::PerKernel {
                        registry: Arc::clone(&registry),
                        target: *t,
                    },
                };
                let cfg = WeakScalingConfig::figure10(gpus);
                let result: Arc<parking_lot_stub::Slot<ScalingOutcome>> =
                    Arc::new(parking_lot_stub::Slot::new());
                let result2 = Arc::clone(&result);
                let job = JobRequest::builder(format!("{}-{}", app.name(), label), 1000)
                    .nodes(nodes)
                    .exclusive()
                    .gres(NVGPUFREQ_GRES)
                    .payload(move |jctx| {
                        let devices = jctx.gpus();
                        let out =
                            run_weak_scaling(app, &cfg, &devices, jctx.caller, &schedule);
                        result2.set(out);
                    });
                let record = slurm.run(job);
                assert!(
                    record.plugin_log.iter().all(|e| e.applied),
                    "nvgpufreq plugin must grant clock control"
                );
                let out = result.take().expect("payload ran");
                outcomes.push(out);
            }
        }
    }

    for app in ["CloverLeaf", "MiniWeather"] {
        println!("\n--- {app} ---");
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .filter(|o| o.app == app)
            .map(|o| {
                let base = outcomes
                    .iter()
                    .find(|b| b.app == app && b.gpus == o.gpus && b.schedule == "default")
                    .expect("baseline exists");
                vec![
                    o.gpus.to_string(),
                    o.schedule.clone(),
                    format!("{:.3}", o.time_s),
                    format!("{:.1}", o.energy_j),
                    format!("{:+.1}%", (1.0 - o.energy_j / base.energy_j) * 100.0),
                    format!("{:+.1}%", (o.time_s / base.time_s - 1.0) * 100.0),
                ]
            })
            .collect();
        print_table(
            &["GPUs", "schedule", "time s", "energy J", "energy saved", "time delta"],
            &rows,
        );
    }

    // Shape checks at 64 GPUs.
    let saving = |app: &str, sched: &str| {
        let base = outcomes
            .iter()
            .find(|o| o.app == app && o.gpus == 64 && o.schedule == "default")
            .unwrap();
        let run = outcomes
            .iter()
            .find(|o| o.app == app && o.gpus == 64 && o.schedule == sched)
            .unwrap();
        1.0 - run.energy_j / base.energy_j
    };
    assert!(
        saving("CloverLeaf", "ES_50") > 0.10,
        "CloverLeaf ES_50 should save real energy at 64 GPUs"
    );
    assert!(
        saving("MiniWeather", "ES_50") > 0.10,
        "MiniWeather ES_50 should save real energy at 64 GPUs"
    );
    println!(
        "\nShape check passed: ES_50/PL_50 save double-digit energy at 64 GPUs \
         (paper: ~20% CloverLeaf, up to ~30% MiniWeather)."
    );
    write_artifact("fig10_scaling", &Figure10 { outcomes });
}

/// A tiny one-shot slot so the job payload (FnOnce) can hand its result
/// back across the scheduler boundary.
mod parking_lot_stub {
    use parking_lot::Mutex;

    /// One-shot value slot.
    pub struct Slot<T>(Mutex<Option<T>>);

    impl<T> Slot<T> {
        /// Empty slot.
        pub fn new() -> Slot<T> {
            Slot(Mutex::new(None))
        }

        /// Store the value.
        pub fn set(&self, v: T) {
            *self.0.lock() = Some(v);
        }

        /// Take the value out.
        pub fn take(&self) -> Option<T> {
            self.0.lock().take()
        }
    }

    impl<T> Default for Slot<T> {
        fn default() -> Self {
            Slot::new()
        }
    }
}
