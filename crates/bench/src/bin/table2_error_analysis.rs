//! Table 2: RMSE and MAPE of every objective under each ML algorithm,
//! with the best algorithm per objective.
//!
//! Shape target (Section 8.3): Linear wins the performance-flavoured
//! objectives (MAX_PERF, MIN_ED2P, PL_x); Random Forest wins the
//! energy-flavoured ones (MIN_ENERGY, MIN_EDP, ES_x).

use synergy_bench::accuracy::{best_algorithm, run_accuracy_study};
use synergy_bench::{print_table, write_artifact, EXPERIMENT_SEED, TRAIN_STRIDE};
use synergy_metrics::EnergyTarget;
use synergy_ml::Algorithm;
use synergy_sim::DeviceSpec;

fn main() {
    println!("Table 2 — error analysis per objective and ML algorithm (V100)\n");
    let spec = DeviceSpec::v100();
    let (_records, summaries) = run_accuracy_study(&spec, EXPERIMENT_SEED, TRAIN_STRIDE);

    let mut rows = Vec::new();
    for &target in &EnergyTarget::PAPER_SET {
        let mut row = vec![target.to_string()];
        for algo in Algorithm::ALL {
            let s = summaries
                .iter()
                .find(|s| s.algorithm == algo.to_string() && s.target == target.to_string())
                .expect("summary exists");
            row.push(format!("{:.3}/{:.3}", s.rmse, s.mape));
        }
        row.push(best_algorithm(&summaries, target));
        rows.push(row);
    }
    print_table(
        &[
            "objective",
            "Linear (RMSE/MAPE)",
            "Lasso",
            "RandomForest",
            "SVR_RBF",
            "best",
        ],
        &rows,
    );

    // Shape assertions (the robust half of the paper's Table-2 story):
    // a linear model wins the pure-performance objective, and nonlinear
    // models win the energy-flavoured ones. (Deviation noted in
    // EXPERIMENTS.md: our SVR implementation is stronger than the paper's,
    // so it also overtakes Linear on the interior-optimum objectives
    // MIN_ED2P and PL_x.)
    {
        let best = best_algorithm(&summaries, EnergyTarget::MaxPerf);
        assert!(
            best == "Linear" || best == "Lasso",
            "MAX_PERF: expected a linear model to win, got {best}"
        );
    }
    for t in [
        EnergyTarget::MinEnergy,
        EnergyTarget::MinEdp,
        EnergyTarget::EnergySaving(25),
        EnergyTarget::EnergySaving(50),
        EnergyTarget::EnergySaving(75),
    ] {
        let best = best_algorithm(&summaries, t);
        assert!(
            best == "RandomForest" || best == "SVR_RBF",
            "{t}: expected a nonlinear model to win, got {best}"
        );
    }
    println!(
        "\nShape check passed: a linear model wins the performance objective; \
         nonlinear models win the energy-flavoured ones (paper Table 2)."
    );
    write_artifact("table2_error_analysis", &summaries);
}
