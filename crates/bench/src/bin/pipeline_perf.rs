//! Wall-clock tracking for the compile-time pipeline: cold (train from
//! scratch) versus warm (model cache hit) end-to-end time, plus the rayon
//! speedup of the training-set build. Emits `BENCH_pipeline.json` so the
//! perf trajectory is visible across PRs.
//!
//! Run with `--small` for the CI-sized configuration (fewer
//! micro-benchmarks, coarser stride); the default exercises the same suite,
//! stride and seed the figure binaries use.

use std::time::Instant;

use serde::Serialize;
use synergy_analyze::LintRegistry;
use synergy_bench::{microbench_suite, print_table, write_artifact, EXPERIMENT_SEED, TRAIN_STRIDE};
use synergy_kernel::KernelIr;
use synergy_metrics::EnergyTarget;
use synergy_ml::ModelSelection;
use synergy_rt::{
    build_training_set, build_training_set_serial, compile_application,
    compile_application_traced, default_cache_dir, ModelKey, ModelStore,
};
use synergy_sim::DeviceSpec;
use synergy_telemetry::Recorder;

#[derive(Serialize)]
struct PipelinePerf {
    device: String,
    mode: String,
    suite_size: usize,
    stride: usize,
    kernels: usize,
    /// Full pipeline, cache evicted first: training-set build + model
    /// fitting + registry compilation.
    cold_s: f64,
    /// Same pipeline with the models served from the in-memory memo.
    warm_memory_s: f64,
    /// Same pipeline with the models deserialized from the cache file.
    warm_disk_s: f64,
    warm_memory_speedup: f64,
    warm_disk_speedup: f64,
    /// The rayon contribution on the cold path: serial vs parallel
    /// training-set build.
    trainset_serial_s: f64,
    trainset_parallel_s: f64,
    trainset_parallel_speedup: f64,
    /// Warm pipeline with the telemetry recorder disabled vs enabled:
    /// the disabled path must be free, the enabled path cheap.
    telemetry_off_s: f64,
    telemetry_on_s: f64,
    telemetry_overhead_pct: f64,
    telemetry_events: usize,
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let spec = DeviceSpec::v100();
    let mut suite = microbench_suite();
    let stride = if small {
        suite.truncate(8);
        32
    } else {
        TRAIN_STRIDE
    };
    let selection = ModelSelection::paper_best();
    let seed = EXPERIMENT_SEED;
    let kernels: Vec<KernelIr> = synergy_apps::suite()
        .into_iter()
        .take(4)
        .map(|b| b.ir)
        .collect();

    // A dedicated cache directory so evicting for the cold run never
    // disturbs entries the figure binaries share.
    let dir = default_cache_dir().join("pipeline-perf");
    let store = ModelStore::with_dir(&dir);
    let key = ModelKey::for_training(&spec, &suite, selection, stride, seed);
    store.evict(&key);

    let pipeline = |store: &ModelStore| {
        let models = store.get_or_train(&spec, &suite, selection, stride, seed);
        compile_application(&spec, &models, &kernels, &EnergyTarget::PAPER_SET)
            .expect("suite kernels lint clean")
    };

    let t = Instant::now();
    let cold_registry = pipeline(&store);
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let warm_registry = pipeline(&store);
    let warm_memory_s = t.elapsed().as_secs_f64();

    // A fresh store over the same directory: first lookup must come from
    // the cache file, not retrain.
    let disk_store = ModelStore::with_dir(&dir);
    let t = Instant::now();
    let disk_registry = pipeline(&disk_store);
    let warm_disk_s = t.elapsed().as_secs_f64();

    assert_eq!(
        cold_registry, warm_registry,
        "memory-cached pipeline must reproduce the cold registry"
    );
    assert_eq!(
        cold_registry, disk_registry,
        "disk-cached pipeline must reproduce the cold registry"
    );
    let stats = store.stats();
    assert_eq!(stats.misses, 1, "cold run must train exactly once");
    assert_eq!(stats.memory_hits, 1, "warm run must hit the memo");
    assert_eq!(disk_store.stats().disk_hits, 1, "fresh store must load from disk");

    // Telemetry overhead on the warm (memory-cached) pipeline: the same
    // traced entry points once with a disabled recorder — which must cost
    // nothing — and once recording every phase and cache event. Best of a
    // few reps, since the warm path is fast enough to be noisy.
    let lints = LintRegistry::with_builtin();
    let traced_pipeline = |rec: &Recorder| {
        let models = store.get_or_train_traced(&spec, &suite, selection, stride, seed, rec);
        compile_application_traced(&spec, &models, &kernels, &EnergyTarget::PAPER_SET, &lints, rec)
            .expect("suite kernels lint clean")
    };
    const TELEMETRY_REPS: usize = 5;
    let best_of = |rec: &Recorder| {
        (0..TELEMETRY_REPS)
            .map(|_| {
                let t = Instant::now();
                let reg = traced_pipeline(rec);
                let s = t.elapsed().as_secs_f64();
                assert_eq!(reg, cold_registry, "traced pipeline must reproduce the registry");
                s
            })
            .fold(f64::INFINITY, f64::min)
    };
    let telemetry_off_s = best_of(&Recorder::disabled());
    let on = Recorder::enabled();
    let telemetry_on_s = best_of(&on);
    let telemetry_events = on.drain().len();

    let t = Instant::now();
    let serial = build_training_set_serial(&spec, &suite, stride);
    let trainset_serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = build_training_set(&spec, &suite, stride);
    let trainset_parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "parallel training set must equal serial");

    let perf = PipelinePerf {
        device: spec.name.to_string(),
        mode: if small { "small" } else { "default" }.to_string(),
        suite_size: suite.len(),
        stride,
        kernels: kernels.len(),
        cold_s,
        warm_memory_s,
        warm_disk_s,
        warm_memory_speedup: cold_s / warm_memory_s.max(1e-9),
        warm_disk_speedup: cold_s / warm_disk_s.max(1e-9),
        trainset_serial_s,
        trainset_parallel_s,
        trainset_parallel_speedup: trainset_serial_s / trainset_parallel_s.max(1e-9),
        telemetry_off_s,
        telemetry_on_s,
        telemetry_overhead_pct: (telemetry_on_s / telemetry_off_s.max(1e-9) - 1.0) * 100.0,
        telemetry_events,
    };

    println!(
        "compile-time pipeline on {} ({} micro-benchmarks, stride {}, {} kernels, {} mode)\n",
        perf.device, perf.suite_size, perf.stride, perf.kernels, perf.mode
    );
    let row = |label: &str, secs: f64, speedup: f64| {
        vec![
            label.to_string(),
            format!("{:.4}", secs),
            format!("{:.1}x", speedup),
        ]
    };
    print_table(
        &["pipeline", "seconds", "vs cold"],
        &[
            row("cold (train)", perf.cold_s, 1.0),
            row("warm (memory)", perf.warm_memory_s, perf.warm_memory_speedup),
            row("warm (disk)", perf.warm_disk_s, perf.warm_disk_speedup),
        ],
    );
    println!();
    print_table(
        &["training-set build", "seconds", "speedup"],
        &[
            row("serial", perf.trainset_serial_s, 1.0),
            row(
                "parallel",
                perf.trainset_parallel_s,
                perf.trainset_parallel_speedup,
            ),
        ],
    );
    println!();
    print_table(
        &["telemetry (warm)", "seconds", "overhead"],
        &[
            row("disabled", perf.telemetry_off_s, 1.0),
            vec![
                "enabled".to_string(),
                format!("{:.4}", perf.telemetry_on_s),
                format!(
                    "{:+.2}% ({} events)",
                    perf.telemetry_overhead_pct, perf.telemetry_events
                ),
            ],
        ],
    );
    if perf.warm_memory_speedup < 5.0 || perf.warm_disk_speedup < 5.0 {
        println!("\nWARNING: warm-cache pipeline is less than 5x faster than cold");
    }

    write_artifact("BENCH_pipeline", &perf);
}
