//! Wall-clock tracking for the compile-time pipeline: cold (train from
//! scratch) versus warm (model cache hit) end-to-end time, plus the rayon
//! speedup of the training-set build. Emits `BENCH_pipeline.json` so the
//! perf trajectory is visible across PRs.
//!
//! Run with `--small` for the CI-sized configuration (fewer
//! micro-benchmarks, coarser stride); the default exercises the same suite,
//! stride and seed the figure binaries use.

use std::time::Instant;

use serde::Serialize;
use synergy_analyze::LintRegistry;
use synergy_bench::{microbench_suite, print_table, write_artifact, EXPERIMENT_SEED, TRAIN_STRIDE};
use synergy_kernel::KernelIr;
use synergy_metrics::EnergyTarget;
use synergy_ml::{MetricModels, ModelSelection};
use synergy_rt::{
    build_training_set, build_training_set_serial, clock_grid, compile_application,
    compile_application_traced, default_cache_dir, predict_sweep_from_info_serial,
    predict_sweep_over_grid, ModelKey, ModelStore,
};
use synergy_sim::DeviceSpec;
use synergy_telemetry::Recorder;

#[derive(Serialize)]
struct PipelinePerf {
    device: String,
    mode: String,
    suite_size: usize,
    stride: usize,
    kernels: usize,
    /// Full pipeline, cache evicted first: training-set build + model
    /// fitting + registry compilation.
    cold_s: f64,
    /// Same pipeline with the models served from the in-memory memo.
    warm_memory_s: f64,
    /// Same pipeline with the models deserialized from the cache file.
    warm_disk_s: f64,
    warm_memory_speedup: f64,
    warm_disk_speedup: f64,
    /// The model-fitting step alone, on already-built samples: the flat
    /// training engine vs the original reference trainers
    /// (bitwise-identical bundles, best-of-reps timing).
    train_cold_s: f64,
    train_reference_s: f64,
    train_speedup: f64,
    /// The rayon contribution on the cold path: serial vs parallel
    /// training-set build.
    trainset_serial_s: f64,
    trainset_parallel_s: f64,
    trainset_parallel_speedup: f64,
    /// Warm pipeline with the telemetry recorder disabled vs enabled:
    /// the disabled path must be free, the enabled path cheap.
    telemetry_off_s: f64,
    telemetry_on_s: f64,
    telemetry_overhead_pct: f64,
    telemetry_events: usize,
    /// The inference hot path over the full V/F grid: per-config
    /// reference predictions vs the batched engine (bitwise-identical
    /// results, best-of-reps timing).
    predict_grid_configs: usize,
    predict_rows_per_sec_serial: f64,
    predict_rows_per_sec_batch: f64,
    predict_batch_speedup: f64,
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let spec = DeviceSpec::v100();
    let mut suite = microbench_suite();
    let stride = if small {
        suite.truncate(8);
        32
    } else {
        TRAIN_STRIDE
    };
    let selection = ModelSelection::paper_best();
    let seed = EXPERIMENT_SEED;
    let kernels: Vec<KernelIr> = synergy_apps::suite()
        .into_iter()
        .take(4)
        .map(|b| b.ir)
        .collect();

    // A dedicated cache directory so evicting for the cold run never
    // disturbs entries the figure binaries share.
    let dir = default_cache_dir().join("pipeline-perf");
    let store = ModelStore::with_dir(&dir);
    let key = ModelKey::for_training(&spec, &suite, selection, stride, seed);
    store.evict(&key);

    let pipeline = |store: &ModelStore| {
        let models = store.get_or_train(&spec, &suite, selection, stride, seed);
        compile_application(&spec, &models, &kernels, &EnergyTarget::PAPER_SET)
            .expect("suite kernels lint clean")
    };

    let t = Instant::now();
    let cold_registry = pipeline(&store);
    let cold_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let warm_registry = pipeline(&store);
    let warm_memory_s = t.elapsed().as_secs_f64();

    // A fresh store over the same directory: first lookup must come from
    // the cache file, not retrain.
    let disk_store = ModelStore::with_dir(&dir);
    let t = Instant::now();
    let disk_registry = pipeline(&disk_store);
    let warm_disk_s = t.elapsed().as_secs_f64();

    assert_eq!(
        cold_registry, warm_registry,
        "memory-cached pipeline must reproduce the cold registry"
    );
    assert_eq!(
        cold_registry, disk_registry,
        "disk-cached pipeline must reproduce the cold registry"
    );
    let stats = store.stats();
    assert_eq!(stats.misses, 1, "cold run must train exactly once");
    assert_eq!(stats.memory_hits, 1, "warm run must hit the memo");
    assert_eq!(disk_store.stats().disk_hits, 1, "fresh store must load from disk");

    // Telemetry overhead on the warm (memory-cached) pipeline: the same
    // traced entry points once with a disabled recorder — which must cost
    // nothing — and once recording every phase and cache event. Best of a
    // few reps, since the warm path is fast enough to be noisy.
    let lints = LintRegistry::with_builtin();
    let traced_pipeline = |rec: &Recorder| {
        let models = store.get_or_train_traced(&spec, &suite, selection, stride, seed, rec);
        compile_application_traced(&spec, &models, &kernels, &EnergyTarget::PAPER_SET, &lints, rec)
            .expect("suite kernels lint clean")
    };
    const TELEMETRY_REPS: usize = 5;
    let best_of = |rec: &Recorder| {
        (0..TELEMETRY_REPS)
            .map(|_| {
                let t = Instant::now();
                let reg = traced_pipeline(rec);
                let s = t.elapsed().as_secs_f64();
                assert_eq!(reg, cold_registry, "traced pipeline must reproduce the registry");
                s
            })
            .fold(f64::INFINITY, f64::min)
    };
    let telemetry_off_s = best_of(&Recorder::disabled());
    let on = Recorder::enabled();
    let telemetry_on_s = best_of(&on);
    let telemetry_events = on.drain().len();

    let t = Instant::now();
    let serial = build_training_set_serial(&spec, &suite, stride);
    let trainset_serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = build_training_set(&spec, &suite, stride);
    let trainset_parallel_s = t.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "parallel training set must equal serial");

    // The model-fitting step alone: the flat training engine against the
    // original reference trainers, on the same already-built samples.
    // Timed directly (no store) so the cache counters asserted above are
    // untouched; the two bundles must be equal in every learned value.
    let f_max = spec.freq_table.max_core() as f64;
    const TRAIN_REPS: usize = 5;
    let best_of_train = |f: &dyn Fn() -> MetricModels| {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..TRAIN_REPS {
            let t = Instant::now();
            let m = f();
            best = best.min(t.elapsed().as_secs_f64());
            out = Some(m);
        }
        (best, out.expect("at least one rep"))
    };
    let (train_cold_s, flat_models) =
        best_of_train(&|| MetricModels::train(selection, &parallel, f_max, seed));
    let (train_reference_s, reference_models) =
        best_of_train(&|| MetricModels::train_reference(selection, &parallel, f_max, seed));
    assert_eq!(
        flat_models, reference_models,
        "flat training engine must reproduce the reference bundle exactly"
    );

    // The prediction hot path: one kernel's metrics over the full V/F
    // grid, per-config reference vs the batched engine. Both paths must
    // agree bit for bit; timing is best-of-reps since one sweep is fast.
    let models = store.get_or_train(&spec, &suite, selection, stride, seed);
    let info = synergy_kernel::extract(&kernels[0]);
    let grid = clock_grid(&spec);
    const PREDICT_REPS: usize = 9;
    let serial_sweep = predict_sweep_from_info_serial(&spec, &models, &info);
    let batch_sweep = predict_sweep_over_grid(&models, &info, &grid);
    assert_eq!(serial_sweep.len(), batch_sweep.len());
    for (a, b) in serial_sweep.iter().zip(&batch_sweep) {
        assert_eq!(a.clocks, b.clocks);
        assert_eq!(
            a.time_s.to_bits(),
            b.time_s.to_bits(),
            "batched sweep must be bitwise identical to the reference"
        );
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    }
    let best_of_predict = |f: &dyn Fn() -> usize| {
        (0..PREDICT_REPS)
            .map(|_| {
                let t = Instant::now();
                let n = f();
                let s = t.elapsed().as_secs_f64();
                assert_eq!(n, grid.len());
                s
            })
            .fold(f64::INFINITY, f64::min)
    };
    let predict_serial_s =
        best_of_predict(&|| predict_sweep_from_info_serial(&spec, &models, &info).len());
    let predict_batch_s =
        best_of_predict(&|| predict_sweep_over_grid(&models, &info, &grid).len());
    let rows = grid.len() as f64;

    let perf = PipelinePerf {
        device: spec.name.to_string(),
        mode: if small { "small" } else { "default" }.to_string(),
        suite_size: suite.len(),
        stride,
        kernels: kernels.len(),
        cold_s,
        warm_memory_s,
        warm_disk_s,
        warm_memory_speedup: cold_s / warm_memory_s.max(1e-9),
        warm_disk_speedup: cold_s / warm_disk_s.max(1e-9),
        train_cold_s,
        train_reference_s,
        train_speedup: train_reference_s / train_cold_s.max(1e-12),
        trainset_serial_s,
        trainset_parallel_s,
        trainset_parallel_speedup: trainset_serial_s / trainset_parallel_s.max(1e-9),
        telemetry_off_s,
        telemetry_on_s,
        telemetry_overhead_pct: (telemetry_on_s / telemetry_off_s.max(1e-9) - 1.0) * 100.0,
        telemetry_events,
        predict_grid_configs: grid.len(),
        predict_rows_per_sec_serial: rows / predict_serial_s.max(1e-12),
        predict_rows_per_sec_batch: rows / predict_batch_s.max(1e-12),
        predict_batch_speedup: predict_serial_s / predict_batch_s.max(1e-12),
    };

    println!(
        "compile-time pipeline on {} ({} micro-benchmarks, stride {}, {} kernels, {} mode)\n",
        perf.device, perf.suite_size, perf.stride, perf.kernels, perf.mode
    );
    let row = |label: &str, secs: f64, speedup: f64| {
        vec![
            label.to_string(),
            format!("{:.4}", secs),
            format!("{:.1}x", speedup),
        ]
    };
    let row_rate = |label: &str, rate: f64, speedup: f64| {
        vec![
            label.to_string(),
            format!("{:.0}", rate),
            format!("{:.1}x", speedup),
        ]
    };
    print_table(
        &["pipeline", "seconds", "vs cold"],
        &[
            row("cold (train)", perf.cold_s, 1.0),
            row("warm (memory)", perf.warm_memory_s, perf.warm_memory_speedup),
            row("warm (disk)", perf.warm_disk_s, perf.warm_disk_speedup),
        ],
    );
    println!();
    print_table(
        &["model fitting", "seconds", "speedup"],
        &[
            row("reference trainers", perf.train_reference_s, 1.0),
            row("flat engine", perf.train_cold_s, perf.train_speedup),
        ],
    );
    println!();
    print_table(
        &["training-set build", "seconds", "speedup"],
        &[
            row("serial", perf.trainset_serial_s, 1.0),
            row(
                "parallel",
                perf.trainset_parallel_s,
                perf.trainset_parallel_speedup,
            ),
        ],
    );
    println!();
    print_table(
        &["telemetry (warm)", "seconds", "overhead"],
        &[
            row("disabled", perf.telemetry_off_s, 1.0),
            vec![
                "enabled".to_string(),
                format!("{:.4}", perf.telemetry_on_s),
                format!(
                    "{:+.2}% ({} events)",
                    perf.telemetry_overhead_pct, perf.telemetry_events
                ),
            ],
        ],
    );
    println!();
    println!("predicted sweep over {} configurations:", perf.predict_grid_configs);
    print_table(
        &["predicted sweep", "rows/s", "speedup"],
        &[
            row_rate("per-config", perf.predict_rows_per_sec_serial, 1.0),
            row_rate(
                "batched",
                perf.predict_rows_per_sec_batch,
                perf.predict_batch_speedup,
            ),
        ],
    );
    if perf.warm_memory_speedup < 5.0 || perf.warm_disk_speedup < 5.0 {
        println!("\nWARNING: warm-cache pipeline is less than 5x faster than cold");
    }
    if perf.predict_batch_speedup < 1.0 {
        println!("\nWARNING: batched prediction is slower than the per-config path");
    }
    if perf.train_speedup < 1.0 {
        println!("\nWARNING: flat training engine is slower than the reference trainers");
    }

    write_artifact("BENCH_pipeline", &perf);
    synergy_bench::append_bench_history(
        "pipeline_perf",
        &serde_json::to_value(&perf).expect("serialize history record"),
    );
}
