//! Figure 6 (and Table 1): the machine-learning modeling workflow,
//! end-to-end — micro-benchmark generation, feature extraction, training
//! of the four single-target models, prediction for a new workload, and
//! the frequency search for each user target.

use serde::Serialize;
use synergy_apps::by_name;
use synergy_bench::{microbench_suite, print_table, write_artifact, DeviceContext, TRAIN_STRIDE};
use synergy_kernel::{extract, FeatureClass};
use synergy_metrics::{search_optimal, EnergyTarget};
use synergy_rt::{build_training_set, predict_sweep};

// Fields are read only through the `Serialize` derive (the offline
// check harness's marker-serde stub would otherwise flag them dead).
#[allow(dead_code)]
#[derive(Serialize)]
struct WorkflowReport {
    microbenchmarks: usize,
    training_rows: usize,
    example_kernel: String,
    example_features: Vec<(String, f64)>,
    decisions: Vec<(String, u32)>,
}

fn main() {
    println!("Figure 6 — modeling workflow (train → predict → search)\n");
    let ctx = DeviceContext::v100();
    let suite = microbench_suite();
    let training_rows = build_training_set(&ctx.spec, &suite, TRAIN_STRIDE).len();
    println!(
        "① generated {} micro-benchmarks; ② swept every {}th of {} core clocks → {} training rows; ③ trained time/energy/EDP/ED2P models",
        suite.len(),
        TRAIN_STRIDE,
        ctx.spec.freq_table.core_mhz.len(),
        training_rows
    );

    // ④ extract static features of a new workload (Table 1).
    let bench = by_name("black_scholes").expect("benchmark exists");
    let info = extract(&bench.ir);
    println!("\n④ static features of `{}` (Table 1):", bench.name);
    let feature_rows: Vec<Vec<String>> = FeatureClass::ALL
        .iter()
        .map(|&c| vec![format!("k_{}", c.name()), format!("{:.1}", info.features[c])])
        .collect();
    print_table(&["feature", "per work-item"], &feature_rows);

    // ⑤ predict the metric sweep; ⑥ search per target.
    let sweep = predict_sweep(&ctx.spec, &ctx.models, &bench.ir);
    let base = ctx.spec.baseline_clocks();
    let decisions: Vec<(String, u32)> = EnergyTarget::PAPER_SET
        .iter()
        .map(|&t| {
            let p = search_optimal(t, &sweep, base).unwrap();
            (t.to_string(), p.clocks.core_mhz)
        })
        .collect();
    println!("\n⑤/⑥ predicted optimal frequency per target:");
    let rows: Vec<Vec<String>> = decisions
        .iter()
        .map(|(t, f)| vec![t.clone(), f.to_string()])
        .collect();
    print_table(&["target", "core MHz"], &rows);

    write_artifact(
        "fig6_model_workflow",
        &WorkflowReport {
            microbenchmarks: suite.len(),
            training_rows,
            example_kernel: bench.name.to_string(),
            example_features: FeatureClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), info.features[c]))
                .collect(),
            decisions,
        },
    );
}
