//! The prediction-accuracy study behind Figure 9 and Table 2.
//!
//! For every ML algorithm, the four single-target models are trained on the
//! micro-benchmark sweep; for every benchmark of the 23-kernel suite and
//! every user objective, the predicted sweep is searched for the optimal
//! frequency, and the error is computed the paper's way: the objective
//! value *measured* at the predicted frequency versus the objective value
//! measured at the true optimal frequency (APE per benchmark, MAPE and
//! RMSE across the suite).

use serde::Serialize;
use synergy_apps::suite;
use synergy_kernel::{extract, KernelStaticInfo};
use synergy_metrics::{objective_value, EnergyTarget, IndexedSweep, MetricPoint};
use synergy_ml::{Algorithm, ModelSelection};
use synergy_rt::{clock_grid, measured_sweep_from_info, predict_sweep_over_grid, ModelStore};
use synergy_sim::DeviceSpec;

/// One (algorithm, objective, benchmark) accuracy observation.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyRecord {
    /// The ML algorithm that produced the prediction.
    pub algorithm: String,
    /// The user objective.
    pub target: String,
    /// The benchmark evaluated.
    pub benchmark: String,
    /// Absolute percentage error of the objective at the predicted vs
    /// actual optimal frequency.
    pub ape: f64,
    /// Objective value at the measured optimum.
    pub actual_objective: f64,
    /// Objective value measured at the predicted frequency.
    pub predicted_objective: f64,
    /// Predicted optimal core clock.
    pub predicted_core_mhz: u32,
    /// Measured optimal core clock.
    pub actual_core_mhz: u32,
}

/// Summary per (algorithm, objective): the Table-2 cells.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracySummary {
    /// Algorithm.
    pub algorithm: String,
    /// Objective.
    pub target: String,
    /// Mean absolute percentage error across the suite.
    pub mape: f64,
    /// Root-mean-square error of the objective values.
    pub rmse: f64,
}

/// Run the full study on one device. Deterministic given `seed`.
pub fn run_accuracy_study(
    spec: &DeviceSpec,
    seed: u64,
    train_stride: usize,
) -> (Vec<AccuracyRecord>, Vec<AccuracySummary>) {
    let micro = crate::microbench_suite();
    let benches = suite();
    let baseline = spec.baseline_clocks();
    // One clock-grid collection for the whole study: every predicted
    // sweep below batches over this shared grid.
    let grid = clock_grid(spec);

    // Per-benchmark ground truth, shared by all four algorithms: static
    // features extracted once, the measured sweep indexed once, and the
    // measured optimum per paper target computed once (the inner loop used
    // to redo all three per algorithm).
    struct Truth {
        name: String,
        info: KernelStaticInfo,
        measured: IndexedSweep,
        /// Measured optimum per target, parallel to `PAPER_SET`.
        actual: Vec<MetricPoint>,
    }
    let truths: Vec<Truth> = benches
        .iter()
        .map(|b| {
            let info = extract(&b.ir);
            let measured =
                IndexedSweep::new(measured_sweep_from_info(spec, &info, b.work_items));
            let actual = EnergyTarget::PAPER_SET
                .iter()
                .map(|&t| measured.search(t, baseline).expect("non-empty sweep"))
                .collect();
            Truth { name: b.name.to_string(), info, measured, actual }
        })
        .collect();

    let mut records = Vec::new();
    for algo in Algorithm::ALL {
        let models = ModelStore::global().get_or_train(
            spec,
            &micro,
            ModelSelection::uniform(algo),
            train_stride,
            seed,
        );
        for truth in &truths {
            let predicted =
                IndexedSweep::new(predict_sweep_over_grid(&models, &truth.info, &grid));
            for (ti, &target) in EnergyTarget::PAPER_SET.iter().enumerate() {
                let pred_opt = predicted.search(target, baseline).expect("non-empty sweep");
                let actual_opt = truth.actual[ti];
                let at_pred =
                    truth.measured.point_at(pred_opt.clocks).expect("clock in sweep");
                let actual = objective_value(target, &actual_opt);
                let predicted_obj = objective_value(target, &at_pred);
                let ape = if actual == 0.0 {
                    0.0
                } else {
                    ((predicted_obj - actual) / actual).abs()
                };
                records.push(AccuracyRecord {
                    algorithm: algo.to_string(),
                    target: target.to_string(),
                    benchmark: truth.name.clone(),
                    ape,
                    actual_objective: actual,
                    predicted_objective: predicted_obj,
                    predicted_core_mhz: pred_opt.clocks.core_mhz,
                    actual_core_mhz: actual_opt.clocks.core_mhz,
                });
            }
        }
    }

    let mut summaries = Vec::new();
    for algo in Algorithm::ALL {
        for &target in &EnergyTarget::PAPER_SET {
            let rows: Vec<&AccuracyRecord> = records
                .iter()
                .filter(|r| r.algorithm == algo.to_string() && r.target == target.to_string())
                .collect();
            let actual: Vec<f64> = rows.iter().map(|r| r.actual_objective).collect();
            let predicted: Vec<f64> = rows.iter().map(|r| r.predicted_objective).collect();
            summaries.push(AccuracySummary {
                algorithm: algo.to_string(),
                target: target.to_string(),
                mape: rows.iter().map(|r| r.ape).sum::<f64>() / rows.len() as f64,
                rmse: synergy_ml::rmse(&actual, &predicted),
            });
        }
    }
    (records, summaries)
}

/// The algorithm with the lowest MAPE for a target.
pub fn best_algorithm(summaries: &[AccuracySummary], target: EnergyTarget) -> String {
    summaries
        .iter()
        .filter(|s| s.target == target.to_string())
        .min_by(|a, b| a.mape.total_cmp(&b.mape))
        .map(|s| s.algorithm.clone())
        .expect("summaries cover every target")
}
