//! Benchmark regression diffing for `synergy bench <suite>`.
//!
//! The perf binaries append one commit-stamped JSON line per run to
//! `experiments/bench_history.jsonl`. This module turns that trajectory
//! into a regression gate: pick the two newest lines of a suite whose
//! run parameters match exactly, diff the suite's headline counters with
//! a direction-aware tolerance, and report which counters regressed.
//! Everything here is pure (text in, verdict out) so the policy is unit
//! testable without spawning benchmark binaries.

use serde_json::Value;

/// Whether a counter is better when it grows or when it shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: larger is better.
    HigherIsBetter,
    /// Latency-like: smaller is better.
    LowerIsBetter,
}

/// One headline counter a suite is gated on.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    /// JSON field name in the history line.
    pub name: &'static str,
    /// Which way improvement points.
    pub direction: Direction,
}

/// A benchmark suite's diffing contract: which history lines belong to
/// it, which fields identify "the same run configuration", and which
/// counters gate.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSpec {
    /// Suite name as used on the CLI (`pipeline`, `serve`, `fleet`).
    pub name: &'static str,
    /// The `bench` envelope value its history lines carry.
    pub bench: &'static str,
    /// The perf binary that produces those lines.
    pub binary: &'static str,
    /// Fields that must match exactly between two comparable lines.
    pub params: &'static [&'static str],
    /// Gated counters.
    pub counters: &'static [Counter],
}

const HIGHER: Direction = Direction::HigherIsBetter;
const LOWER: Direction = Direction::LowerIsBetter;

/// The three regression-gated suites.
pub static SUITES: &[SuiteSpec] = &[
    SuiteSpec {
        name: "pipeline",
        bench: "pipeline_perf",
        binary: "pipeline_perf",
        params: &["device", "mode", "suite_size", "stride", "kernels"],
        counters: &[
            Counter { name: "cold_s", direction: LOWER },
            Counter { name: "train_cold_s", direction: LOWER },
            Counter { name: "warm_memory_s", direction: LOWER },
            Counter { name: "warm_disk_s", direction: LOWER },
            Counter { name: "predict_rows_per_sec_batch", direction: HIGHER },
        ],
    },
    SuiteSpec {
        name: "serve",
        bench: "serve_perf",
        binary: "serve_perf",
        params: &["mode", "clients", "reactors"],
        counters: &[
            Counter { name: "throughput_rps", direction: HIGHER },
            Counter { name: "p50_ms", direction: LOWER },
            Counter { name: "p99_ms", direction: LOWER },
        ],
    },
    SuiteSpec {
        name: "fleet",
        bench: "fleet_perf",
        binary: "fleet_perf",
        params: &["mode", "node_counts", "per_client"],
        counters: &[
            Counter { name: "scaling_max", direction: HIGHER },
            Counter { name: "top_throughput_rps", direction: HIGHER },
        ],
    },
];

/// Look a suite up by CLI name.
pub fn suite_by_name(name: &str) -> Option<&'static SuiteSpec> {
    SUITES.iter().find(|s| s.name == name)
}

/// One counter's comparison between the current run and its baseline.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Counter name.
    pub counter: &'static str,
    /// Which way improvement points.
    pub direction: Direction,
    /// Value in the newest matching line (`None` when absent).
    pub current: Option<f64>,
    /// Value in the previous matching line (`None` when absent or zero,
    /// which cannot anchor a relative comparison).
    pub baseline: Option<f64>,
    /// Relative change in percent, signed so that positive always means
    /// "worse" (`None` when either side is missing).
    pub worse_pct: Option<f64>,
    /// Whether the change exceeds the tolerance in the bad direction.
    pub regressed: bool,
}

/// The verdict for one `synergy bench` invocation.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// Suite that was diffed.
    pub suite: &'static str,
    /// Commit hash of the current (newest) line, when present.
    pub current_commit: Option<String>,
    /// Commit hash of the baseline line, when present.
    pub baseline_commit: Option<String>,
    /// Per-counter comparisons (empty when skipped).
    pub rows: Vec<DeltaRow>,
    /// True when fewer than two matching history lines exist — nothing
    /// to compare, which is a pass (fresh clones must not fail CI).
    pub skipped: bool,
}

impl BenchDiff {
    /// Whether any gated counter regressed beyond tolerance.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    v.as_f64()
}

/// Diff the two newest history lines of `spec`'s suite whose parameter
/// fields all match, at `tolerance_pct` percent. `history_text` is the
/// raw `bench_history.jsonl` contents; unparsable lines are ignored
/// (the file is append-only and best-effort by design).
pub fn diff_history(spec: &SuiteSpec, history_text: &str, tolerance_pct: f64) -> BenchDiff {
    let lines: Vec<Value> = history_text
        .lines()
        .filter_map(|l| serde_json::from_str::<Value>(l).ok())
        .filter(|v| v.get("bench").and_then(Value::as_str) == Some(spec.bench))
        .collect();

    // Newest matching line is the current run; its baseline is the next
    // newest line with identical parameters (missing params compare as
    // null on both sides, so old lines without a later-added field still
    // pair with each other).
    let current = lines.last();
    let baseline = current.and_then(|cur| {
        lines[..lines.len() - 1].iter().rev().find(|prev| {
            spec.params.iter().all(|p| {
                cur.get(p).unwrap_or(&Value::Null) == prev.get(p).unwrap_or(&Value::Null)
            })
        })
    });

    let (Some(cur), Some(base)) = (current, baseline) else {
        return BenchDiff {
            suite: spec.name,
            current_commit: None,
            baseline_commit: None,
            rows: Vec::new(),
            skipped: true,
        };
    };

    let commit_of = |v: &Value| v.get("commit").and_then(Value::as_str).map(String::from);
    let rows = spec
        .counters
        .iter()
        .map(|c| {
            let current = cur.get(c.name).and_then(as_f64);
            let baseline = base.get(c.name).and_then(as_f64).filter(|b| *b != 0.0);
            let worse_pct = match (current, baseline) {
                (Some(now), Some(then)) => {
                    let change = (now - then) / then * 100.0;
                    Some(match c.direction {
                        Direction::HigherIsBetter => -change,
                        Direction::LowerIsBetter => change,
                    })
                }
                _ => None,
            };
            DeltaRow {
                counter: c.name,
                direction: c.direction,
                current,
                baseline,
                worse_pct,
                regressed: worse_pct.is_some_and(|w| w > tolerance_pct),
            }
        })
        .collect();

    BenchDiff {
        suite: spec.name,
        current_commit: commit_of(cur),
        baseline_commit: commit_of(base),
        rows,
        skipped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> &'static SuiteSpec {
        suite_by_name("serve").unwrap()
    }

    fn line(commit: &str, clients: u64, rps: f64, p99: f64) -> String {
        format!(
            r#"{{"bench":"serve_perf","commit":"{commit}","mode":"small","clients":{clients},"reactors":2,"throughput_rps":{rps},"p50_ms":0.1,"p99_ms":{p99}}}"#
        )
    }

    #[test]
    fn all_suites_resolve_by_name() {
        for s in SUITES {
            assert!(std::ptr::eq(suite_by_name(s.name).unwrap(), s));
        }
        assert!(suite_by_name("nope").is_none());
    }

    #[test]
    fn fewer_than_two_matching_lines_skips() {
        let d = diff_history(spec(), "", 10.0);
        assert!(d.skipped && !d.failed());
        let d = diff_history(spec(), &line("aaa", 64, 1000.0, 1.0), 10.0);
        assert!(d.skipped && !d.failed());
        // A second line with different parameters is not a baseline.
        let text = format!("{}\n{}", line("aaa", 32, 900.0, 1.0), line("bbb", 64, 1000.0, 1.0));
        let d = diff_history(spec(), &text, 10.0);
        assert!(d.skipped && !d.failed());
    }

    #[test]
    fn identical_reruns_pass() {
        let text = format!("{}\n{}", line("aaa", 64, 1000.0, 1.0), line("bbb", 64, 1000.0, 1.0));
        let d = diff_history(spec(), &text, 10.0);
        assert!(!d.skipped && !d.failed());
        assert_eq!(d.current_commit.as_deref(), Some("bbb"));
        assert_eq!(d.baseline_commit.as_deref(), Some("aaa"));
        for r in &d.rows {
            assert_eq!(r.worse_pct, Some(0.0), "{}", r.counter);
        }
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        // 20% throughput drop with 10% tolerance: regression.
        let text = format!("{}\n{}", line("aaa", 64, 1000.0, 1.0), line("bbb", 64, 800.0, 1.0));
        let d = diff_history(spec(), &text, 10.0);
        assert!(d.failed());
        let row = d.rows.iter().find(|r| r.counter == "throughput_rps").unwrap();
        assert!(row.regressed);
        assert!((row.worse_pct.unwrap() - 20.0).abs() < 1e-9);
        // The same drop passes at 25% tolerance and with --tolerance 19.99… fails.
        assert!(!diff_history(spec(), &text, 25.0).failed());
    }

    #[test]
    fn latency_growth_beyond_tolerance_fails() {
        let text = format!("{}\n{}", line("aaa", 64, 1000.0, 1.0), line("bbb", 64, 1000.0, 1.2));
        let d = diff_history(spec(), &text, 10.0);
        let row = d.rows.iter().find(|r| r.counter == "p99_ms").unwrap();
        assert!(row.regressed, "20% slower p99 must regress at 10%");
        // Latency *improvement* never fails, however large.
        let text = format!("{}\n{}", line("aaa", 64, 1000.0, 1.0), line("bbb", 64, 1000.0, 0.1));
        assert!(!diff_history(spec(), &text, 10.0).failed());
    }

    #[test]
    fn baseline_is_nearest_matching_line_not_just_previous() {
        // A run at different parameters interleaves; the diff must reach
        // past it to the nearest same-parameter line.
        let text = format!(
            "{}\n{}\n{}",
            line("old", 64, 1000.0, 1.0),
            line("mid", 32, 10.0, 9.0),
            line("new", 64, 995.0, 1.0)
        );
        let d = diff_history(spec(), &text, 10.0);
        assert!(!d.skipped && !d.failed());
        assert_eq!(d.baseline_commit.as_deref(), Some("old"));
    }

    #[test]
    fn missing_and_zero_counters_are_not_regressions() {
        // Baseline lacks p99_ms entirely and has zero throughput.
        let old = r#"{"bench":"serve_perf","commit":"old","mode":"small","clients":64,"reactors":2,"throughput_rps":0.0,"p50_ms":0.1}"#;
        let text = format!("{}\n{}", old, line("new", 64, 500.0, 1.0));
        let d = diff_history(spec(), &text, 10.0);
        assert!(!d.skipped && !d.failed());
        for r in &d.rows {
            if r.counter != "p50_ms" {
                assert_eq!(r.worse_pct, None, "{}", r.counter);
            }
        }
    }

    #[test]
    fn garbage_lines_are_ignored() {
        let text = format!("not json\n{}\n{{}}\n{}", line("aaa", 64, 1000.0, 1.0), line("bbb", 64, 1000.0, 1.0));
        let d = diff_history(spec(), &text, 10.0);
        assert!(!d.skipped && !d.failed());
    }
}
