//! # synergy-bench
//!
//! The experiment harness: shared context (trained models, characterization
//! sweeps) and output helpers used by the per-figure/table binaries in
//! `src/bin/` and the Criterion ablations in `benches/`.
//!
//! Every binary prints a human-readable table to stdout and writes a JSON
//! artifact under `experiments/` so EXPERIMENTS.md can cite exact numbers.

#![warn(missing_docs)]

pub mod accuracy;
pub mod regress;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use synergy_apps::Benchmark;
use synergy_kernel::{generate_microbench, MicroBenchConfig, MicroBenchmark};
use synergy_metrics::MetricPoint;
use synergy_ml::{MetricModels, ModelSelection};
use synergy_rt::{measured_sweep, ModelStore};
use synergy_sim::DeviceSpec;

/// Deterministic seed used by every experiment.
pub const EXPERIMENT_SEED: u64 = 2023;

/// Micro-benchmark generator seed.
pub const MICROBENCH_SEED: u64 = 42;

/// Frequency stride used when building training sets (full sweeps are
/// reserved for evaluation).
pub const TRAIN_STRIDE: usize = 8;

/// The micro-benchmark suite used to train models (Section 6.1).
pub fn microbench_suite() -> Vec<MicroBenchmark> {
    generate_microbench(MICROBENCH_SEED, &MicroBenchConfig::default())
}

/// A device plus its trained metric models.
pub struct DeviceContext {
    /// The device model.
    pub spec: DeviceSpec,
    /// The four trained single-target models (shared through the global
    /// [`ModelStore`], so consecutive figure binaries and tests training
    /// the same device reuse one cached bundle instead of retraining).
    pub models: Arc<MetricModels>,
}

impl DeviceContext {
    /// Train (or fetch from the model cache) the paper-best model
    /// selection for a device.
    pub fn new(spec: DeviceSpec, seed: u64) -> DeviceContext {
        let suite = microbench_suite();
        let models = ModelStore::global().get_or_train(
            &spec,
            &suite,
            ModelSelection::paper_best(),
            TRAIN_STRIDE,
            seed,
        );
        DeviceContext { spec, models }
    }

    /// V100 context.
    pub fn v100() -> DeviceContext {
        DeviceContext::new(DeviceSpec::v100(), EXPERIMENT_SEED)
    }

    /// MI100 context.
    pub fn mi100() -> DeviceContext {
        DeviceContext::new(DeviceSpec::mi100(), EXPERIMENT_SEED)
    }
}

/// Measured characterization sweep of one benchmark on a device.
pub fn characterize(spec: &DeviceSpec, bench: &Benchmark) -> Vec<MetricPoint> {
    measured_sweep(spec, &bench.ir, bench.work_items)
}

/// A characterization row: one frequency point, normalized to the default
/// configuration as in the paper's Figures 2, 7 and 8.
#[derive(Debug, Clone, Serialize)]
pub struct CharacterizationPoint {
    /// Core clock in MHz.
    pub core_mhz: u32,
    /// Speedup vs the default configuration (x-axis).
    pub speedup: f64,
    /// Normalized energy vs the default configuration (y-axis).
    pub normalized_energy: f64,
    /// Whether the point lies on the Pareto front.
    pub pareto: bool,
}

/// Normalize a sweep against its default-clock point and mark the front.
pub fn characterization_points(
    spec: &DeviceSpec,
    sweep: &[MetricPoint],
) -> Vec<CharacterizationPoint> {
    let baseline = synergy_metrics::point_at(sweep, spec.baseline_clocks())
        .expect("baseline in sweep");
    // One O(n log n) batch sweep instead of an O(n) scan per point; the
    // flags are element-for-element what `is_pareto_optimal` returns.
    let flags = synergy_metrics::pareto_flags(sweep);
    sweep
        .iter()
        .zip(flags)
        .map(|(p, pareto)| CharacterizationPoint {
            core_mhz: p.clocks.core_mhz,
            speedup: p.speedup_vs(&baseline),
            normalized_energy: p.normalized_energy_vs(&baseline),
            pareto,
        })
        .collect()
}

/// Where JSON artifacts land (`experiments/` at the workspace root).
pub fn artifact_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("experiments");
    dir
}

/// Write one experiment artifact as pretty JSON and announce it.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    fs::write(&path, json).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Short commit hash of the working tree, or `"unknown"` outside git
/// (history lines must stay writable from exported tarballs).
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Build one benchmark-history line: the run's parameters and counters
/// wrapped in an envelope of benchmark name, commit hash and Unix
/// timestamp. Envelope keys win on collision; a non-object record nests
/// under `"record"`.
pub fn bench_history_line(bench: &str, record: &serde_json::Value) -> serde_json::Value {
    let mut line = serde_json::Map::new();
    line.insert("bench".into(), serde_json::Value::from(bench));
    line.insert("commit".into(), serde_json::Value::from(current_commit()));
    let epoch_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    line.insert("unix_time_s".into(), serde_json::Value::from(epoch_s));
    match record {
        serde_json::Value::Object(fields) => {
            for (k, v) in fields {
                line.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        other => {
            line.insert("record".into(), other.clone());
        }
    }
    serde_json::Value::Object(line)
}

/// Append one run to the append-only benchmark trajectory,
/// `experiments/bench_history.jsonl` — one JSON object per line, so the
/// file accumulates a commit-stamped performance history across runs
/// (compare with `jq`, never overwritten). Best-effort: an unwritable
/// file degrades to a no-op rather than failing the benchmark.
pub fn append_bench_history(bench: &str, record: &serde_json::Value) {
    use std::io::Write as _;
    let line = bench_history_line(bench, record);
    let dir = artifact_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("bench_history.jsonl");
    let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    if writeln!(f, "{line}").is_ok() {
        println!("[history] {}", path.display());
    }
}

/// Render a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_apps::by_name;

    #[test]
    fn characterization_contains_baseline_at_unity() {
        let spec = DeviceSpec::v100();
        let bench = by_name("vec_add").unwrap();
        let sweep = characterize(&spec, &bench);
        let pts = characterization_points(&spec, &sweep);
        let base = pts
            .iter()
            .find(|p| p.core_mhz == spec.baseline_clocks().core_mhz)
            .unwrap();
        assert!((base.speedup - 1.0).abs() < 1e-12);
        assert!((base.normalized_energy - 1.0).abs() < 1e-12);
        assert!(pts.iter().any(|p| p.pareto));
    }

    #[test]
    fn artifact_dir_is_workspace_experiments() {
        let d = artifact_dir();
        assert!(d.ends_with("experiments"));
    }

    #[test]
    fn bench_history_line_carries_envelope_and_record() {
        let rec = serde_json::json!({"clients": 64, "p99_ms": 1.5, "bench": "spoof"});
        let line = bench_history_line("serve_perf", &rec);
        let obj = line.as_object().unwrap();
        // Envelope keys present and authoritative on collision.
        assert_eq!(obj["bench"], "serve_perf");
        assert!(obj.contains_key("commit"));
        assert!(obj["unix_time_s"].as_u64().is_some());
        // Record fields merged through.
        assert_eq!(obj["clients"], 64);
        assert_eq!(obj["p99_ms"], 1.5);
        // A non-object record nests instead of merging.
        let scalar = bench_history_line("x", &serde_json::json!(3));
        assert_eq!(scalar.as_object().unwrap()["record"], 3);
        // JSONL lines must be single-line.
        assert!(!line.to_string().contains('\n'));
    }
}
