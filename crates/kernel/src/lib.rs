//! # synergy-kernel
//!
//! The compiler-side substrate of the SYnergy reproduction: a miniature
//! per-work-item kernel IR, the static code features of Table 1, the
//! feature-extraction pass (steps ① and ④ of the paper's Figure 6), and a
//! micro-benchmark generator used to build model training sets (Section 6.1).
//!
//! The real system runs an LLVM pass inside the DPC++ SYCL toolchain; this
//! crate performs the same computation — expected dynamic instruction counts
//! per work-item, weighted by loop trip counts and branch probabilities —
//! over a small structured IR, so the rest of the stack (models, runtime,
//! scheduler) is exercised end-to-end.

#![warn(missing_docs)]

pub mod display;
pub mod extract;
pub mod features;
pub mod ir;
pub mod microbench;

pub use display::dump;
pub use extract::{effective_bytes_per_access, extract, KernelStaticInfo};
pub use features::{FeatureClass, FeatureVector, NUM_FEATURES};
pub use ir::{ElementWidth, Inst, IrBuilder, IrError, KernelIr, Stmt, TripCount};
pub use microbench::{generate as generate_microbench, MicroBenchConfig, MicroBenchmark};

#[cfg(test)]
mod proptests {
    use crate::extract::extract;
    use crate::ir::{Inst, KernelIr, Stmt, TripCount};
    use proptest::prelude::*;

    const ALL_INSTS: [Inst; 12] = [
        Inst::IntAdd,
        Inst::IntMul,
        Inst::IntDiv,
        Inst::IntBitwise,
        Inst::FloatAdd,
        Inst::FloatMul,
        Inst::FloatDiv,
        Inst::SpecialFn,
        Inst::GlobalLoad,
        Inst::GlobalStore,
        Inst::LocalLoad,
        Inst::LocalStore,
    ];

    fn arb_inst() -> impl Strategy<Value = Inst> {
        (0..ALL_INSTS.len()).prop_map(|i| ALL_INSTS[i])
    }

    fn arb_stmt() -> impl Strategy<Value = Stmt> {
        let leaf = (arb_inst(), 1u64..16).prop_map(|(i, c)| Stmt::Op(i, c));
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (1u64..8, prop::collection::vec(inner.clone(), 1..4)).prop_map(|(t, body)| {
                    Stmt::Loop {
                        trip: TripCount::Const(t),
                        body,
                    }
                }),
                (
                    0.0f64..1.0,
                    prop::collection::vec(inner.clone(), 0..3),
                    prop::collection::vec(inner, 0..3)
                )
                    .prop_map(|(p, then, els)| Stmt::Branch { prob: p, then, els }),
            ]
        })
    }

    fn arb_kernel() -> impl Strategy<Value = KernelIr> {
        prop::collection::vec(arb_stmt(), 0..6).prop_map(|body| KernelIr::new("prop", body))
    }

    proptest! {
        /// Extraction always yields finite, non-negative counts.
        #[test]
        fn extraction_is_valid(k in arb_kernel()) {
            let info = extract(&k);
            prop_assert!(info.features.is_valid());
            prop_assert!(info.global_bytes_per_item >= 0.0);
            prop_assert!(info.global_loads >= 0.0);
            prop_assert!(info.global_stores >= 0.0);
        }

        /// Extraction is a pure function of the IR.
        #[test]
        fn extraction_deterministic(k in arb_kernel()) {
            prop_assert_eq!(extract(&k), extract(&k));
        }

        /// Concatenating two kernel bodies adds their feature vectors
        /// (linearity of the expectation).
        #[test]
        fn extraction_is_linear(a in arb_kernel(), b in arb_kernel()) {
            let mut cat = a.body.clone();
            cat.extend(b.body.clone());
            let joined = extract(&KernelIr::new("cat", cat));
            let fa = extract(&a);
            let fb = extract(&b);
            for (i, &x) in joined.features.0.iter().enumerate() {
                let want = fa.features.0[i] + fb.features.0[i];
                prop_assert!((x - want).abs() <= 1e-9 * want.abs().max(1.0));
            }
        }

        /// Wrapping a body in a `Loop { trip: n }` multiplies counts by n.
        #[test]
        fn loop_scales_counts(k in arb_kernel(), n in 1u64..10) {
            let wrapped = KernelIr::new(
                "wrapped",
                vec![Stmt::Loop { trip: TripCount::Const(n), body: k.body.clone() }],
            );
            let base = extract(&k);
            let scaled = extract(&wrapped);
            for (i, &x) in scaled.features.0.iter().enumerate() {
                let want = base.features.0[i] * n as f64;
                prop_assert!((x - want).abs() <= 1e-9 * want.abs().max(1.0));
            }
        }

        /// Global access count equals loads + stores.
        #[test]
        fn global_access_consistency(k in arb_kernel()) {
            let info = extract(&k);
            let gl = info.features[crate::features::FeatureClass::GlobalAccess];
            prop_assert!((gl - (info.global_loads + info.global_stores)).abs() < 1e-9);
        }
    }
}
