//! The static feature-extraction pass.
//!
//! This is the compiler-side half of the SYnergy modeling workflow (step ①/④
//! of Figure 6): walk a kernel's IR and compute the *expected dynamic count*
//! of each Table-1 instruction class per work-item. Loops multiply their
//! body counts by the (constant or estimated) trip count; branches weight
//! both sides by the branch probability.
//!
//! The pass also derives the quantities the device model needs beyond the
//! raw feature vector: expected global memory traffic in bytes per work-item
//! and the split between loads and stores.

use crate::features::FeatureVector;
#[cfg(test)]
use crate::features::FeatureClass;
use crate::ir::{Inst, KernelIr, Stmt};
use serde::{Deserialize, Serialize};

/// Everything the extraction pass learns about one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStaticInfo {
    /// Kernel name (model key).
    pub name: String,
    /// Expected dynamic instruction counts per work-item (Table 1).
    pub features: FeatureVector,
    /// Expected global-memory bytes moved per work-item, after applying the
    /// kernel's coalescing factor (uncoalesced accesses are charged extra
    /// DRAM traffic, as a wide cache line is fetched for a narrow use).
    pub global_bytes_per_item: f64,
    /// Expected global loads per work-item.
    pub global_loads: f64,
    /// Expected global stores per work-item.
    pub global_stores: f64,
}

impl KernelStaticInfo {
    /// Arithmetic intensity of the kernel in ops per global byte.
    /// `INFINITY` when a computing kernel touches no global memory; 0.0
    /// when it neither computes nor moves global memory (an empty or
    /// pure-bookkeeping kernel has no arithmetic intensity, not an
    /// infinite one — the IR011 lint flags the pure-memory case).
    pub fn ops_per_byte(&self) -> f64 {
        if self.global_bytes_per_item == 0.0 {
            if self.features.compute_ops() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.features.compute_ops() / self.global_bytes_per_item
        }
    }
}

/// Intermediate accumulation while walking the IR.
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    features: FeatureVector,
    global_loads: f64,
    global_stores: f64,
}

impl Counts {
    fn add_scaled(&mut self, other: Counts, scale: f64) {
        self.features += other.features * scale;
        self.global_loads += other.global_loads * scale;
        self.global_stores += other.global_stores * scale;
    }

    fn add_inst(&mut self, inst: Inst, count: f64) {
        self.features[inst.feature_class()] += count;
        match inst {
            Inst::GlobalLoad => self.global_loads += count,
            Inst::GlobalStore => self.global_stores += count,
            _ => {}
        }
    }
}

fn walk(stmts: &[Stmt]) -> Counts {
    let mut acc = Counts::default();
    for stmt in stmts {
        match stmt {
            Stmt::Op(inst, count) => acc.add_inst(*inst, *count as f64),
            Stmt::Loop { trip, body } => {
                let inner = walk(body);
                acc.add_scaled(inner, trip.expected().max(0.0));
            }
            Stmt::Branch { prob, then, els } => {
                let p = prob.clamp(0.0, 1.0);
                acc.add_scaled(walk(then), p);
                acc.add_scaled(walk(els), 1.0 - p);
            }
        }
    }
    acc
}

/// Expected DRAM-visible bytes *one* global access moves before the
/// cache (DRAM-fraction) discount, after the kernel's coalescing factor.
///
/// Shared between the point-estimate pass ([`extract`]) and the interval
/// abstract interpreter in `synergy-analyze`, so both charge memory
/// traffic identically: coalesced accesses move exactly the element
/// width; uncoalesced ones drag a 32-byte DRAM sector for each element
/// touched. Callers multiply by `dram_fraction` (in this order, so the
/// two passes agree bit-for-bit).
pub fn effective_bytes_per_access(kernel: &KernelIr) -> f64 {
    // Coalesced accesses move exactly the element width; uncoalesced ones
    // drag a 32-byte DRAM sector for each element touched.
    const UNCOALESCED_SECTOR: f64 = 32.0;
    let w = kernel.element_width.bytes();
    kernel.coalescing * w + (1.0 - kernel.coalescing) * UNCOALESCED_SECTOR.max(w)
}

/// Run the extraction pass over one kernel.
///
/// This is a pure function of the IR: calling it twice yields identical
/// results, and extraction never fails (an empty body yields the zero
/// vector).
pub fn extract(kernel: &KernelIr) -> KernelStaticInfo {
    let counts = walk(&kernel.body);
    let accesses = counts.global_loads + counts.global_stores;
    let eff_bytes = effective_bytes_per_access(kernel);
    KernelStaticInfo {
        name: kernel.name.clone(),
        features: counts.features,
        global_bytes_per_item: accesses * eff_bytes * kernel.dram_fraction,
        global_loads: counts.global_loads,
        global_stores: counts.global_stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ElementWidth, IrBuilder, TripCount};

    #[test]
    fn straight_line_counts() {
        let k = IrBuilder::new()
            .ops(Inst::IntAdd, 3)
            .ops(Inst::FloatMul, 2)
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::GlobalStore, 1)
            .build("sl");
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::IntAdd], 3.0);
        assert_eq!(info.features[FeatureClass::FloatMul], 2.0);
        assert_eq!(info.features[FeatureClass::GlobalAccess], 3.0);
        assert_eq!(info.global_loads, 2.0);
        assert_eq!(info.global_stores, 1.0);
        // fully coalesced f32: 3 accesses * 4 bytes
        assert_eq!(info.global_bytes_per_item, 12.0);
    }

    #[test]
    fn loops_multiply() {
        let k = IrBuilder::new()
            .loop_n(10, |b| {
                b.ops(Inst::FloatAdd, 1)
                    .loop_n(4, |b| b.ops(Inst::FloatMul, 2))
            })
            .build("loops");
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::FloatAdd], 10.0);
        assert_eq!(info.features[FeatureClass::FloatMul], 80.0);
    }

    #[test]
    fn branches_weight_by_probability() {
        let k = IrBuilder::new()
            .branch(
                0.25,
                |b| b.ops(Inst::SpecialFn, 4),
                |b| b.ops(Inst::IntBitwise, 8),
            )
            .build("br");
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::SpecialFn], 1.0);
        assert_eq!(info.features[FeatureClass::IntBitwise], 6.0);
    }

    #[test]
    fn estimated_trip_counts() {
        let k = IrBuilder::new()
            .loop_est(2.5, |b| b.ops(Inst::IntDiv, 2))
            .build("est");
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::IntDiv], 5.0);
    }

    #[test]
    fn negative_estimated_trip_clamped_to_zero() {
        let k = KernelIr::new(
            "neg",
            vec![Stmt::Loop {
                trip: TripCount::Estimated(-3.0),
                body: vec![Stmt::op(Inst::IntAdd)],
            }],
        );
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::IntAdd], 0.0);
        assert!(info.features.is_valid());
    }

    #[test]
    fn uncoalesced_access_costs_a_sector() {
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .build("uc")
            .with_coalescing(0.0);
        let info = extract(&k);
        assert_eq!(info.global_bytes_per_item, 32.0);
    }

    #[test]
    fn word8_coalesced_bytes() {
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 3)
            .build("w8")
            .with_element_width(ElementWidth::Word8);
        let info = extract(&k);
        assert_eq!(info.global_bytes_per_item, 24.0);
    }

    #[test]
    fn dram_fraction_scales_traffic() {
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 4)
            .build("cache")
            .with_dram_fraction(0.25);
        let info = extract(&k);
        assert_eq!(info.global_bytes_per_item, 4.0 * 4.0 * 0.25);
        // Issue counts are unaffected by caching.
        assert_eq!(info.features[FeatureClass::GlobalAccess], 4.0);
    }

    #[test]
    fn empty_kernel_is_zero() {
        let info = extract(&KernelIr::new("empty", vec![]));
        assert_eq!(info.features, FeatureVector::ZERO);
        assert_eq!(info.ops_per_byte(), 0.0);
    }

    #[test]
    fn ops_per_byte_distinguishes_compute_only_from_empty() {
        let compute_only = IrBuilder::new().ops(Inst::FloatMul, 4).build("c");
        assert!(extract(&compute_only).ops_per_byte().is_infinite());
        let memory_only = IrBuilder::new().ops(Inst::GlobalLoad, 2).build("m");
        assert_eq!(extract(&memory_only).ops_per_byte(), 0.0);
    }

    #[test]
    fn extraction_is_deterministic() {
        let k = IrBuilder::new()
            .loop_n(7, |b| b.ops(Inst::FloatDiv, 1).ops(Inst::GlobalLoad, 2))
            .branch(0.5, |b| b.ops(Inst::SpecialFn, 1), |b| b)
            .build("det");
        assert_eq!(extract(&k), extract(&k));
    }

    #[test]
    fn local_accesses_do_not_count_as_global_traffic() {
        let k = IrBuilder::new()
            .ops(Inst::LocalLoad, 5)
            .ops(Inst::LocalStore, 5)
            .build("loc");
        let info = extract(&k);
        assert_eq!(info.features[FeatureClass::LocalAccess], 10.0);
        assert_eq!(info.global_bytes_per_item, 0.0);
    }
}
