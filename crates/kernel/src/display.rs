//! Human-readable IR dumps and structural validation.
//!
//! `dump` renders a kernel the way a compiler's `-emit-ir` flag would —
//! indented, one statement per line — which makes calibration reviews and
//! bug reports tractable. `validate` rejects structurally broken IRs
//! (non-finite probabilities or trip counts, zero-count ops) before they
//! reach the extraction pass; it is deprecated in favour of the
//! `synergy-analyze` IR lints, which report the same defects (and more)
//! with tree-addressed locations and configurable severities.

use crate::ir::{KernelIr, Stmt, TripCount};
use std::fmt::Write;

/// Render a kernel IR as indented text.
pub fn dump(kernel: &KernelIr) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel {} (width {} B, coalescing {:.2}, dram {:.2}) {{",
        kernel.name,
        kernel.element_width.bytes(),
        kernel.coalescing,
        kernel.dram_fraction
    );
    dump_stmts(&kernel.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    for stmt in stmts {
        indent(depth, out);
        match stmt {
            Stmt::Op(inst, count) => {
                let _ = writeln!(out, "{inst:?} x{count}");
            }
            Stmt::Loop { trip, body } => {
                match trip {
                    TripCount::Const(n) => {
                        let _ = writeln!(out, "loop {n} {{");
                    }
                    TripCount::Estimated(e) => {
                        let _ = writeln!(out, "loop ~{e:.1} {{");
                    }
                }
                dump_stmts(body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::Branch { prob, then, els } => {
                let _ = writeln!(out, "if p={prob:.2} {{");
                dump_stmts(then, depth + 1, out);
                indent(depth, out);
                out.push_str("} else {\n");
                dump_stmts(els, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
    }
}

/// A structural defect found by [`validate`].
#[deprecated(
    since = "0.1.0",
    note = "superseded by the synergy-analyze IR lints (codes IR001–IR005), \
            which add tree-addressed paths, severities and suggestions"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrDefect {
    /// An `Op` with a zero repeat count (dead statement).
    ZeroCountOp,
    /// A loop trip count that is not finite or is negative.
    BadTripCount,
    /// A branch probability outside `[0, 1]` or not finite.
    BadBranchProbability,
    /// An empty loop body (burns trips doing nothing).
    EmptyLoopBody,
    /// Coalescing or DRAM fraction outside their valid ranges.
    BadMemoryFractions,
}

/// Validate a kernel IR; returns every defect found (empty = valid).
///
/// Kept as a thin shim for existing callers; the checks live on as the
/// deny-level built-in lints `IR001`–`IR005` of `synergy-analyze`, which
/// report *where* each defect sits (`body[2].loop.body[0]`) instead of
/// only that it exists.
#[deprecated(
    since = "0.1.0",
    note = "use synergy_analyze::LintRegistry::with_builtin().check_kernel(...) \
            (codes IR001–IR005) instead"
)]
pub fn validate(kernel: &KernelIr) -> Vec<IrDefect> {
    let mut defects = Vec::new();
    if !(0.0..=1.0).contains(&kernel.coalescing)
        || !(0.0..=1.0).contains(&kernel.dram_fraction)
        || !kernel.coalescing.is_finite()
        || !kernel.dram_fraction.is_finite()
    {
        defects.push(IrDefect::BadMemoryFractions);
    }
    fn walk(stmts: &[Stmt], defects: &mut Vec<IrDefect>) {
        for stmt in stmts {
            match stmt {
                Stmt::Op(_, 0) => defects.push(IrDefect::ZeroCountOp),
                Stmt::Op(..) => {}
                Stmt::Loop { trip, body } => {
                    match trip {
                        TripCount::Estimated(e) if !e.is_finite() || *e < 0.0 => {
                            defects.push(IrDefect::BadTripCount)
                        }
                        _ => {}
                    }
                    if body.is_empty() {
                        defects.push(IrDefect::EmptyLoopBody);
                    }
                    walk(body, defects);
                }
                Stmt::Branch { prob, then, els } => {
                    if !prob.is_finite() || !(0.0..=1.0).contains(prob) {
                        defects.push(IrDefect::BadBranchProbability);
                    }
                    walk(then, defects);
                    walk(els, defects);
                }
            }
        }
    }
    walk(&kernel.body, &mut defects);
    defects
}

#[cfg(test)]
mod tests {
    // The deprecated shim keeps its tests until it is removed.
    #![allow(deprecated)]

    use super::*;
    use crate::ir::{Inst, IrBuilder};

    fn sample() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .branch(0.25, |b| b.ops(Inst::SpecialFn, 1), |b| b)
            .ops(Inst::GlobalStore, 1)
            .build("demo")
    }

    #[test]
    fn dump_is_structured_and_complete() {
        let text = dump(&sample());
        assert!(text.starts_with("kernel demo"));
        assert!(text.contains("loop 8 {"));
        assert!(text.contains("if p=0.25 {"));
        assert!(text.contains("GlobalLoad x2"));
        assert!(text.contains("SpecialFn x1"));
        // Balanced braces.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in:\n{text}"
        );
    }

    #[test]
    fn valid_kernels_have_no_defects() {
        assert!(validate(&sample()).is_empty());
        for b in crate::microbench::generate_default(3) {
            assert!(validate(&b.ir).is_empty(), "{}", b.ir.name);
        }
    }

    #[test]
    fn detects_zero_count_op() {
        let k = KernelIr::new("z", vec![Stmt::Op(Inst::IntAdd, 0)]);
        assert_eq!(validate(&k), vec![IrDefect::ZeroCountOp]);
    }

    #[test]
    fn detects_bad_trip_and_empty_body() {
        let k = KernelIr::new(
            "bad",
            vec![Stmt::Loop {
                trip: TripCount::Estimated(f64::NAN),
                body: vec![],
            }],
        );
        let d = validate(&k);
        assert!(d.contains(&IrDefect::BadTripCount));
        assert!(d.contains(&IrDefect::EmptyLoopBody));
    }

    #[test]
    fn detects_bad_branch_probability() {
        let k = KernelIr::new(
            "p",
            vec![Stmt::Branch {
                prob: f64::INFINITY,
                then: vec![],
                els: vec![],
            }],
        );
        assert_eq!(validate(&k), vec![IrDefect::BadBranchProbability]);
    }

    #[test]
    fn detects_bad_memory_fractions() {
        let mut k = sample();
        k.dram_fraction = f64::NAN;
        assert!(validate(&k).contains(&IrDefect::BadMemoryFractions));
    }

    #[test]
    fn suite_irs_dump_and_validate() {
        // Smoke over the micro-benchmark suite: dumps stay proportional to
        // node counts and all validate.
        for b in crate::microbench::generate_default(1) {
            let text = dump(&b.ir);
            assert!(text.lines().count() >= 3);
        }
    }
}
