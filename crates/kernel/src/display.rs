//! Human-readable IR dumps.
//!
//! `dump` renders a kernel the way a compiler's `-emit-ir` flag would —
//! indented, one statement per line — which makes calibration reviews and
//! bug reports tractable. Structural validation lives in the
//! `synergy-analyze` IR lints (codes `IR001`–`IR005`), which report each
//! defect with a tree-addressed location and a configurable severity;
//! fallible IR construction is available through the `try_*` builders on
//! [`crate::ir::IrBuilder`] / [`crate::ir::KernelIr`].

use crate::ir::{KernelIr, Stmt, TripCount};
use std::fmt::Write;

/// Render a kernel IR as indented text.
pub fn dump(kernel: &KernelIr) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel {} (width {} B, coalescing {:.2}, dram {:.2}) {{",
        kernel.name,
        kernel.element_width.bytes(),
        kernel.coalescing,
        kernel.dram_fraction
    );
    dump_stmts(&kernel.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn dump_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    for stmt in stmts {
        indent(depth, out);
        match stmt {
            Stmt::Op(inst, count) => {
                let _ = writeln!(out, "{inst:?} x{count}");
            }
            Stmt::Loop { trip, body } => {
                match trip {
                    TripCount::Const(n) => {
                        let _ = writeln!(out, "loop {n} {{");
                    }
                    TripCount::Estimated(e) => {
                        let _ = writeln!(out, "loop ~{e:.1} {{");
                    }
                }
                dump_stmts(body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::Branch { prob, then, els } => {
                let _ = writeln!(out, "if p={prob:.2} {{");
                dump_stmts(then, depth + 1, out);
                indent(depth, out);
                out.push_str("} else {\n");
                dump_stmts(els, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, IrBuilder};

    fn sample() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .branch(0.25, |b| b.ops(Inst::SpecialFn, 1), |b| b)
            .ops(Inst::GlobalStore, 1)
            .build("demo")
    }

    #[test]
    fn dump_is_structured_and_complete() {
        let text = dump(&sample());
        assert!(text.starts_with("kernel demo"));
        assert!(text.contains("loop 8 {"));
        assert!(text.contains("if p=0.25 {"));
        assert!(text.contains("GlobalLoad x2"));
        assert!(text.contains("SpecialFn x1"));
        // Balanced braces.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in:\n{text}"
        );
    }

    #[test]
    fn estimated_loops_dump_with_tilde() {
        let k = IrBuilder::new()
            .loop_est(5.5, |b| b.ops(Inst::GlobalLoad, 1))
            .build("est");
        assert!(dump(&k).contains("loop ~5.5 {"));
    }

    #[test]
    fn suite_irs_dump() {
        // Smoke over the micro-benchmark suite: dumps stay proportional to
        // node counts.
        for b in crate::microbench::generate_default(1) {
            let text = dump(&b.ir);
            assert!(text.lines().count() >= 3);
        }
    }
}
