//! Static code features (Table 1 of the SYnergy paper).
//!
//! Every kernel is represented by a 10-dimensional static feature vector
//! \\(\vec k\\) whose components count, per work-item, the expected dynamic
//! occurrences of each instruction class:
//!
//! | feature        | description                                |
//! |----------------|--------------------------------------------|
//! | `int_add`      | integer additions and subtractions         |
//! | `int_mul`      | integer multiplications                    |
//! | `int_div`      | integer divisions                          |
//! | `int_bw`       | integer bitwise operations                 |
//! | `float_add`    | floating point additions and subtractions  |
//! | `float_mul`    | floating point multiplications             |
//! | `float_div`    | floating point divisions                   |
//! | `sf`           | special functions (exp, log, sqrt, sin...) |
//! | `gl_access`    | global memory accesses                     |
//! | `loc_access`   | local memory accesses                      |

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul};

/// Number of static feature classes (Table 1).
pub const NUM_FEATURES: usize = 10;

/// One instruction class of the Table-1 feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum FeatureClass {
    /// Integer additions and subtractions (`k_int_add`).
    IntAdd = 0,
    /// Integer multiplications (`k_int_mul`).
    IntMul = 1,
    /// Integer divisions (`k_int_div`).
    IntDiv = 2,
    /// Integer bitwise operations (`k_int_bw`).
    IntBitwise = 3,
    /// Floating point additions and subtractions (`k_float_add`).
    FloatAdd = 4,
    /// Floating point multiplications (`k_float_mul`).
    FloatMul = 5,
    /// Floating point divisions (`k_float_div`).
    FloatDiv = 6,
    /// Special functions: transcendental / sqrt / rsqrt (`k_sf`).
    SpecialFn = 7,
    /// Global memory accesses (`k_gl_access`).
    GlobalAccess = 8,
    /// Local (shared) memory accesses (`k_loc_access`).
    LocalAccess = 9,
}

impl FeatureClass {
    /// All feature classes, in Table-1 order.
    pub const ALL: [FeatureClass; NUM_FEATURES] = [
        FeatureClass::IntAdd,
        FeatureClass::IntMul,
        FeatureClass::IntDiv,
        FeatureClass::IntBitwise,
        FeatureClass::FloatAdd,
        FeatureClass::FloatMul,
        FeatureClass::FloatDiv,
        FeatureClass::SpecialFn,
        FeatureClass::GlobalAccess,
        FeatureClass::LocalAccess,
    ];

    /// The short name used in the paper (`k_<name>`).
    pub fn name(self) -> &'static str {
        match self {
            FeatureClass::IntAdd => "int_add",
            FeatureClass::IntMul => "int_mul",
            FeatureClass::IntDiv => "int_div",
            FeatureClass::IntBitwise => "int_bw",
            FeatureClass::FloatAdd => "float_add",
            FeatureClass::FloatMul => "float_mul",
            FeatureClass::FloatDiv => "float_div",
            FeatureClass::SpecialFn => "sf",
            FeatureClass::GlobalAccess => "gl_access",
            FeatureClass::LocalAccess => "loc_access",
        }
    }

    /// Whether the class is a memory access rather than an ALU operation.
    pub fn is_memory(self) -> bool {
        matches!(self, FeatureClass::GlobalAccess | FeatureClass::LocalAccess)
    }
}

impl fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The static feature vector \\(\vec k\\): expected dynamic instruction counts
/// per work-item, one entry per [`FeatureClass`].
///
/// Counts are `f64` because branch-probability weighting in the extraction
/// pass produces fractional expectations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureVector(pub [f64; NUM_FEATURES]);

impl FeatureVector {
    /// The all-zero vector (an empty kernel).
    pub const ZERO: FeatureVector = FeatureVector([0.0; NUM_FEATURES]);

    /// Build from an explicit array in Table-1 order.
    pub fn from_array(a: [f64; NUM_FEATURES]) -> Self {
        FeatureVector(a)
    }

    /// A vector with `count` in a single class and zero elsewhere.
    pub fn single(class: FeatureClass, count: f64) -> Self {
        let mut v = FeatureVector::ZERO;
        v[class] = count;
        v
    }

    /// Total expected instructions per work-item (all classes).
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Total compute (non-memory) operations per work-item.
    pub fn compute_ops(&self) -> f64 {
        FeatureClass::ALL
            .iter()
            .filter(|c| !c.is_memory())
            .map(|&c| self[c])
            .sum()
    }

    /// Total memory accesses (global + local) per work-item.
    pub fn memory_ops(&self) -> f64 {
        self[FeatureClass::GlobalAccess] + self[FeatureClass::LocalAccess]
    }

    /// Arithmetic intensity: compute operations per global memory access.
    /// Returns `f64::INFINITY` for kernels with no global accesses.
    pub fn arithmetic_intensity(&self) -> f64 {
        let gl = self[FeatureClass::GlobalAccess];
        if gl == 0.0 {
            f64::INFINITY
        } else {
            self.compute_ops() / gl
        }
    }

    /// True if every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|&x| x.is_finite() && x >= 0.0)
    }

    /// Iterate `(class, count)` pairs in Table-1 order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureClass, f64)> + '_ {
        FeatureClass::ALL.iter().map(move |&c| (c, self[c]))
    }

    /// The vector as a plain slice (model input row).
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl Index<FeatureClass> for FeatureVector {
    type Output = f64;
    fn index(&self, c: FeatureClass) -> &f64 {
        &self.0[c as usize]
    }
}

impl IndexMut<FeatureClass> for FeatureVector {
    fn index_mut(&mut self, c: FeatureClass) -> &mut f64 {
        &mut self.0[c as usize]
    }
}

impl Add for FeatureVector {
    type Output = FeatureVector;
    fn add(mut self, rhs: FeatureVector) -> FeatureVector {
        self += rhs;
        self
    }
}

impl AddAssign for FeatureVector {
    fn add_assign(&mut self, rhs: FeatureVector) {
        for i in 0..NUM_FEATURES {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Mul<f64> for FeatureVector {
    type Output = FeatureVector;
    fn mul(mut self, s: f64) -> FeatureVector {
        for x in &mut self.0 {
            *x *= s;
        }
        self
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k(")?;
        for (i, (c, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v:.2}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_matches_table1() {
        let names: Vec<_> = FeatureClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "int_add",
                "int_mul",
                "int_div",
                "int_bw",
                "float_add",
                "float_mul",
                "float_div",
                "sf",
                "gl_access",
                "loc_access"
            ]
        );
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = FeatureVector::ZERO;
        for (i, &c) in FeatureClass::ALL.iter().enumerate() {
            v[c] = i as f64;
        }
        for (i, &c) in FeatureClass::ALL.iter().enumerate() {
            assert_eq!(v[c], i as f64);
            assert_eq!(v.0[i], i as f64);
        }
    }

    #[test]
    fn totals_split_by_memory() {
        let mut v = FeatureVector::ZERO;
        v[FeatureClass::FloatAdd] = 3.0;
        v[FeatureClass::FloatMul] = 2.0;
        v[FeatureClass::GlobalAccess] = 4.0;
        v[FeatureClass::LocalAccess] = 1.0;
        assert_eq!(v.compute_ops(), 5.0);
        assert_eq!(v.memory_ops(), 5.0);
        assert_eq!(v.total(), 10.0);
        assert!((v.arithmetic_intensity() - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_no_global_is_infinite() {
        let v = FeatureVector::single(FeatureClass::FloatAdd, 7.0);
        assert!(v.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn add_and_scale() {
        let a = FeatureVector::single(FeatureClass::IntAdd, 2.0);
        let b = FeatureVector::single(FeatureClass::IntAdd, 3.0);
        assert_eq!((a + b)[FeatureClass::IntAdd], 5.0);
        assert_eq!((a * 4.0)[FeatureClass::IntAdd], 8.0);
    }

    #[test]
    fn validity() {
        assert!(FeatureVector::ZERO.is_valid());
        let mut v = FeatureVector::ZERO;
        v[FeatureClass::IntDiv] = -1.0;
        assert!(!v.is_valid());
        v[FeatureClass::IntDiv] = f64::NAN;
        assert!(!v.is_valid());
    }

    #[test]
    fn serde_roundtrip() {
        let v = FeatureVector::from_array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        let s = serde_json::to_string(&v).unwrap();
        let w: FeatureVector = serde_json::from_str(&s).unwrap();
        assert_eq!(v, w);
    }

    #[test]
    fn display_contains_names() {
        let v = FeatureVector::single(FeatureClass::SpecialFn, 1.5);
        let s = format!("{v}");
        assert!(s.contains("sf=1.50"));
    }
}
