//! A miniature per-work-item kernel IR.
//!
//! The SYnergy paper extracts its static features with a compiler pass over
//! the SYCL/LLVM IR of each kernel. Our substrate replaces LLVM IR with a
//! small structured IR: a kernel body is a tree of [`Stmt`]s — straight-line
//! instruction bundles, counted loops and probabilistic branches. The
//! extraction pass in [`crate::extract`] walks this tree and produces the
//! expected dynamic instruction counts per work-item, exactly the quantity
//! the paper's pass computes.

use crate::features::FeatureClass;
use serde::{Deserialize, Serialize};

/// One primitive instruction of the IR, mapping 1:1 onto a [`FeatureClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// Integer add / subtract.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide / modulo.
    IntDiv,
    /// Integer bitwise (and/or/xor/shift).
    IntBitwise,
    /// Floating add / subtract.
    FloatAdd,
    /// Floating multiply (also counts each half of an FMA).
    FloatMul,
    /// Floating divide.
    FloatDiv,
    /// Special function (exp, log, sqrt, sin, cos, pow...).
    SpecialFn,
    /// Global memory load.
    GlobalLoad,
    /// Global memory store.
    GlobalStore,
    /// Local (shared) memory load.
    LocalLoad,
    /// Local (shared) memory store.
    LocalStore,
}

impl Inst {
    /// The feature class this instruction is counted under.
    pub fn feature_class(self) -> FeatureClass {
        match self {
            Inst::IntAdd => FeatureClass::IntAdd,
            Inst::IntMul => FeatureClass::IntMul,
            Inst::IntDiv => FeatureClass::IntDiv,
            Inst::IntBitwise => FeatureClass::IntBitwise,
            Inst::FloatAdd => FeatureClass::FloatAdd,
            Inst::FloatMul => FeatureClass::FloatMul,
            Inst::FloatDiv => FeatureClass::FloatDiv,
            Inst::SpecialFn => FeatureClass::SpecialFn,
            Inst::GlobalLoad | Inst::GlobalStore => FeatureClass::GlobalAccess,
            Inst::LocalLoad | Inst::LocalStore => FeatureClass::LocalAccess,
        }
    }

    /// Whether this is a global memory access (drives DRAM traffic).
    pub fn is_global_access(self) -> bool {
        matches!(self, Inst::GlobalLoad | Inst::GlobalStore)
    }
}

/// Loop trip count: either a compile-time constant or a symbolic parameter
/// with a static estimate (the pass uses the estimate, as a real compiler
/// would use profile or heuristic data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TripCount {
    /// Known constant trip count.
    Const(u64),
    /// Unknown trip count with a static estimate.
    Estimated(f64),
}

impl TripCount {
    /// The value the extraction pass uses.
    pub fn expected(self) -> f64 {
        match self {
            TripCount::Const(n) => n as f64,
            TripCount::Estimated(e) => e,
        }
    }

    /// A validated estimated trip count: rejects NaN, infinite and
    /// negative estimates instead of deferring to the deny-level lints.
    pub fn try_estimated(e: f64) -> Result<TripCount, IrError> {
        if !e.is_finite() || e < 0.0 {
            Err(IrError::BadTripEstimate(e))
        } else {
            Ok(TripCount::Estimated(e))
        }
    }

    /// The `[lo, hi]` interval the abstract interpreter runs loops with.
    ///
    /// A `Const` trip count is exact (`lo == hi == n`). An `Estimated`
    /// trip widens symmetrically by the relative `uncertainty` factor:
    /// `[e·(1−u), e·(1+u)]`, floored at zero. Degenerate estimates
    /// (NaN, negative) collapse to `[0, 0]`, matching the extraction
    /// pass's `expected().max(0.0)` clamping so the interval always
    /// contains the point estimate the rest of the stack uses.
    pub fn bounds(self, uncertainty: f64) -> (f64, f64) {
        let u = if uncertainty.is_finite() {
            uncertainty.max(0.0)
        } else {
            0.0
        };
        match self {
            TripCount::Const(n) => (n as f64, n as f64),
            TripCount::Estimated(e) => {
                let e = e.max(0.0); // NaN/negative → 0, as in extract
                ((e * (1.0 - u)).max(0.0), e * (1.0 + u))
            }
        }
    }
}

/// A rejected IR construction: the value is outside the domain the
/// extraction pass and the device model are defined over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrError {
    /// An estimated trip count that is NaN, infinite or negative.
    BadTripEstimate(f64),
    /// A branch probability outside `[0, 1]` or not finite.
    BadBranchProb(f64),
    /// A coalescing fraction outside `[0, 1]` or not finite.
    BadCoalescing(f64),
    /// A DRAM fraction outside `(0, 1]` or not finite.
    BadDramFraction(f64),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadTripEstimate(v) => {
                write!(f, "estimated trip count {v} must be finite and >= 0")
            }
            IrError::BadBranchProb(v) => {
                write!(f, "branch probability {v} must be finite and in [0, 1]")
            }
            IrError::BadCoalescing(v) => {
                write!(f, "coalescing fraction {v} must be finite and in [0, 1]")
            }
            IrError::BadDramFraction(v) => {
                write!(f, "dram fraction {v} must be finite and in (0, 1]")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// A statement of the kernel body.
// repr(C): dodge a layout-niche miscompilation observed with the default
// repr on this toolchain (drop glue of builder-constructed trees faulted
// at opt-level >= 2); the explicit tagged-union layout compiles correctly.
#[repr(C)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `count` repetitions of a primitive instruction (a straight-line bundle).
    Op(Inst, u64),
    /// A counted loop.
    Loop {
        /// Trip count of the loop.
        trip: TripCount,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A two-way branch taken with probability `prob` (then-side).
    Branch {
        /// Probability of taking `then`, in `[0, 1]`.
        prob: f64,
        /// Statements executed when the branch is taken.
        then: Vec<Stmt>,
        /// Statements executed otherwise.
        els: Vec<Stmt>,
    },
}

impl Stmt {
    /// Convenience: a single occurrence of `inst`.
    pub fn op(inst: Inst) -> Stmt {
        Stmt::Op(inst, 1)
    }

    /// Convenience: `count` occurrences of `inst`.
    pub fn ops(inst: Inst, count: u64) -> Stmt {
        Stmt::Op(inst, count)
    }

    /// Convenience: a constant-trip-count loop.
    pub fn loop_n(trip: u64, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            trip: TripCount::Const(trip),
            body,
        }
    }

    /// A validated branch: rejects probabilities that are NaN, infinite
    /// or outside `[0, 1]` (the infallible [`IrBuilder::branch`] clamps
    /// instead, deferring NaN to the deny-level `IR003` lint).
    pub fn try_branch(prob: f64, then: Vec<Stmt>, els: Vec<Stmt>) -> Result<Stmt, IrError> {
        if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
            Err(IrError::BadBranchProb(prob))
        } else {
            Ok(Stmt::Branch { prob, then, els })
        }
    }
}

/// The element type a kernel predominantly moves through global memory;
/// used to convert access counts into DRAM bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElementWidth {
    /// 4-byte elements (f32 / i32).
    Word4 = 4,
    /// 8-byte elements (f64 / i64).
    Word8 = 8,
}

impl ElementWidth {
    /// Width in bytes.
    pub fn bytes(self) -> f64 {
        self as usize as f64
    }
}

/// A complete kernel: a name, a per-work-item body, and memory layout info.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelIr {
    /// Kernel name (unique within an application; used as the model key).
    pub name: String,
    /// Per-work-item body.
    pub body: Vec<Stmt>,
    /// Predominant global-memory element width.
    pub element_width: ElementWidth,
    /// Fraction of global accesses that are coalesced (hit peak bandwidth);
    /// uncoalesced accesses cost a device-specific multiplier. In `[0, 1]`.
    pub coalescing: f64,
    /// Fraction of global accesses that miss on-chip caches and reach DRAM.
    /// Stencils and tiled kernels reuse neighbours' data and stay well below
    /// 1.0; streaming kernels sit at 1.0. In `(0, 1]`.
    pub dram_fraction: f64,
}

impl KernelIr {
    /// Create a kernel IR with fully-coalesced 4-byte accesses.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>) -> Self {
        KernelIr {
            name: name.into(),
            body,
            element_width: ElementWidth::Word4,
            coalescing: 1.0,
            dram_fraction: 1.0,
        }
    }

    /// Builder: set the element width.
    pub fn with_element_width(mut self, w: ElementWidth) -> Self {
        self.element_width = w;
        self
    }

    /// Builder: set the coalescing fraction (clamped to `[0, 1]`).
    pub fn with_coalescing(mut self, c: f64) -> Self {
        self.coalescing = c.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the fraction of global accesses that reach DRAM
    /// (clamped to `[0.01, 1]` — some traffic always escapes the caches).
    pub fn with_dram_fraction(mut self, f: f64) -> Self {
        self.dram_fraction = f.clamp(0.01, 1.0);
        self
    }

    /// Validating builder: set the coalescing fraction, rejecting NaN,
    /// infinite and out-of-range values instead of clamping.
    pub fn try_with_coalescing(mut self, c: f64) -> Result<Self, IrError> {
        if !c.is_finite() || !(0.0..=1.0).contains(&c) {
            return Err(IrError::BadCoalescing(c));
        }
        self.coalescing = c;
        Ok(self)
    }

    /// Validating builder: set the DRAM fraction, rejecting NaN,
    /// infinite, non-positive and above-one values instead of clamping.
    pub fn try_with_dram_fraction(mut self, f: f64) -> Result<Self, IrError> {
        if !f.is_finite() || f <= 0.0 || f > 1.0 {
            return Err(IrError::BadDramFraction(f));
        }
        self.dram_fraction = f;
        Ok(self)
    }

    /// Total number of `Stmt` nodes (for diagnostics and tests).
    pub fn node_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Op(..) => 1,
                    Stmt::Loop { body, .. } => 1 + count(body),
                    Stmt::Branch { then, els, .. } => 1 + count(then) + count(els),
                })
                .sum()
        }
        count(&self.body)
    }
}

/// A fluent builder for kernel bodies, mirroring how the benchmark suite
/// constructs its IRs.
#[derive(Debug, Default)]
pub struct IrBuilder {
    stmts: Vec<Stmt>,
}

impl IrBuilder {
    /// Start an empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `count` occurrences of `inst`.
    pub fn ops(mut self, inst: Inst, count: u64) -> Self {
        self.stmts.push(Stmt::Op(inst, count));
        self
    }

    // The push helpers below are monomorphic and never inlined: building
    // the nested `Stmt` inside the generic closure-taking combinators
    // miscompiled on this toolchain at opt-level >= 2 (the pushed Vecs were
    // freed with a corrupt capacity). Keeping construction out of the
    // generic frame sidesteps the bad codegen; the public API is unchanged.
    #[inline(never)]
    fn push_loop(&mut self, trip: TripCount, body: Vec<Stmt>) {
        self.stmts.push(Stmt::Loop { trip, body });
    }

    #[inline(never)]
    fn push_branch(&mut self, prob: f64, then: Vec<Stmt>, els: Vec<Stmt>) {
        self.stmts.push(Stmt::Branch {
            prob: prob.clamp(0.0, 1.0),
            then,
            els,
        });
    }

    /// Append a constant-trip loop built by `f`.
    pub fn loop_n(mut self, trip: u64, f: impl FnOnce(IrBuilder) -> IrBuilder) -> Self {
        let body = f(IrBuilder::new()).stmts;
        self.push_loop(TripCount::Const(trip), body);
        self
    }

    /// Append an estimated-trip loop built by `f`.
    pub fn loop_est(mut self, trip: f64, f: impl FnOnce(IrBuilder) -> IrBuilder) -> Self {
        let body = f(IrBuilder::new()).stmts;
        self.push_loop(TripCount::Estimated(trip), body);
        self
    }

    /// Append an estimated-trip loop, rejecting NaN/infinite/negative
    /// estimates at construction time.
    pub fn try_loop_est(
        mut self,
        trip: f64,
        f: impl FnOnce(IrBuilder) -> IrBuilder,
    ) -> Result<Self, IrError> {
        let trip = TripCount::try_estimated(trip)?;
        let body = f(IrBuilder::new()).stmts;
        self.push_loop(trip, body);
        Ok(self)
    }

    /// Append a branch, rejecting NaN/infinite/out-of-range
    /// probabilities at construction time.
    pub fn try_branch(
        mut self,
        prob: f64,
        then: impl FnOnce(IrBuilder) -> IrBuilder,
        els: impl FnOnce(IrBuilder) -> IrBuilder,
    ) -> Result<Self, IrError> {
        if !prob.is_finite() || !(0.0..=1.0).contains(&prob) {
            return Err(IrError::BadBranchProb(prob));
        }
        let then_stmts = then(IrBuilder::new()).stmts;
        let els_stmts = els(IrBuilder::new()).stmts;
        self.push_branch(prob, then_stmts, els_stmts);
        Ok(self)
    }

    /// Append a branch taken with probability `prob`.
    pub fn branch(
        mut self,
        prob: f64,
        then: impl FnOnce(IrBuilder) -> IrBuilder,
        els: impl FnOnce(IrBuilder) -> IrBuilder,
    ) -> Self {
        let then_stmts = then(IrBuilder::new()).stmts;
        let els_stmts = els(IrBuilder::new()).stmts;
        self.push_branch(prob, then_stmts, els_stmts);
        self
    }

    /// Finish into a named kernel.
    pub fn build(self, name: impl Into<String>) -> KernelIr {
        KernelIr::new(name, self.stmts)
    }

    /// Finish into a raw statement list.
    pub fn into_stmts(self) -> Vec<Stmt> {
        self.stmts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_feature_classes() {
        assert_eq!(Inst::GlobalLoad.feature_class(), FeatureClass::GlobalAccess);
        assert_eq!(Inst::GlobalStore.feature_class(), FeatureClass::GlobalAccess);
        assert_eq!(Inst::LocalLoad.feature_class(), FeatureClass::LocalAccess);
        assert_eq!(Inst::FloatMul.feature_class(), FeatureClass::FloatMul);
        assert!(Inst::GlobalStore.is_global_access());
        assert!(!Inst::LocalStore.is_global_access());
    }

    #[test]
    fn builder_builds_nested_structure() {
        let k = IrBuilder::new()
            .ops(Inst::IntAdd, 2)
            .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .branch(0.25, |b| b.ops(Inst::SpecialFn, 1), |b| b)
            .build("test");
        assert_eq!(k.name, "test");
        assert_eq!(k.body.len(), 3);
        assert_eq!(k.node_count(), 6);
    }

    #[test]
    fn trip_count_expected() {
        assert_eq!(TripCount::Const(16).expected(), 16.0);
        assert_eq!(TripCount::Estimated(3.5).expected(), 3.5);
    }

    #[test]
    fn trip_count_bounds_widen_estimates_only() {
        assert_eq!(TripCount::Const(16).bounds(0.5), (16.0, 16.0));
        assert_eq!(TripCount::Estimated(10.0).bounds(0.5), (5.0, 15.0));
        // Over-unity uncertainty floors the low end at zero.
        assert_eq!(TripCount::Estimated(10.0).bounds(2.0), (0.0, 30.0));
        // Degenerate estimates collapse to [0, 0], like extract's clamp.
        assert_eq!(TripCount::Estimated(-3.0).bounds(0.5), (0.0, 0.0));
        assert_eq!(TripCount::Estimated(f64::NAN).bounds(0.5), (0.0, 0.0));
        // Degenerate uncertainty is treated as exact.
        assert_eq!(TripCount::Estimated(4.0).bounds(f64::NAN), (4.0, 4.0));
        let (lo, hi) = TripCount::Estimated(4.0).bounds(-1.0);
        assert_eq!((lo, hi), (4.0, 4.0));
    }

    #[test]
    fn try_estimated_rejects_nan_inf_negative() {
        assert_eq!(
            TripCount::try_estimated(2.5),
            Ok(TripCount::Estimated(2.5))
        );
        assert!(matches!(
            TripCount::try_estimated(-1.0),
            Err(IrError::BadTripEstimate(_))
        ));
        assert!(matches!(
            TripCount::try_estimated(f64::NAN),
            Err(IrError::BadTripEstimate(_))
        ));
        assert!(matches!(
            TripCount::try_estimated(f64::INFINITY),
            Err(IrError::BadTripEstimate(_))
        ));
    }

    #[test]
    fn try_branch_rejects_bad_probability() {
        assert!(Stmt::try_branch(0.5, vec![], vec![]).is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    Stmt::try_branch(bad, vec![], vec![]),
                    Err(IrError::BadBranchProb(_))
                ),
                "{bad}"
            );
        }
        assert!(IrBuilder::new().try_branch(2.0, |b| b, |b| b).is_err());
        assert!(IrBuilder::new().try_branch(0.25, |b| b, |b| b).is_ok());
    }

    #[test]
    fn try_loop_est_rejects_bad_trip() {
        assert!(IrBuilder::new()
            .try_loop_est(f64::NAN, |b| b.ops(Inst::IntAdd, 1))
            .is_err());
        assert!(IrBuilder::new()
            .try_loop_est(-2.0, |b| b.ops(Inst::IntAdd, 1))
            .is_err());
        let k = IrBuilder::new()
            .try_loop_est(6.5, |b| b.ops(Inst::IntAdd, 1))
            .unwrap()
            .build("ok");
        assert_eq!(k.node_count(), 2);
    }

    #[test]
    fn try_memory_fractions_reject_out_of_range() {
        let k = KernelIr::new("k", vec![]);
        assert!(k.clone().try_with_coalescing(0.5).is_ok());
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    k.clone().try_with_coalescing(bad),
                    Err(IrError::BadCoalescing(_))
                ),
                "{bad}"
            );
        }
        assert!(k.clone().try_with_dram_fraction(1.0).is_ok());
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(
                matches!(
                    k.clone().try_with_dram_fraction(bad),
                    Err(IrError::BadDramFraction(_))
                ),
                "{bad}"
            );
        }
        // Error messages are self-describing.
        let e = k.try_with_dram_fraction(f64::NAN).unwrap_err();
        assert!(e.to_string().contains("dram fraction"));
    }

    #[test]
    fn coalescing_is_clamped() {
        let k = KernelIr::new("k", vec![]).with_coalescing(2.0);
        assert_eq!(k.coalescing, 1.0);
        let k = k.with_coalescing(-1.0);
        assert_eq!(k.coalescing, 0.0);
    }

    #[test]
    fn element_width_bytes() {
        assert_eq!(ElementWidth::Word4.bytes(), 4.0);
        assert_eq!(ElementWidth::Word8.bytes(), 8.0);
    }

    #[test]
    fn serde_roundtrip() {
        let k = IrBuilder::new()
            .loop_est(5.5, |b| b.ops(Inst::GlobalLoad, 2))
            .build("rt");
        let s = serde_json::to_string(&k).unwrap();
        let k2: KernelIr = serde_json::from_str(&s).unwrap();
        assert_eq!(k, k2);
    }
}
