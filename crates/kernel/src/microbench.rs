//! Micro-benchmark generator for model training.
//!
//! Section 6.1 of the paper: *"we first, instead of using existing
//! benchmarks, construct a set of micro-benchmarks and extract a set of
//! static features of each micro-benchmark to build the training set"*.
//!
//! The generator produces two families of kernels:
//!
//! * **pure** kernels that stress a single instruction class at several
//!   intensities (relative to a fixed stream of global accesses), spanning
//!   the compute-bound ↔ memory-bound spectrum for that class;
//! * **mixed** kernels with seeded-random blends of classes, filling the
//!   interior of the feature space so models interpolate rather than
//!   extrapolate.
//!
//! Generation is fully deterministic given the seed and configuration.

use crate::ir::{ElementWidth, Inst, IrBuilder, KernelIr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated micro-benchmark: an IR plus its launch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBenchmark {
    /// Kernel IR (name encodes the family and parameters).
    pub ir: KernelIr,
    /// Number of work-items to launch.
    pub work_items: u64,
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroBenchConfig {
    /// Intensities (ops per global access) used for the pure family.
    pub intensities: [u64; 4],
    /// Number of seeded-random mixed kernels.
    pub mixed_kernels: usize,
    /// Work-items per kernel launch.
    pub work_items: u64,
}

impl Default for MicroBenchConfig {
    fn default() -> Self {
        MicroBenchConfig {
            intensities: [1, 8, 32, 128],
            mixed_kernels: 24,
            work_items: 1 << 20,
        }
    }
}

/// The compute instruction classes stressed by the pure family.
const PURE_INSTS: [Inst; 8] = [
    Inst::IntAdd,
    Inst::IntMul,
    Inst::IntDiv,
    Inst::IntBitwise,
    Inst::FloatAdd,
    Inst::FloatMul,
    Inst::FloatDiv,
    Inst::SpecialFn,
];

fn pure_kernel(inst: Inst, intensity: u64, idx: usize) -> KernelIr {
    // One streamed load + store pair per item, with `intensity` compute ops
    // in between: classic bandwidth-vs-compute dial.
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .loop_n(intensity, |b| b.ops(inst, 1))
        .ops(Inst::GlobalStore, 1)
        .build(format!("mb_pure_{:?}_{}x_{}", inst, intensity, idx))
}

fn local_kernel(intensity: u64, idx: usize) -> KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .loop_n(intensity, |b| {
            b.ops(Inst::LocalStore, 1)
                .ops(Inst::LocalLoad, 1)
                .ops(Inst::FloatAdd, 1)
        })
        .ops(Inst::GlobalStore, 1)
        .build(format!("mb_local_{}x_{}", intensity, idx))
}

fn streaming_kernel(accesses: u64, idx: usize) -> KernelIr {
    IrBuilder::new()
        .ops(Inst::GlobalLoad, accesses)
        .ops(Inst::FloatAdd, accesses.saturating_sub(1).max(1))
        .ops(Inst::GlobalStore, 1)
        .build(format!("mb_stream_{}w_{}", accesses, idx))
}

fn branchy_kernel(prob_pct: u64, idx: usize) -> KernelIr {
    // Divergent control flow: a costly special-function path taken with a
    // known probability — exercises the extraction pass's branch weighting
    // in the training set itself.
    IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .branch(
            prob_pct as f64 / 100.0,
            |b| b.loop_n(16, |b| b.ops(Inst::SpecialFn, 1).ops(Inst::FloatMul, 1)),
            |b| b.loop_n(16, |b| b.ops(Inst::IntAdd, 1)),
        )
        .ops(Inst::GlobalStore, 1)
        .build(format!("mb_branchy_{}pct_{}", prob_pct, idx))
}

fn mixed_kernel(rng: &mut StdRng, idx: usize) -> KernelIr {
    let loads = rng.random_range(1..=6u64);
    let stores = rng.random_range(1..=3u64);
    let mut b = IrBuilder::new().ops(Inst::GlobalLoad, loads);
    let trip = rng.random_range(1..=64u64);
    let n_classes = rng.random_range(1..=4usize);
    // Pre-draw the class mix so the closure does not capture the RNG.
    let mut picks: Vec<(Inst, u64)> = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let inst = PURE_INSTS[rng.random_range(0..PURE_INSTS.len())];
        let count = rng.random_range(1..=8u64);
        picks.push((inst, count));
    }
    let use_local = rng.random_bool(0.3);
    b = b.loop_n(trip, move |mut lb| {
        for (inst, count) in picks {
            lb = lb.ops(inst, count);
        }
        if use_local {
            lb = lb.ops(Inst::LocalLoad, 1).ops(Inst::LocalStore, 1);
        }
        lb
    });
    let wide = rng.random_bool(0.5);
    let kernel = b.ops(Inst::GlobalStore, stores).build(format!("mb_mixed_{idx}"));
    if wide {
        kernel.with_element_width(ElementWidth::Word8)
    } else {
        kernel
    }
}

/// Generate the micro-benchmark suite deterministically from `seed`.
pub fn generate(seed: u64, config: &MicroBenchConfig) -> Vec<MicroBenchmark> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut idx = 0usize;
    for inst in PURE_INSTS {
        for &intensity in &config.intensities {
            out.push(MicroBenchmark {
                ir: pure_kernel(inst, intensity, idx),
                work_items: config.work_items,
            });
            idx += 1;
        }
    }
    for &intensity in &config.intensities {
        out.push(MicroBenchmark {
            ir: local_kernel(intensity, idx),
            work_items: config.work_items,
        });
        idx += 1;
    }
    for accesses in [2u64, 4, 8, 16] {
        out.push(MicroBenchmark {
            ir: streaming_kernel(accesses, idx),
            work_items: config.work_items,
        });
        idx += 1;
    }
    for prob in [10u64, 50, 90] {
        out.push(MicroBenchmark {
            ir: branchy_kernel(prob, idx),
            work_items: config.work_items,
        });
        idx += 1;
    }
    for i in 0..config.mixed_kernels {
        out.push(MicroBenchmark {
            ir: mixed_kernel(&mut rng, i),
            work_items: config.work_items,
        });
    }
    out
}

/// Generate with the default configuration.
pub fn generate_default(seed: u64) -> Vec<MicroBenchmark> {
    generate(seed, &MicroBenchConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use crate::features::FeatureClass;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_default(42);
        let b = generate_default(42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_in_mixed_family() {
        let a = generate_default(1);
        let b = generate_default(2);
        assert_ne!(a, b);
        // pure family is seed-independent
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn expected_count() {
        let cfg = MicroBenchConfig::default();
        let n = generate(7, &cfg).len();
        // 8 pure classes * 4 intensities + 4 local + 4 streaming
        // + 3 branchy + mixed
        assert_eq!(n, 8 * 4 + 4 + 4 + 3 + cfg.mixed_kernels);
    }

    #[test]
    fn names_are_unique() {
        let suite = generate_default(3);
        let names: HashSet<_> = suite.iter().map(|m| m.ir.name.as_str()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn pure_kernels_hit_intended_class() {
        let cfg = MicroBenchConfig::default();
        let suite = generate(0, &cfg);
        // First kernel: IntAdd at intensity 1.
        let info = extract(&suite[0].ir);
        assert_eq!(info.features[FeatureClass::IntAdd], 1.0);
        assert_eq!(info.features[FeatureClass::GlobalAccess], 2.0);
        // Fourth kernel: IntAdd at max intensity.
        let info = extract(&suite[3].ir);
        assert_eq!(
            info.features[FeatureClass::IntAdd],
            cfg.intensities[3] as f64
        );
    }

    #[test]
    fn all_features_covered_by_suite() {
        let suite = generate_default(11);
        let mut covered = [false; crate::features::NUM_FEATURES];
        for mb in &suite {
            let info = extract(&mb.ir);
            for (c, v) in info.features.iter() {
                if v > 0.0 {
                    covered[c as usize] = true;
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "some feature class never exercised: {covered:?}"
        );
    }

    #[test]
    fn features_are_valid_and_nonzero() {
        for mb in generate_default(5) {
            let info = extract(&mb.ir);
            assert!(info.features.is_valid(), "{}", mb.ir.name);
            assert!(info.features.total() > 0.0, "{}", mb.ir.name);
        }
    }
}
