//! A minimal, self-contained readiness API over `poll(2)`.
//!
//! The reactor needs exactly one thing from the OS that `std` does not
//! expose: "block until any of these sockets is readable/writable". No
//! `mio` (an external dependency) and no `libc` crate — the two FFI
//! items required are declared here directly against the platform C
//! library, which every Rust binary on Unix already links.
//!
//! The module also provides [`Waker`]/[`WakeReceiver`], the classic
//! self-pipe: a nonblocking socketpair whose read end sits in the poll
//! set so any thread (a worker finishing a response, a drain request)
//! can interrupt a blocked `poll` by writing one byte.

use std::io::{self, Read, Write};
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readable readiness (or a pending `accept`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry in the poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events (filled by [`wait`]).
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any readable-side event fired (data, error, or hangup —
    /// all of which a read will surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor became writable (or errored, which a
    /// write will surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Block until at least one descriptor in `fds` is ready, the timeout
/// elapses (`Ok(0)`), or a signal interrupts (retried internally).
/// `None` blocks indefinitely.
pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        None => -1,
        // Round up so a 100µs timeout polls for 1ms, not busily for 0.
        Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as std::ffi::c_int,
    };
    loop {
        // SAFETY: `PollFd` is `#[repr(C)]` and layout-identical to the
        // libc `struct pollfd`, so the kernel writes `revents` in place
        // through a valid, exclusively-borrowed buffer; `fds.len()` is
        // the true element count of that buffer, and `poll(2)` reads or
        // writes nothing beyond it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// The write end of a wake pipe. Cheap to clone behind an `Arc`; safe
/// to call from any thread, including the polling thread itself.
pub struct Waker {
    tx: UnixStream,
}

/// The read end of a wake pipe, registered in its owner's poll set.
pub struct WakeReceiver {
    rx: UnixStream,
}

/// Create a connected waker pair. Both ends are nonblocking: `wake` on
/// a full pipe is a no-op (a wakeup is already pending), and `drain`
/// stops at empty.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

impl Waker {
    /// Interrupt the receiver's `poll`. Never blocks.
    pub fn wake(&self) {
        // WouldBlock means the pipe already holds an unconsumed wakeup;
        // any other error means the receiver is gone — both are fine.
        let _ = (&self.tx).write(&[1]);
    }
}

impl WakeReceiver {
    /// The descriptor to register with [`POLLIN`].
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consume every pending wakeup byte.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let (waker, rx) = wake_pair().unwrap();
        let t = std::thread::spawn(move || {
            let mut fds = [PollFd::new(rx.fd(), POLLIN)];
            let n = wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert!(fds[0].readable());
            rx.drain();
            // Drained: a zero-timeout poll sees nothing.
            let mut fds = [PollFd::new(rx.fd(), POLLIN)];
            wait(&mut fds, Some(Duration::from_millis(1))).unwrap();
            assert!(!fds[0].readable());
        });
        std::thread::sleep(Duration::from_millis(10));
        waker.wake();
        waker.wake(); // coalesces, never blocks
        t.join().unwrap();
    }

    #[test]
    fn timeout_returns_zero_ready() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let n = wait(&mut fds, Some(Duration::from_millis(5))).unwrap();
        assert_eq!(n, 0);
    }
}
