//! A blocking client for the daemon.
//!
//! One [`Client`] wraps one TCP connection. Requests are synchronous:
//! `request` sends a frame and reads frames until the response carrying
//! the request's id arrives (the server answers each connection's
//! requests in the order it finishes them, which for control-plane
//! requests interleaved with slow data-plane work may not be send
//! order — matching on id makes the client immune to that).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::FrameBuffer;
use crate::protocol::{FrameError, Request, RequestFrame, Response, ResponseFrame};
use std::io::Write;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(std::io::Error),
    /// The server's bytes were not a valid response frame.
    Frame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// A blocking connection to a `synergy-serve` daemon.
///
/// Responses are reassembled through a persistent [`FrameBuffer`], so a
/// read timeout mid-frame loses no bytes — the next call resumes where
/// the stream left off instead of desynchronizing.
pub struct Client {
    stream: TcpStream,
    inbuf: FrameBuffer,
    next_id: u64,
}

impl Client {
    /// Connect to the daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            inbuf: FrameBuffer::new(),
            next_id: 0,
        })
    }

    /// Set (or clear) the socket read timeout for responses.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request with the server-default deadline and wait for
    /// its response.
    pub fn request(&mut self, req: Request) -> Result<Response, ClientError> {
        self.request_with_deadline(req, 0)
    }

    /// Send one request with an explicit queue-wait deadline
    /// (milliseconds; 0 = server default) and wait for its response.
    pub fn request_with_deadline(
        &mut self,
        req: Request,
        deadline_ms: u64,
    ) -> Result<Response, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = RequestFrame {
            id,
            deadline_ms,
            req,
        };
        self.stream.write_all(&frame.encode_framed())?;
        loop {
            if let Some(payload) = self.inbuf.next_frame()? {
                let resp = ResponseFrame::decode(payload)?;
                if resp.id == id {
                    return Ok(resp.resp);
                }
                // A response to an earlier request of ours that we
                // stopped waiting for (e.g. after a timeout): skip it.
                continue;
            }
            let n = self.inbuf.read_from(&mut self.stream)?;
            if n == 0 {
                return Err(if self.inbuf.pending() == 0 {
                    ClientError::Frame(FrameError::Closed)
                } else {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside response frame",
                    ))
                });
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Ping)
    }

    /// Fetch the server counters.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Stats)
    }

    /// Fetch the server's live metrics snapshot.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Metrics)
    }

    /// Ask the server to drain.
    pub fn drain(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Drain)
    }

    /// Compile a suite benchmark for a device and target set.
    pub fn compile(
        &mut self,
        bench: &str,
        device: &str,
        targets: &[&str],
    ) -> Result<Response, ClientError> {
        self.request(Request::Compile {
            bench: bench.to_string(),
            device: device.to_string(),
            targets: targets.iter().map(|t| t.to_string()).collect(),
        })
    }

    /// Predict the four metrics for a feature vector at one clock pair.
    pub fn predict(
        &mut self,
        device: &str,
        features: Vec<f64>,
        mem_mhz: u32,
        core_mhz: u32,
    ) -> Result<Response, ClientError> {
        self.request(Request::Predict {
            device: device.to_string(),
            features,
            mem_mhz,
            core_mhz,
        })
    }

    /// Fetch a benchmark's measured Pareto frontier.
    pub fn sweep(&mut self, bench: &str, device: &str) -> Result<Response, ClientError> {
        self.request(Request::Sweep {
            bench: bench.to_string(),
            device: device.to_string(),
        })
    }

    /// Send one request, sleeping and resending while the server answers
    /// `Busy`. Every other response (including `Expired` and `Error`)
    /// returns immediately; the final `Busy` is returned once the policy
    /// is exhausted. The request is cloned per attempt, so the caller
    /// keeps ownership semantics identical to [`request`](Self::request).
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        deadline_ms: u64,
        policy: &mut RetryPolicy,
    ) -> Result<Response, ClientError> {
        loop {
            let resp = self.request_with_deadline(req.clone(), deadline_ms)?;
            let Response::Busy { retry_after_ms } = resp else {
                return Ok(resp);
            };
            let Some(delay) = policy.next_delay(retry_after_ms) else {
                return Ok(Response::Busy { retry_after_ms });
            };
            std::thread::sleep(delay);
        }
    }
}

/// Backoff schedule for `Busy { retry_after_ms }` responses: exponential
/// growth from `base_backoff_ms`, capped at `max_backoff_ms`, never below
/// the server's hint, with deterministic ±25% jitter so a herd of
/// rejected clients doesn't re-arrive in lockstep.
///
/// The schedule is pure — [`next_delay`](Self::next_delay) only computes;
/// the caller sleeps — so it is testable without wall-clock time and
/// reusable by simulators that track virtual time (`serve_perf`,
/// `fleet_perf`).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts remaining; `next_delay` returns `None` once exhausted.
    retries_left: u32,
    /// Current backoff floor in milliseconds; doubles per retry.
    backoff_ms: u64,
    /// Upper bound on the backoff floor.
    max_backoff_ms: u64,
    /// xorshift64* state for jitter.
    rng: u64,
}

impl RetryPolicy {
    /// A schedule allowing `retries` resends, starting at
    /// `base_backoff_ms` and capping at `max_backoff_ms`. `seed` makes
    /// the jitter deterministic (any value works; 0 is remapped).
    pub fn new(retries: u32, base_backoff_ms: u64, max_backoff_ms: u64, seed: u64) -> RetryPolicy {
        RetryPolicy {
            retries_left: retries,
            backoff_ms: base_backoff_ms.max(1),
            max_backoff_ms: max_backoff_ms.max(1),
            rng: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// The CLI/forwarder default: 5 retries, 25ms..800ms backoff.
    pub fn standard(seed: u64) -> RetryPolicy {
        RetryPolicy::new(5, 25, 800, seed)
    }

    /// The delay before the next resend, or `None` when the budget is
    /// spent. `server_hint_ms` is the `retry_after_ms` the server sent;
    /// the returned delay is `max(hint, backoff)` jittered by ±25%.
    pub fn next_delay(&mut self, server_hint_ms: u64) -> Option<Duration> {
        if self.retries_left == 0 {
            return None;
        }
        self.retries_left -= 1;
        let floor = self.backoff_ms.max(server_hint_ms).max(1);
        self.backoff_ms = (self.backoff_ms * 2).min(self.max_backoff_ms);
        // xorshift64*: cheap, deterministic, good-enough spread.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let quarter = (floor / 4).max(1);
        // Jitter in [-quarter, +quarter]; saturates at zero → min 1ms.
        let jitter = (self.rng % (2 * quarter + 1)) as i64 - quarter as i64;
        let ms = (floor as i64 + jitter).max(1) as u64;
        Some(Duration::from_millis(ms))
    }

    /// Attempts still available.
    pub fn retries_left(&self) -> u32 {
        self.retries_left
    }
}

#[cfg(test)]
mod tests {
    use super::RetryPolicy;

    #[test]
    fn retry_schedule_is_deterministic_and_bounded() {
        let mut a = RetryPolicy::new(6, 20, 200, 42);
        let mut b = RetryPolicy::new(6, 20, 200, 42);
        let mut floor = 20u64;
        for _ in 0..6 {
            let da = a.next_delay(0).expect("budget left");
            let db = b.next_delay(0).expect("budget left");
            assert_eq!(da, db, "same seed, same schedule");
            let ms = da.as_millis() as u64;
            let quarter = (floor / 4).max(1);
            assert!(ms >= floor.saturating_sub(quarter).max(1));
            assert!(ms <= floor + quarter);
            floor = (floor * 2).min(200);
        }
        assert!(a.next_delay(0).is_none(), "budget exhausted");
        assert_eq!(a.retries_left(), 0);
    }

    #[test]
    fn retry_respects_server_hint() {
        let mut p = RetryPolicy::new(3, 10, 1000, 7);
        // Hint far above the backoff floor: delay is hint ± 25%.
        let d = p.next_delay(400).unwrap().as_millis() as u64;
        assert!((300..=500).contains(&d), "delay {d} not near hint 400");
    }

    #[test]
    fn zero_retries_never_sleeps() {
        let mut p = RetryPolicy::new(0, 10, 100, 1);
        assert!(p.next_delay(50).is_none());
    }
}
