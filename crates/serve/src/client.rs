//! A blocking client for the daemon.
//!
//! One [`Client`] wraps one TCP connection. Requests are synchronous:
//! `request` sends a frame and reads frames until the response carrying
//! the request's id arrives (the server answers each connection's
//! requests in the order it finishes them, which for control-plane
//! requests interleaved with slow data-plane work may not be send
//! order — matching on id makes the client immune to that).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::FrameBuffer;
use crate::protocol::{FrameError, Request, RequestFrame, Response, ResponseFrame};
use std::io::Write;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(std::io::Error),
    /// The server's bytes were not a valid response frame.
    Frame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// A blocking connection to a `synergy-serve` daemon.
///
/// Responses are reassembled through a persistent [`FrameBuffer`], so a
/// read timeout mid-frame loses no bytes — the next call resumes where
/// the stream left off instead of desynchronizing.
pub struct Client {
    stream: TcpStream,
    inbuf: FrameBuffer,
    next_id: u64,
}

impl Client {
    /// Connect to the daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            inbuf: FrameBuffer::new(),
            next_id: 0,
        })
    }

    /// Set (or clear) the socket read timeout for responses.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Send one request with the server-default deadline and wait for
    /// its response.
    pub fn request(&mut self, req: Request) -> Result<Response, ClientError> {
        self.request_with_deadline(req, 0)
    }

    /// Send one request with an explicit queue-wait deadline
    /// (milliseconds; 0 = server default) and wait for its response.
    pub fn request_with_deadline(
        &mut self,
        req: Request,
        deadline_ms: u64,
    ) -> Result<Response, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = RequestFrame {
            id,
            deadline_ms,
            req,
        };
        self.stream.write_all(&frame.encode_framed())?;
        loop {
            if let Some(payload) = self.inbuf.next_frame()? {
                let resp = ResponseFrame::decode(payload)?;
                if resp.id == id {
                    return Ok(resp.resp);
                }
                // A response to an earlier request of ours that we
                // stopped waiting for (e.g. after a timeout): skip it.
                continue;
            }
            let n = self.inbuf.read_from(&mut self.stream)?;
            if n == 0 {
                return Err(if self.inbuf.pending() == 0 {
                    ClientError::Frame(FrameError::Closed)
                } else {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside response frame",
                    ))
                });
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Ping)
    }

    /// Fetch the server counters.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Stats)
    }

    /// Fetch the server's live metrics snapshot.
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Metrics)
    }

    /// Ask the server to drain.
    pub fn drain(&mut self) -> Result<Response, ClientError> {
        self.request(Request::Drain)
    }

    /// Compile a suite benchmark for a device and target set.
    pub fn compile(
        &mut self,
        bench: &str,
        device: &str,
        targets: &[&str],
    ) -> Result<Response, ClientError> {
        self.request(Request::Compile {
            bench: bench.to_string(),
            device: device.to_string(),
            targets: targets.iter().map(|t| t.to_string()).collect(),
        })
    }

    /// Predict the four metrics for a feature vector at one clock pair.
    pub fn predict(
        &mut self,
        device: &str,
        features: Vec<f64>,
        mem_mhz: u32,
        core_mhz: u32,
    ) -> Result<Response, ClientError> {
        self.request(Request::Predict {
            device: device.to_string(),
            features,
            mem_mhz,
            core_mhz,
        })
    }

    /// Fetch a benchmark's measured Pareto frontier.
    pub fn sweep(&mut self, bench: &str, device: &str) -> Result<Response, ClientError> {
        self.request(Request::Sweep {
            bench: bench.to_string(),
            device: device.to_string(),
        })
    }
}
