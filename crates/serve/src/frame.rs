//! Incremental, allocation-recycling frame decoding.
//!
//! The thread-per-connection server could afford `read_exact` into a
//! fresh `Vec` per frame — blocking reads always return complete
//! frames eventually, and each connection owned its thread. An
//! event-driven reader gets bytes as the kernel delivers them: a frame
//! may arrive one byte at a time, the 4-byte length prefix may be split
//! across reads, and one read may carry several coalesced frames. The
//! [`FrameBuffer`] owns a single growable per-connection buffer, appends
//! whatever the socket yields, and hands out complete payloads as
//! borrowed slices — zero copies and zero per-frame allocations once the
//! buffer has grown to the connection's working size.
//!
//! Wire format and limits are identical to the blocking codec in
//! [`protocol`](crate::protocol): a `u32` big-endian payload length
//! (capped at [`MAX_FRAME_LEN`] *before* any allocation) followed by
//! exactly that many payload bytes.

use std::io::Read;

use crate::protocol::{FrameError, MAX_FRAME_LEN};

/// How much to request from the socket per `read` call. Large enough to
/// drain several typical frames per syscall, small enough that 10k idle
/// connections do not pin hundreds of megabytes.
const READ_CHUNK: usize = 16 * 1024;

/// A per-connection reassembly buffer for length-prefixed frames.
///
/// Feed it with [`read_from`](FrameBuffer::read_from) (socket) or
/// [`extend`](FrameBuffer::extend) (tests, in-memory transports), then
/// drain complete frames with [`next_frame`](FrameBuffer::next_frame).
/// Partial frames stay buffered across calls; consumed bytes are
/// reclaimed by compaction rather than reallocation.
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte; everything before it is
    /// dead space reclaimed on the next compaction.
    start: usize,
    max_frame: usize,
}

impl Default for FrameBuffer {
    fn default() -> FrameBuffer {
        FrameBuffer::new()
    }
}

impl FrameBuffer {
    /// An empty buffer enforcing the protocol's [`MAX_FRAME_LEN`].
    pub fn new() -> FrameBuffer {
        FrameBuffer::with_max_frame(MAX_FRAME_LEN)
    }

    /// An empty buffer with a custom frame-size cap (tests).
    pub fn with_max_frame(max_frame: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Bytes buffered but not yet consumed by [`next_frame`].
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Drop consumed bytes so the buffer never grows past the largest
    /// in-flight frame. Cheap when nothing is pending (pointer reset);
    /// a `memmove` of the partial tail otherwise.
    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
        } else {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
        }
        self.start = 0;
    }

    /// Append raw bytes (in-memory feeding path).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Issue one `read` into the buffer's tail. Returns the byte count
    /// (`Ok(0)` = clean EOF); `WouldBlock` and friends surface as
    /// errors for the caller's readiness loop to interpret.
    pub fn read_from(&mut self, r: &mut dyn Read) -> std::io::Result<usize> {
        self.compact();
        let end = self.buf.len();
        self.buf.resize(end + READ_CHUNK, 0);
        match r.read(&mut self.buf[end..]) {
            Ok(n) => {
                self.buf.truncate(end + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(end);
                Err(e)
            }
        }
    }

    /// Extract the next complete frame's payload, if the buffer holds
    /// one. The slice borrows the internal buffer — decode it before
    /// feeding more bytes. `Ok(None)` means "need more bytes";
    /// [`FrameError::TooLarge`] means the peer claimed a frame past the
    /// cap and the connection should be dropped (the stream can never
    /// resynchronize past an oversized prefix).
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.max_frame {
            return Err(FrameError::TooLarge { claimed: len });
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload_start = self.start + 4;
        self.start = payload_start + len;
        Ok(Some(&self.buf[payload_start..payload_start + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn one_byte_trickle_reassembles() {
        let wire = frame(b"hello");
        let mut fb = FrameBuffer::new();
        for (i, b) in wire.iter().enumerate() {
            fb.extend(&[*b]);
            let got = fb.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), b"hello");
            }
        }
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn header_split_mid_length_prefix() {
        let wire = frame(b"payload");
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..2]); // half the length prefix
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(&wire[2..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"payload");
    }

    #[test]
    fn coalesced_frames_in_one_read() {
        let mut wire = frame(b"first");
        wire.extend_from_slice(&frame(b""));
        wire.extend_from_slice(&frame(b"third"));
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"first");
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"");
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"third");
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_buffering() {
        let mut fb = FrameBuffer::with_max_frame(16);
        fb.extend(&17u32.to_be_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(FrameError::TooLarge { claimed: 17 })
        ));
    }

    #[test]
    fn compaction_reclaims_consumed_space() {
        let mut fb = FrameBuffer::new();
        for _ in 0..1000 {
            fb.extend(&frame(&[7u8; 100]));
            assert_eq!(fb.next_frame().unwrap().unwrap(), &[7u8; 100][..]);
        }
        // All frames consumed as they arrived: the buffer holds at most
        // one frame's worth of bytes, not a thousand.
        assert!(fb.buf.capacity() < 8 * 1024, "buffer grew without bound");
    }

    #[test]
    fn read_from_reports_eof_and_preserves_partial() {
        let wire = frame(b"abc");
        let mut cursor = std::io::Cursor::new(wire[..5].to_vec()); // header + 1 byte
        let mut fb = FrameBuffer::new();
        while fb.read_from(&mut cursor).unwrap() > 0 {}
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 5);
    }
}
