//! The readiness-driven data plane: sharded `poll(2)` reactors.
//!
//! Thread-per-connection puts every idle client on the scheduler's
//! books — 10k connections is 10k blocked threads, 10k stacks, and a
//! wakeup storm on every drain. Here each *shard* is one thread running
//! a readiness loop over its share of the connections:
//!
//! ```text
//!            ┌──────────────────────────────┐
//!  accept ──►│ shard 0: poll(listener,      │   admitted    ┌─────────┐
//!            │          wake, conns...)     ├──────────────►│ Bounded │
//!            ├──────────────────────────────┤     jobs      │ Queue   │
//!  inject ──►│ shard k: poll(wake, conns...)│◄──────────────┤ workers │
//!            └──────────────────────────────┘  wake+outbox  └─────────┘
//! ```
//!
//! * **Accept** is nonblocking on shard 0; new connections are assigned
//!   round-robin and *injected* into their shard through a mailbox plus
//!   a [`Waker`] nudge.
//! * **Reads** land in a per-connection [`FrameBuffer`]; complete frames
//!   are handed to the server's [`ConnEvents::on_frame`] (control plane
//!   answered inline, data plane admitted to the worker queue) without
//!   copying the payload out of the buffer.
//! * **Writes** go through a per-connection [`Outbox`]: workers append
//!   encoded frames from their own threads and wake the shard, which
//!   flushes as far as the socket allows and re-registers `POLLOUT`
//!   interest for the remainder — a slow client stalls only its own
//!   connection, never a worker or another client.
//! * **Shutdown** stops reading, flushes every outbox (bounded by
//!   [`FLUSH_DEADLINE`]), then drops the connections.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::frame::FrameBuffer;
use crate::poll::{self, PollFd, WakeReceiver, Waker, POLLIN, POLLOUT};
use crate::protocol::FrameError;

/// How long shutdown waits for slow clients to accept their final
/// responses before dropping the connection anyway.
const FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// Server-side hooks the reactor drives. Implemented by the server's
/// shared state; every method must be non-blocking — a stalled hook
/// stalls the whole shard.
pub trait ConnEvents: Send + Sync {
    /// A complete frame payload arrived on `conn`. Responses (now or
    /// later, from a worker) go through the handle's outbox.
    fn on_frame(&self, conn: &ConnHandle, payload: &[u8]);
    /// The peer sent a length prefix past the protocol cap. The
    /// connection closes after flush; this hook writes the goodbye.
    fn on_oversized(&self, conn: &ConnHandle, claimed: usize);
    /// A connection was accepted.
    fn on_accept(&self, conn: u64);
    /// A connection went away (EOF, error, or post-violation close).
    fn on_disconnect(&self, conn: u64);
    /// Whether the listener should stop accepting.
    fn draining(&self) -> bool;
    /// Whether shards should stop reading, flush, and exit.
    fn shutdown(&self) -> bool;
    /// Whether the server wants per-shard loop/flush timings. Checked
    /// once at shard start; `false` keeps clock reads off the loop.
    fn wants_timings(&self) -> bool;
    /// One readiness dispatch pass (post-`poll` work) took `dur`.
    fn on_loop_pass(&self, shard: usize, dur: Duration);
    /// One outbox flush attempt with pending bytes took `dur`.
    fn on_flush(&self, shard: usize, dur: Duration);
}

/// Queued response bytes for one connection, appended by workers,
/// drained by the connection's shard.
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
}

struct OutboxInner {
    bytes: VecDeque<u8>,
    /// Set when the connection is dropped: late responses for a dead
    /// peer are discarded, matching the old "write errors are the
    /// client's problem" semantics.
    closed: bool,
}

impl Outbox {
    fn new() -> Arc<Outbox> {
        Arc::new(Outbox {
            inner: Mutex::new(OutboxInner {
                bytes: VecDeque::new(),
                closed: false,
            }),
        })
    }

    fn has_pending(&self) -> bool {
        !self.inner.lock().bytes.is_empty()
    }

    fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        inner.bytes.clear();
    }
}

/// A worker-side handle to one connection: enough to queue a response
/// and wake the owning shard, nothing more. Cloneable and cheap.
#[derive(Clone)]
pub struct ConnHandle {
    /// The connection id (telemetry correlation).
    pub conn: u64,
    outbox: Arc<Outbox>,
    waker: Arc<Waker>,
}

impl ConnHandle {
    /// Queue one already-framed response and nudge the shard. A closed
    /// (disconnected) outbox discards silently.
    pub fn send(&self, frame_bytes: &[u8]) {
        {
            let mut inner = self.outbox.inner.lock();
            if inner.closed {
                return;
            }
            inner.bytes.extend(frame_bytes);
        }
        self.waker.wake();
    }
}

/// A running set of reactor shards.
pub struct Reactor {
    /// Shard threads; behind a mutex because the server reaches the
    /// reactor through a shared `OnceLock` yet `join` needs ownership.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Per-shard wakers: drain/shutdown signals must wake every shard.
    wakers: Vec<Arc<Waker>>,
}

impl Reactor {
    /// Nudge every shard (after flipping a drain/shutdown flag).
    pub fn wake_all(&self) {
        for w in &self.wakers {
            w.wake();
        }
    }

    /// Take ownership of the shard threads for joining. Subsequent
    /// calls return an empty vec, making teardown idempotent.
    pub fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut *self.handles.lock())
    }
}

type Mailbox = Arc<Mutex<Vec<(u64, TcpStream)>>>;

/// Spawn `shards` reactor threads; shard 0 owns the (nonblocking)
/// listener and deals accepted connections round-robin.
pub fn spawn_reactor(
    listener: TcpListener,
    events: Arc<dyn ConnEvents>,
    shards: usize,
) -> io::Result<Reactor> {
    let shards = shards.max(1);
    let mut wakers = Vec::with_capacity(shards);
    let mut receivers = Vec::with_capacity(shards);
    let mut mailboxes: Vec<Mailbox> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = poll::wake_pair()?;
        wakers.push(Arc::new(tx));
        receivers.push(rx);
        mailboxes.push(Arc::new(Mutex::new(Vec::new())));
    }
    let conn_ids = Arc::new(AtomicU64::new(0));
    let timed = events.wants_timings();
    let mut handles = Vec::with_capacity(shards);
    for (idx, wake_rx) in receivers.into_iter().enumerate() {
        let shard = Shard {
            idx,
            timed,
            listener: if idx == 0 { Some(listener.try_clone()?) } else { None },
            events: Arc::clone(&events),
            wake_rx,
            waker: Arc::clone(&wakers[idx]),
            mailbox: Arc::clone(&mailboxes[idx]),
            peers: mailboxes
                .iter()
                .cloned()
                .zip(wakers.iter().cloned())
                .collect(),
            conn_ids: Arc::clone(&conn_ids),
            conns: Vec::new(),
            free: Vec::new(),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("serve-reactor-{idx}"))
                .spawn(move || shard.run())?,
        );
    }
    Ok(Reactor {
        handles: Mutex::new(handles),
        wakers,
    })
}

/// Per-connection reactor state. The stream, the reassembly buffer and
/// the outbox live here; workers only ever see the [`ConnHandle`].
struct ConnState {
    id: u64,
    stream: TcpStream,
    inbuf: FrameBuffer,
    handle: ConnHandle,
    /// Reading stopped (protocol violation); close once flushed.
    closing: bool,
}

/// Why a connection left the shard.
enum Gone {
    No,
    Yes,
}

struct Shard {
    idx: usize,
    /// Metrics are live: time dispatch passes and outbox flushes.
    timed: bool,
    listener: Option<TcpListener>,
    events: Arc<dyn ConnEvents>,
    wake_rx: WakeReceiver,
    waker: Arc<Waker>,
    mailbox: Mailbox,
    /// Every shard's (mailbox, waker), indexed by shard — how shard 0
    /// hands an accepted connection to its owner.
    peers: Vec<(Mailbox, Arc<Waker>)>,
    conn_ids: Arc<AtomicU64>,
    conns: Vec<Option<ConnState>>,
    free: Vec<usize>,
}

impl Shard {
    fn run(mut self) {
        let mut fds: Vec<PollFd> = Vec::new();
        // fds index -> conns slot, for entries past the fixed prefix.
        let mut slots: Vec<usize> = Vec::new();
        let mut shutdown_since: Option<Instant> = None;

        loop {
            let shutting = self.events.shutdown();
            if shutting && shutdown_since.is_none() {
                shutdown_since = Some(Instant::now());
            }
            if self.events.draining() {
                // Stop accepting: dropping the listener refuses new
                // connections at the OS level.
                self.listener = None;
            }

            // Adopt connections shard 0 assigned to us.
            let injected: Vec<(u64, TcpStream)> =
                std::mem::take(&mut *self.mailbox.lock());
            for (id, stream) in injected {
                self.register(id, stream);
            }

            // Reap connections that are done: flushed and closing, or
            // flushed during shutdown. Flush-deadline overruns drop
            // whatever is left unsent.
            let flush_expired =
                shutdown_since.is_some_and(|t| t.elapsed() > FLUSH_DEADLINE);
            for slot in 0..self.conns.len() {
                let done = match &self.conns[slot] {
                    Some(c) => {
                        let pending = c.handle.outbox.has_pending();
                        (c.closing || shutting) && (!pending || flush_expired)
                    }
                    None => false,
                };
                if done {
                    self.drop_conn(slot);
                }
            }
            if shutting && self.conns.iter().all(Option::is_none) {
                return;
            }

            // Build the poll set: wake pipe, listener (shard 0, while
            // accepting), then every live connection — read interest
            // unless stopped, write interest while the outbox has bytes.
            fds.clear();
            slots.clear();
            fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
            let listener_at = self.listener.as_ref().map(|l| {
                fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                fds.len() - 1
            });
            let fixed = fds.len();
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(c) = conn else { continue };
                let mut interest = 0i16;
                if !shutting && !c.closing {
                    interest |= POLLIN;
                }
                if c.handle.outbox.has_pending() {
                    interest |= POLLOUT;
                }
                if interest != 0 {
                    fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
                    slots.push(slot);
                }
            }

            // Block until something happens. Every cross-thread state
            // change (drain, shutdown, worker response, injection)
            // wakes us through the pipe; only the shutdown flush phase
            // needs a timeout, to re-check its deadline.
            let timeout = shutting.then_some(Duration::from_millis(50));
            if poll::wait(&mut fds, timeout).is_err() {
                // EBADF etc. — a descriptor raced close; rebuild.
                continue;
            }

            // Time the dispatch pass (everything after the blocking
            // poll), never the wait itself.
            let pass_started = self.timed.then(Instant::now);

            if fds[0].readable() {
                self.wake_rx.drain();
            }
            if let Some(at) = listener_at {
                if fds[at].readable() {
                    self.accept_ready();
                }
            }
            for (i, fd) in fds[fixed..].iter().enumerate() {
                let slot = slots[i];
                if fd.readable() && !shutting {
                    if let Gone::Yes = self.read_ready(slot) {
                        continue;
                    }
                }
                if fd.writable() || fd.readable() {
                    // Flush opportunistically after reads too: control
                    // plane responses are queued during read handling.
                    self.flush_ready(slot);
                }
            }

            if let Some(t) = pass_started {
                self.events.on_loop_pass(self.idx, t.elapsed());
            }
        }
    }

    /// Accept until the backlog is empty, dealing connections to shards
    /// round-robin by id.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let id = self.conn_ids.fetch_add(1, Ordering::Relaxed) + 1;
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.events.on_accept(id);
                    let target = (id as usize) % self.peers.len();
                    if target == self.idx {
                        self.register(id, stream);
                    } else {
                        let (mailbox, waker) = &self.peers[target];
                        mailbox.lock().push((id, stream));
                        waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient per-connection accept failures
                // (ECONNABORTED and kin): skip, keep the listener.
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, id: u64, stream: TcpStream) {
        let state = ConnState {
            id,
            stream,
            inbuf: FrameBuffer::new(),
            handle: ConnHandle {
                conn: id,
                outbox: Outbox::new(),
                waker: Arc::clone(&self.waker),
            },
            closing: false,
        };
        match self.free.pop() {
            Some(slot) => self.conns[slot] = Some(state),
            None => self.conns.push(Some(state)),
        }
    }

    fn drop_conn(&mut self, slot: usize) {
        if let Some(c) = self.conns[slot].take() {
            c.handle.outbox.close();
            self.events.on_disconnect(c.id);
            self.free.push(slot);
        }
    }

    /// Drain the socket into the frame buffer and dispatch every
    /// complete frame. Returns whether the connection was dropped.
    fn read_ready(&mut self, slot: usize) -> Gone {
        let Some(c) = self.conns[slot].as_mut() else {
            return Gone::Yes;
        };
        loop {
            let n = {
                let ConnState { inbuf, stream, .. } = c;
                inbuf.read_from(stream)
            };
            match n {
                Ok(0) => {
                    // EOF: the peer is done sending. Responses already
                    // queued still flush below before the drop sweep.
                    c.closing = true;
                    break;
                }
                Ok(_) => loop {
                    match c.inbuf.next_frame() {
                        Ok(Some(payload)) => {
                            self.events.on_frame(&c.handle, payload);
                        }
                        Ok(None) => break,
                        Err(FrameError::TooLarge { claimed }) => {
                            self.events.on_oversized(&c.handle, claimed);
                            c.closing = true;
                            break;
                        }
                        // The incremental decoder only raises TooLarge.
                        Err(_) => {
                            c.closing = true;
                            break;
                        }
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(slot);
                    return Gone::Yes;
                }
            }
            if c.closing {
                break;
            }
        }
        Gone::No
    }

    /// Write as much queued output as the socket accepts; leftover
    /// bytes re-register `POLLOUT` interest on the next loop.
    fn flush_ready(&mut self, slot: usize) {
        let Some(c) = self.conns[slot].as_mut() else {
            return;
        };
        let flush_started = (self.timed && c.handle.outbox.has_pending()).then(Instant::now);
        let failed = {
            let mut inner = c.handle.outbox.inner.lock();
            let mut failed = false;
            while !inner.bytes.is_empty() {
                let (head, _) = inner.bytes.as_slices();
                match c.stream.write(head) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        inner.bytes.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            failed
        };
        if let Some(t) = flush_started {
            self.events.on_flush(self.idx, t.elapsed());
        }
        if failed {
            self.drop_conn(slot);
        }
    }
}
