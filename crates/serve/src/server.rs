//! The daemon: sharded event-loop reactors, a bounded work queue, and a
//! worker pool.
//!
//! ```text
//!             ┌───────────────┐   try_push    ┌───────────────┐
//!  TCP ─────► │ reactor shard │ ────────────► │ BoundedQueue  │
//!  (accept,   │  (poll loop,  │  full → Busy  │ (admission)   │
//!   frames)   │   1/shard)    │               └──────┬────────┘
//!             └───────▲───────┘                      │ pop
//!                     │ outbox + wake                ▼
//!                     │                       ┌───────────────┐
//!                     └────────────────────── │ worker / K    │
//!                          responses          │ (coalescing)  │
//!                                             └───────────────┘
//! ```
//!
//! **Data plane.** Each reactor shard is one thread multiplexing its
//! share of the connections over `poll(2)` ([`crate::reactor`]):
//! nonblocking accept, incremental frame reassembly in per-connection
//! buffers ([`crate::frame`]), and partial-write-aware response
//! flushing. Ten thousand mostly-idle connections cost ten thousand
//! descriptors in a handful of poll sets, not ten thousand threads.
//!
//! **Control plane vs data plane.** `Ping`, `Stats` and `Drain` are
//! answered directly on the reactor thread — they are O(1) and must
//! keep working when the queue is saturated (a `Drain` that could be
//! rejected `Busy` would make graceful shutdown impossible). `Compile`,
//! `Predict` and `Sweep` go through the bounded queue and are subject
//! to admission control and deadlines.
//!
//! **Admission control.** The queue has a hard capacity; a full queue
//! rejects the request immediately with `Busy { retry_after_ms }` rather
//! than queueing unbounded work. Each queued request also carries a
//! deadline — if it expires before a worker dequeues it, the worker
//! answers `Expired` without doing the work.
//!
//! **Coalescing.** `Compile` and `Sweep` requests are keyed by
//! `(kernel-IR hash, device, target set)`; `Predict` requests by
//! `(device, feature/clock bits)`. When a worker starts one, the key is
//! published in an in-flight table; duplicates that arrive while it runs
//! register as waiters and are answered from the leader's result
//! (`coalesced: true` on compiles), never recomputing. The micro-bench
//! training suite and the per-device model bundle are generated once and
//! shared as `Arc`s, so neither a coalesced group's leader nor any later
//! request re-derives them.
//!
//! **Drain.** `drain()` (or a `Drain` request) stops the acceptor,
//! makes reactors answer new data-plane requests with `Draining`, lets
//! workers finish everything already admitted, then `join()` flushes
//! the outboxes and tears the threads down. No accepted request is
//! dropped. Drain is fully event-driven: flipping the flag wakes every
//! shard through its wake pipe, and [`ServerHandle::wait_for_drain`]
//! parks callers on a condvar instead of a sleep-poll.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use synergy_analyze::LintRegistry;
use synergy_apps as apps;
use synergy_kernel::{generate_microbench, MicroBenchConfig, MicroBenchmark, NUM_FEATURES};
use synergy_metrics::{EnergyTarget, MetricPoint};
use synergy_ml::{MetricModels, ModelSelection};
use synergy_rt::{clock_grid, compile_application_traced, measured_sweep, ModelStore};
use synergy_sim::DeviceSpec;
use synergy_telemetry::{
    CostSnapshot, Counter, EventKind, Gauge, Histo, HistogramSample, HistogramValues, Labels,
    Metrics, MetricsSnapshot, Recorder, Sample, ServeOp,
};

use crate::json::{Json, JsonError};
use crate::protocol::{
    Decision, ErrorKind, KindPercentiles, Request, RequestFrame, Response, ResponseFrame,
    SweepPoint, WireDiagnostic,
};
use crate::reactor::{spawn_reactor, ConnEvents, ConnHandle, Reactor};

/// How model training is parameterized, mirroring the CLI's profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProfile {
    /// Sweep subsampling stride for training (larger = faster, coarser).
    pub stride: usize,
    /// Microbench generation seed.
    pub seed: u64,
}

impl ModelProfile {
    /// The paper-faithful profile (stride 8, seed 2023).
    pub fn paper() -> ModelProfile {
        ModelProfile {
            stride: 8,
            seed: 2023,
        }
    }

    /// A fast profile for CI and smoke tests (stride 32).
    pub fn small() -> ModelProfile {
        ModelProfile {
            stride: 32,
            seed: 2023,
        }
    }
}

/// Daemon configuration.
pub struct ServeConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads computing data-plane responses.
    pub workers: usize,
    /// Reactor shards multiplexing connections (1 is plenty up to a few
    /// thousand mostly-idle clients; shard for dense traffic).
    pub reactors: usize,
    /// Bounded queue capacity (admission-control knob).
    pub queue_capacity: usize,
    /// Queue-wait budget applied when a request's `deadline_ms` is 0.
    pub default_deadline_ms: u64,
    /// Back-off hint carried in `Busy` responses.
    pub retry_after_ms: u64,
    /// Training profile.
    pub profile: ModelProfile,
    /// Synthetic per-request service time added before data-plane
    /// computation. Zero in production; load tests raise it to make
    /// queueing and coalescing observable at realistic service rates.
    pub compute_delay: Duration,
    /// Model store override; `None` uses [`ModelStore::global()`].
    pub store: Option<Arc<ModelStore>>,
    /// Telemetry sink; disabled by default.
    pub recorder: Arc<Recorder>,
    /// Live metrics registry; disabled by default. Pass
    /// [`Metrics::enabled`] (or `enabled_with` for a custom $/kWh) to
    /// get per-request-kind latency histograms, queue/in-flight gauges,
    /// reactor shard timings and the running cost rollup, scrapeable via
    /// `Request::Metrics`.
    pub metrics: Metrics,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            reactors: 1,
            queue_capacity: 64,
            default_deadline_ms: 5_000,
            retry_after_ms: 25,
            profile: ModelProfile::paper(),
            compute_delay: Duration::ZERO,
            store: None,
            recorder: Arc::new(Recorder::disabled()),
            metrics: Metrics::disabled(),
        }
    }
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests admitted to the queue.
    pub enqueued: u64,
    /// Requests rejected at admission.
    pub busy_rejections: u64,
    /// Requests whose deadline expired in the queue.
    pub expired: u64,
    /// Responses written (all kinds).
    pub responses: u64,
    /// Requests that led an in-flight computation.
    pub coalesce_leaders: u64,
    /// Requests that joined an in-flight computation.
    pub coalesce_joins: u64,
    /// Compiles refused by deny-level lint findings.
    pub lint_denials: u64,
    /// Error responses written.
    pub errors: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// High-water queue depth.
    pub queue_depth_max: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    enqueued: AtomicU64,
    busy_rejections: AtomicU64,
    expired: AtomicU64,
    responses: AtomicU64,
    coalesce_leaders: AtomicU64,
    coalesce_joins: AtomicU64,
    lint_denials: AtomicU64,
    errors: AtomicU64,
    queue_depth_max: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn watermark_depth(&self, depth: u64) {
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Protocol ops in sorted order, one instrument bundle each.
const REQUEST_KINDS: [&str; 12] = [
    "compile",
    "drain",
    "fleet_join",
    "fleet_nodes",
    "fleet_preempt",
    "heartbeat",
    "metrics",
    "ping",
    "predict",
    "stats",
    "sweep",
    "sweep_part",
];

/// The per-request-kind latency instruments.
struct KindInstruments {
    kind: &'static str,
    /// Requests of this kind seen (counted at frame decode, before any
    /// admission decision).
    requests: Counter,
    /// End-to-end: frame decode (control plane) or admission (data
    /// plane) to response queued.
    e2e: Histo,
    /// Admission to dequeue (data plane only).
    queue_wait: Histo,
    /// Time inside `compute` (coalesce leaders and uncoalesced work).
    service: Histo,
}

/// Every cached metrics handle the serve stack touches. Built once at
/// spawn; when the registry is disabled every handle is a no-op and
/// `enabled` short-circuits the few paths that would otherwise read the
/// clock or a lock.
struct Instruments {
    metrics: Metrics,
    enabled: bool,
    kinds: Vec<KindInstruments>,
    queue_depth: Gauge,
    in_flight: Gauge,
    connections: Counter,
    enqueued: Counter,
    busy: Counter,
    expired: Counter,
    responses: Counter,
    errors: Counter,
    coalesce_leaders: Counter,
    coalesce_joins: Counter,
    lint_denials: Counter,
    /// Per-reactor-shard dispatch-pass timings, indexed by shard.
    reactor_loop: Vec<Histo>,
    /// Per-reactor-shard outbox flush timings, indexed by shard.
    outbox_flush: Vec<Histo>,
}

impl Instruments {
    fn new(metrics: Metrics, shards: usize) -> Instruments {
        let m = &metrics;
        let kinds = REQUEST_KINDS
            .iter()
            .map(|&kind| KindInstruments {
                kind,
                requests: m.counter("synergy_requests_total", &[("kind", kind)]),
                e2e: m.histogram("synergy_request_seconds", &[("kind", kind)]),
                queue_wait: m.histogram("synergy_queue_wait_seconds", &[("kind", kind)]),
                service: m.histogram("synergy_service_seconds", &[("kind", kind)]),
            })
            .collect();
        let shard_histo = |name: &str| {
            (0..shards)
                .map(|i| m.histogram(name, &[("shard", &i.to_string())]))
                .collect()
        };
        Instruments {
            enabled: m.is_enabled(),
            kinds,
            queue_depth: m.gauge("synergy_queue_depth", &[]),
            in_flight: m.gauge("synergy_inflight_requests", &[]),
            connections: m.counter("synergy_connections_total", &[]),
            enqueued: m.counter("synergy_enqueued_total", &[]),
            busy: m.counter("synergy_busy_rejections_total", &[]),
            expired: m.counter("synergy_expired_total", &[]),
            responses: m.counter("synergy_responses_total", &[]),
            errors: m.counter("synergy_errors_total", &[]),
            coalesce_leaders: m.counter("synergy_coalesce_total", &[("role", "leader")]),
            coalesce_joins: m.counter("synergy_coalesce_total", &[("role", "join")]),
            lint_denials: m.counter("synergy_lint_denials_total", &[]),
            reactor_loop: shard_histo("synergy_reactor_loop_seconds"),
            outbox_flush: shard_histo("synergy_outbox_flush_seconds"),
            metrics,
        }
    }

    /// The instrument bundle for a protocol op. Disabled registries skip
    /// the name lookup — every bundle is a no-op anyway.
    fn kind(&self, op: &str) -> &KindInstruments {
        if !self.enabled {
            return &self.kinds[0];
        }
        match self.kinds.binary_search_by(|k| k.kind.cmp(op)) {
            Ok(i) => &self.kinds[i],
            Err(_) => &self.kinds[0],
        }
    }
}

/// A multi-producer, multi-consumer FIFO with a hard capacity.
///
/// `try_push` never blocks (admission control wants an immediate
/// verdict); `pop` blocks on a condvar until an item arrives or the
/// queue is closed *and* empty, so closing drains rather than drops.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why `try_push` refused an item.
enum PushError {
    Full,
    Closed,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admit an item, or report why not. Returns the depth after the
    /// push on success.
    fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available; `None` once closed and empty.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Stop accepting; wake every blocked consumer so the remaining
    /// items drain and the pool can exit.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().items.len()
    }
}

/// One admitted data-plane request, waiting for a worker.
struct Job {
    frame: RequestFrame,
    admitted: Instant,
    deadline: Duration,
    writer: ConnHandle,
}

/// A duplicate request parked on an in-flight computation.
struct Waiter {
    id: u64,
    writer: ConnHandle,
    /// When this duplicate was admitted — its end-to-end latency runs
    /// from here, not from the leader's admission.
    admitted: Instant,
}

struct Shared {
    profile: ModelProfile,
    default_deadline: Duration,
    retry_after_ms: u64,
    compute_delay: Duration,
    store: Option<Arc<ModelStore>>,
    recorder: Arc<Recorder>,
    instruments: Instruments,
    queue: BoundedQueue<Job>,
    counters: Counters,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Condvar companion to `draining`, so `wait_for_drain` parks
    /// instead of sleep-polling.
    drain_flag: Mutex<bool>,
    drained: Condvar,
    /// Set once the reactor is up; drain/shutdown flips wake every
    /// shard through these.
    reactor: OnceLock<Reactor>,
    inflight: Mutex<HashMap<String, Vec<Waiter>>>,
    /// Micro-bench training suite, generated once per server (every
    /// data-plane request used to regenerate it from scratch).
    suite: OnceLock<Vec<MicroBenchmark>>,
    /// Per-device model bundles, shared by every request — including
    /// every leader of a coalesced group — after the first fetch.
    models: Mutex<HashMap<String, Arc<MetricModels>>>,
    /// Canonical device keys with a warm in-memory model bundle,
    /// advertised in heartbeat replies so a fleet coordinator can route
    /// by cache affinity.
    warm: Mutex<BTreeSet<String>>,
}

impl Shared {
    fn store(&self) -> &ModelStore {
        match &self.store {
            Some(s) => s,
            None => ModelStore::global(),
        }
    }

    fn suite(&self) -> &[MicroBenchmark] {
        self.suite
            .get_or_init(|| generate_microbench(42, &MicroBenchConfig::default()))
    }

    /// Record one batched inference call so batch sizes surface in the
    /// telemetry summary.
    fn predict_event(&self, source: &str, rows: u64, wall: Duration) {
        self.recorder.record_with(0, || EventKind::PredictBatch {
            source: source.to_string(),
            rows,
            wall_dur_ns: wall.as_nanos() as u64,
        });
    }

    /// `Some(now)` only when metrics are live: the disabled path never
    /// reads the clock, keeping the no-op overhead to a branch.
    fn metrics_clock(&self) -> Option<Instant> {
        self.instruments.enabled.then(Instant::now)
    }

    /// Close out a control-plane request's end-to-end histogram.
    fn finish_control(&self, op: &str, started: Option<Instant>) {
        if let Some(t) = started {
            self.instruments.kind(op).e2e.observe(t.elapsed());
        }
    }

    /// Per-kind p50/p95/p99 from the end-to-end histograms, for the
    /// `StatsReply` extension. Empty when metrics are disabled; kinds
    /// with no traffic are omitted.
    fn percentiles(&self) -> Vec<KindPercentiles> {
        if !self.instruments.enabled {
            return Vec::new();
        }
        let mut out = Vec::new();
        for ki in &self.instruments.kinds {
            let v = ki.e2e.values();
            if v.count == 0 {
                continue;
            }
            out.push(KindPercentiles {
                kind: ki.kind.to_string(),
                p50_ms: v.quantile_ms(0.50),
                p95_ms: v.quantile_ms(0.95),
                p99_ms: v.quantile_ms(0.99),
            });
        }
        out
    }

    /// Note that `device`'s model bundle is now warm in memory. Keys are
    /// canonicalized so `TitanX`, `titan_x` and `titanx` advertise one
    /// warm entry.
    fn mark_warm(&self, device: &str) {
        if let Some(key) = canonical_device_key(device) {
            self.warm.lock().insert(key);
        }
    }

    /// Sorted canonical device keys with warm model bundles.
    fn warm_keys(&self) -> Vec<String> {
        self.warm.lock().iter().cloned().collect()
    }

    fn heartbeat_response(&self) -> Response {
        Response::HeartbeatReply {
            draining: self.draining.load(Ordering::SeqCst),
            queue_depth: self.queue.len() as u64,
            warm_keys: self.warm_keys(),
        }
    }

    fn stats_response(&self) -> Response {
        let s = self.snapshot();
        Response::StatsReply {
            connections: s.connections,
            enqueued: s.enqueued,
            busy_rejections: s.busy_rejections,
            expired: s.expired,
            responses: s.responses,
            coalesce_leaders: s.coalesce_leaders,
            coalesce_joins: s.coalesce_joins,
            lint_denials: s.lint_denials,
            errors: s.errors,
            queue_depth: s.queue_depth,
            queue_depth_max: s.queue_depth_max,
            draining: s.draining,
            percentiles: self.percentiles(),
        }
    }

    /// A live [`MetricsSnapshot`] with the counters that live outside
    /// the registry — `ModelStore` cache stats and the recorder's
    /// overflow drop count — grafted in. Empty when metrics are
    /// disabled.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.instruments.metrics.snapshot();
        if self.instruments.enabled {
            let cs = self.store().stats();
            snap.push_counter(
                "synergy_model_store_hits_total",
                &[("tier", "memory")],
                cs.memory_hits as f64,
            );
            snap.push_counter(
                "synergy_model_store_hits_total",
                &[("tier", "disk")],
                cs.disk_hits as f64,
            );
            snap.push_counter("synergy_model_store_misses_total", &[], cs.misses as f64);
            snap.push_counter("synergy_model_store_persists_total", &[], cs.persists as f64);
            snap.push_counter(
                "synergy_model_store_evictions_total",
                &[],
                cs.evictions as f64,
            );
            snap.push_counter(
                "synergy_model_store_corrupt_files_total",
                &[],
                cs.corrupt_files as f64,
            );
            snap.push_counter(
                "synergy_recorder_dropped_events_total",
                &[],
                self.recorder.dropped() as f64,
            );
        }
        snap
    }

    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        StatsSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            enqueued: c.enqueued.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            responses: c.responses.load(Ordering::Relaxed),
            coalesce_leaders: c.coalesce_leaders.load(Ordering::Relaxed),
            coalesce_joins: c.coalesce_joins.load(Ordering::Relaxed),
            lint_denials: c.lint_denials.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_depth_max: c.queue_depth_max.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    fn serve_event(&self, op: ServeOp, conn: u64, req: u64, detail: &str) {
        self.recorder.record_with(0, || EventKind::Serve {
            op,
            conn,
            req,
            detail: detail.to_string(),
            queue_depth: self.queue.len() as u64,
        });
    }

    /// Serialize, frame and queue one response on the connection's
    /// outbox; accounting included. A vanished client discards the
    /// bytes — not the server's problem — after counting the attempt.
    fn respond(&self, writer: &ConnHandle, frame: ResponseFrame) {
        let op = frame.resp.op();
        if matches!(frame.resp, Response::Error { .. }) {
            self.counters.bump(&self.counters.errors);
            self.instruments.errors.inc();
        }
        writer.send(&frame.encode_framed());
        self.counters.bump(&self.counters.responses);
        self.instruments.responses.inc();
        self.serve_event(ServeOp::Respond, writer.conn, frame.id, op);
    }
}

/// The reactor-facing half of the server: frame dispatch, admission
/// control, and connection-lifecycle accounting. Runs on reactor
/// threads, so everything here is non-blocking.
impl ConnEvents for Shared {
    fn on_accept(&self, conn: u64) {
        self.counters.bump(&self.counters.connections);
        self.instruments.connections.inc();
        self.serve_event(ServeOp::Accept, conn, 0, "accept");
    }

    fn on_disconnect(&self, conn: u64) {
        self.serve_event(ServeOp::Disconnect, conn, 0, "disconnect");
    }

    fn on_oversized(&self, conn: &ConnHandle, claimed: usize) {
        // The stream is out of sync past an oversized prefix; report
        // and hang up (the reactor closes after flushing this).
        self.respond(
            conn,
            ResponseFrame {
                id: 0,
                resp: Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("frame of {claimed} bytes exceeds the protocol cap"),
                    diagnostics: Vec::new(),
                },
            },
        );
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn wants_timings(&self) -> bool {
        self.instruments.enabled
    }

    fn on_loop_pass(&self, shard: usize, dur: Duration) {
        if let Some(h) = self.instruments.reactor_loop.get(shard) {
            h.observe(dur);
        }
    }

    fn on_flush(&self, shard: usize, dur: Duration) {
        if let Some(h) = self.instruments.outbox_flush.get(shard) {
            h.observe(dur);
        }
    }

    fn on_frame(&self, conn: &ConnHandle, payload: &[u8]) {
        let frame = match RequestFrame::decode(payload) {
            Ok(f) => f,
            Err(e) => {
                // A complete but meaningless frame: answer and keep the
                // connection — framing is still in sync.
                self.respond(
                    conn,
                    ResponseFrame {
                        id: 0,
                        resp: Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: e.to_string(),
                            diagnostics: Vec::new(),
                        },
                    },
                );
                return;
            }
        };
        let id = frame.id;
        self.instruments.kind(frame.req.op()).requests.inc();
        match frame.req {
            // Control plane: answered here, immune to queue pressure.
            Request::Ping => {
                let started = self.metrics_clock();
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::Pong,
                    },
                );
                self.finish_control("ping", started);
            }
            Request::Stats => {
                let started = self.metrics_clock();
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: self.stats_response(),
                    },
                );
                self.finish_control("stats", started);
            }
            Request::Metrics => {
                let started = self.metrics_clock();
                let snap = self.metrics_snapshot();
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::MetricsReply {
                            snapshot: snapshot_to_wire(&snap),
                        },
                    },
                );
                self.finish_control("metrics", started);
            }
            Request::Drain => {
                let started = self.metrics_clock();
                begin_drain(self);
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::Draining {
                            pending: self.queue.len() as u64,
                        },
                    },
                );
                self.finish_control("drain", started);
            }
            // Membership probes are control plane: a saturated queue
            // must not make a healthy node look dead.
            Request::Heartbeat => {
                let started = self.metrics_clock();
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: self.heartbeat_response(),
                    },
                );
                self.finish_control("heartbeat", started);
            }
            // Fleet-roster ops only mean something to a coordinator.
            req @ (Request::FleetNodes
            | Request::FleetJoin { .. }
            | Request::FleetPreempt { .. }) => {
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: format!(
                                "`{}` is a fleet-coordinator op; this is a serve node",
                                req.op()
                            ),
                            diagnostics: Vec::new(),
                        },
                    },
                );
            }
            // Data plane: admission control, then the queue.
            req @ (Request::Compile { .. }
            | Request::Predict { .. }
            | Request::Sweep { .. }
            | Request::SweepPart { .. }) => {
                let op = req.op();
                if self.draining.load(Ordering::SeqCst) {
                    self.respond(
                        conn,
                        ResponseFrame {
                            id,
                            resp: Response::Draining {
                                pending: self.queue.len() as u64,
                            },
                        },
                    );
                    return;
                }
                let deadline = if frame.deadline_ms == 0 {
                    self.default_deadline
                } else {
                    Duration::from_millis(frame.deadline_ms)
                };
                let job = Job {
                    frame: RequestFrame {
                        id,
                        deadline_ms: frame.deadline_ms,
                        req,
                    },
                    admitted: Instant::now(),
                    deadline,
                    writer: conn.clone(),
                };
                match self.queue.try_push(job) {
                    Ok(depth) => {
                        self.counters.bump(&self.counters.enqueued);
                        self.counters.watermark_depth(depth as u64);
                        self.instruments.enqueued.inc();
                        self.instruments.in_flight.add(1);
                        self.instruments.queue_depth.set(depth as i64);
                        self.serve_event(ServeOp::Enqueue, conn.conn, id, op);
                    }
                    Err(PushError::Full) => {
                        self.counters.bump(&self.counters.busy_rejections);
                        self.instruments.busy.inc();
                        self.serve_event(ServeOp::Busy, conn.conn, id, op);
                        self.respond(
                            conn,
                            ResponseFrame {
                                id,
                                resp: Response::Busy {
                                    retry_after_ms: self.retry_after_ms,
                                },
                            },
                        );
                    }
                    Err(PushError::Closed) => {
                        self.respond(
                            conn,
                            ResponseFrame {
                                id,
                                resp: Response::Draining { pending: 0 },
                            },
                        );
                    }
                }
            }
        }
    }
}

/// A running daemon. Dropping the handle without calling [`join`]
/// detaches the threads; call [`drain`] + [`join`] for a clean stop.
///
/// [`join`]: ServerHandle::join
/// [`drain`]: ServerHandle::drain
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// A live metrics snapshot — the same view `Request::Metrics`
    /// returns, with model-store and recorder-drop counters grafted in.
    /// Empty (default) when metrics are disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics_snapshot()
    }

    /// Begin graceful shutdown: stop accepting connections, answer new
    /// data-plane requests with `Draining`, keep computing admitted
    /// work. Idempotent.
    pub fn drain(&self) {
        begin_drain(&self.shared);
    }

    /// Park until some client (or [`drain`](Self::drain)) starts a
    /// drain. Event-driven: a condvar wakeup, not a stats poll.
    pub fn wait_for_drain(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drained.wait(&mut flag);
        }
    }

    /// Drain (if not already draining), wait for every admitted request
    /// to be answered, flush every connection, tear down all threads,
    /// and return the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        self.drain();
        // No producer is left (reactors reject data-plane work while
        // draining): close the queue so workers drain it and exit. Every
        // response lands in a connection outbox before the worker exits.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Admitted work is answered; now release the reactors, which
        // flush the outboxes and drop the connections.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(reactor) = self.shared.reactor.get() {
            reactor.wake_all();
            for h in reactor.take_handles() {
                let _ = h.join();
            }
        }
        self.shared.snapshot()
    }

    /// Abrupt teardown — no drain, no goodbye frames. Queued jobs are
    /// discarded unanswered and connections are dropped mid-stream, the
    /// way a node dies when its spot instance is reclaimed. Fleet tests
    /// use this to simulate node death; production stops should use
    /// [`join`](Self::join).
    pub fn kill(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        // Close without letting workers answer what's queued: the close
        // wakes blocked pops, and the shutdown flag makes reactors drop
        // every connection without flushing.
        self.shared.queue.close();
        if let Some(reactor) = self.shared.reactor.get() {
            reactor.wake_all();
            for h in reactor.take_handles() {
                let _ = h.join();
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        shared.serve_event(ServeOp::Drain, 0, 0, "drain");
        *shared.drain_flag.lock() = true;
        shared.drained.notify_all();
        if let Some(reactor) = shared.reactor.get() {
            reactor.wake_all();
        }
    }
}

/// Bind and spawn the daemon threads.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        profile: config.profile,
        default_deadline: Duration::from_millis(config.default_deadline_ms.max(1)),
        retry_after_ms: config.retry_after_ms,
        compute_delay: config.compute_delay,
        store: config.store,
        recorder: config.recorder,
        instruments: Instruments::new(config.metrics, config.reactors.max(1)),
        queue: BoundedQueue::new(config.queue_capacity.max(1)),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        drain_flag: Mutex::new(false),
        drained: Condvar::new(),
        reactor: OnceLock::new(),
        inflight: Mutex::new(HashMap::new()),
        suite: OnceLock::new(),
        models: Mutex::new(HashMap::new()),
        warm: Mutex::new(BTreeSet::new()),
    });

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }

    let events: Arc<dyn ConnEvents> = Arc::clone(&shared) as Arc<dyn ConnEvents>;
    let reactor = spawn_reactor(listener, events, config.reactors.max(1))?;
    let _ = shared.reactor.set(reactor);

    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let inst = &shared.instruments;
        if inst.enabled {
            inst.queue_depth.set(shared.queue.len() as i64);
        }
        let waited = job.admitted.elapsed();
        let id = job.frame.id;
        let conn = job.writer.conn;
        let op = job.frame.req.op();
        let ki = inst.kind(op);
        ki.queue_wait.observe(waited);
        if waited > job.deadline {
            shared.counters.bump(&shared.counters.expired);
            inst.expired.inc();
            shared.serve_event(ServeOp::Expire, conn, id, op);
            // Instruments settle *before* the response is queued: once
            // the client can see the reply, a scrape must already count
            // this request (the e2e metrics test relies on that order).
            ki.e2e.observe(waited);
            inst.in_flight.add(-1);
            shared.respond(
                &job.writer,
                ResponseFrame {
                    id,
                    resp: Response::Expired {
                        waited_ms: waited.as_millis() as u64,
                    },
                },
            );
            continue;
        }
        shared.serve_event(ServeOp::Dispatch, conn, id, op);

        // Coalescable ops first check the in-flight table.
        if let Some(key) = coalesce_key(&job.frame.req) {
            let mut inflight = shared.inflight.lock();
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(Waiter {
                    id,
                    writer: job.writer.clone(),
                    admitted: job.admitted,
                });
                shared.counters.bump(&shared.counters.coalesce_joins);
                inst.coalesce_joins.inc();
                shared.serve_event(ServeOp::CoalesceJoin, conn, id, &key);
                continue;
            }
            inflight.insert(key.clone(), Vec::new());
            drop(inflight);
            shared.counters.bump(&shared.counters.coalesce_leaders);
            inst.coalesce_leaders.inc();

            let service_started = shared.metrics_clock();
            let resp = compute(shared, &job.frame.req);
            if let Some(t) = service_started {
                ki.service.observe(t.elapsed());
            }

            // Claim the waiters *before* responding so a duplicate
            // arriving now starts its own computation instead of
            // joining a finished one.
            let waiters = shared.inflight.lock().remove(&key).unwrap_or_default();
            // Observe before responding, so a scrape racing the reply
            // already counts the finished request.
            if inst.enabled {
                ki.e2e.observe(job.admitted.elapsed());
            }
            inst.in_flight.add(-1);
            shared.respond(
                &job.writer,
                ResponseFrame {
                    id,
                    resp: resp.clone(),
                },
            );
            for w in waiters {
                if inst.enabled {
                    ki.e2e.observe(w.admitted.elapsed());
                }
                inst.in_flight.add(-1);
                shared.respond(
                    &w.writer,
                    ResponseFrame {
                        id: w.id,
                        resp: mark_coalesced(resp.clone()),
                    },
                );
            }
        } else {
            let service_started = shared.metrics_clock();
            let resp = compute(shared, &job.frame.req);
            if let Some(t) = service_started {
                ki.service.observe(t.elapsed());
            }
            if inst.enabled {
                ki.e2e.observe(job.admitted.elapsed());
            }
            inst.in_flight.add(-1);
            shared.respond(&job.writer, ResponseFrame { id, resp });
        }
    }
}

/// The in-flight table key: kernel-IR content hash + device + targets for
/// compiles and sweeps; device + exact feature/clock bits for predicts
/// (bit-level equality is the right notion — two requests whose inputs
/// differ in any bit may legitimately predict differently).
fn coalesce_key(req: &Request) -> Option<String> {
    match req {
        Request::Compile {
            bench,
            device,
            targets,
        } => {
            let ir_hash = bench_ir_hash(bench);
            Some(format!(
                "compile/{ir_hash:016x}/{device}/{}",
                targets.join("+")
            ))
        }
        Request::Sweep { bench, device } => {
            let ir_hash = bench_ir_hash(bench);
            Some(format!("sweep/{ir_hash:016x}/{device}"))
        }
        Request::SweepPart {
            bench,
            device,
            offset,
            limit,
        } => {
            let ir_hash = bench_ir_hash(bench);
            Some(format!("sweep_part/{ir_hash:016x}/{device}/{offset}+{limit}"))
        }
        Request::Predict {
            device,
            features,
            mem_mhz,
            core_mhz,
        } => {
            let mut bytes = Vec::with_capacity(features.len() * 8 + 8);
            for f in features {
                bytes.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            bytes.extend_from_slice(&mem_mhz.to_le_bytes());
            bytes.extend_from_slice(&core_mhz.to_le_bytes());
            Some(format!("predict/{:016x}/{device}", fnv1a64(&bytes)))
        }
        _ => None,
    }
}

/// FNV-1a over the benchmark's kernel IR (its exhaustive `Debug`
/// rendering — stable within a process, which is all the in-flight
/// table needs). Unknown benchmarks hash their name; they fail
/// identically anyway.
fn bench_ir_hash(bench: &str) -> u64 {
    match apps::by_name(bench) {
        Some(b) => fnv1a64(format!("{:?}", b.ir).as_bytes()),
        None => fnv1a64(bench.as_bytes()),
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mark_coalesced(resp: Response) -> Response {
    match resp {
        Response::Compiled {
            device, decisions, ..
        } => Response::Compiled {
            device,
            coalesced: true,
            decisions,
        },
        other => other,
    }
}

/// Resolve a request's device key to its simulator spec. Exported so a
/// fleet coordinator can plan sweep chunking (grid size) with exactly
/// the node's device resolution.
pub fn device_spec(key: &str) -> Option<DeviceSpec> {
    match key.to_ascii_lowercase().as_str() {
        "v100" => Some(DeviceSpec::v100()),
        "a100" => Some(DeviceSpec::a100()),
        "mi100" => Some(DeviceSpec::mi100()),
        "titanx" | "titan_x" => Some(DeviceSpec::titan_x()),
        _ => None,
    }
}

/// The canonical lowercase form of a device key (`TitanX` / `titan_x`
/// → `titanx`), or `None` for unknown devices. Warm-cache advertisement
/// and affinity routing compare keys in this form.
pub fn canonical_device_key(key: &str) -> Option<String> {
    let k = key.to_ascii_lowercase();
    match k.as_str() {
        "v100" | "a100" | "mi100" | "titanx" => Some(k),
        "titan_x" => Some("titanx".to_string()),
        _ => None,
    }
}

fn bad_request(message: String) -> Response {
    Response::Error {
        kind: ErrorKind::BadRequest,
        message,
        diagnostics: Vec::new(),
    }
}

fn compute(shared: &Shared, req: &Request) -> Response {
    if !shared.compute_delay.is_zero() {
        std::thread::sleep(shared.compute_delay);
    }
    match req {
        Request::Compile {
            bench,
            device,
            targets,
        } => compute_compile(shared, bench, device, targets),
        Request::Predict {
            device,
            features,
            mem_mhz,
            core_mhz,
        } => compute_predict(shared, device, features, *mem_mhz, *core_mhz),
        Request::Sweep { bench, device } => compute_sweep(shared, bench, device),
        Request::SweepPart {
            bench,
            device,
            offset,
            limit,
        } => compute_sweep_part(shared, bench, device, *offset, *limit),
        // Control-plane ops never reach the queue.
        Request::Ping => Response::Pong,
        Request::Heartbeat => shared.heartbeat_response(),
        Request::Stats => shared.stats_response(),
        Request::Metrics => Response::MetricsReply {
            snapshot: snapshot_to_wire(&shared.metrics_snapshot()),
        },
        Request::Drain => Response::Draining { pending: 0 },
        req @ (Request::FleetNodes | Request::FleetJoin { .. } | Request::FleetPreempt { .. }) => {
            bad_request(format!("`{}` is a fleet-coordinator op", req.op()))
        }
    }
}

/// The device's model bundle: fetched (or trained) once, then handed out
/// as a shared `Arc`. Before this cache, every request — every leader of
/// every coalesced group — regenerated the micro-bench suite and re-keyed
/// the model store from scratch.
fn trained_models(shared: &Shared, spec: &DeviceSpec) -> Arc<MetricModels> {
    if let Some(models) = shared.models.lock().get(&spec.name) {
        return Arc::clone(models);
    }
    let models = shared.store().get_or_train_traced(
        spec,
        shared.suite(),
        ModelSelection::paper_best(),
        shared.profile.stride,
        shared.profile.seed,
        &shared.recorder,
    );
    Arc::clone(
        shared
            .models
            .lock()
            .entry(spec.name.clone())
            .or_insert(models),
    )
}

fn compute_compile(shared: &Shared, bench: &str, device: &str, targets: &[String]) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    let Some(b) = apps::by_name(bench) else {
        return bad_request(format!("unknown benchmark `{bench}`"));
    };
    let parsed: Vec<EnergyTarget> = if targets.is_empty() {
        EnergyTarget::PAPER_SET.to_vec()
    } else {
        let mut out = Vec::with_capacity(targets.len());
        for t in targets {
            match t.parse::<EnergyTarget>() {
                Ok(parsed) => out.push(parsed),
                Err(_) => return bad_request(format!("unknown energy target `{t}`")),
            }
        }
        out
    };
    let models = trained_models(shared, &spec);
    shared.mark_warm(device);
    let started = Instant::now();
    let compiled = compile_application_traced(
        &spec,
        &models,
        std::slice::from_ref(&b.ir),
        &parsed,
        &LintRegistry::with_builtin(),
        &shared.recorder,
    );
    // The compile predicted the full V/F grid for the kernel in one batch.
    shared.predict_event("compile", clock_grid(&spec).len() as u64, started.elapsed());
    match compiled {
        Ok(registry) => Response::Compiled {
            device: device.to_string(),
            coalesced: false,
            decisions: registry
                .decisions()
                .map(|(kernel, target, clocks)| Decision {
                    kernel: kernel.to_string(),
                    target: target.to_string(),
                    mem_mhz: clocks.mem_mhz,
                    core_mhz: clocks.core_mhz,
                })
                .collect(),
        },
        Err(e) => {
            shared.counters.bump(&shared.counters.lint_denials);
            shared.instruments.lint_denials.inc();
            Response::Error {
                kind: ErrorKind::LintDeny,
                message: format!(
                    "compile refused by {} deny-level finding(s)",
                    e.report.deny_count()
                ),
                diagnostics: e
                    .report
                    .diagnostics
                    .iter()
                    .map(|d| WireDiagnostic {
                        code: d.code.to_string(),
                        severity: d.severity.to_string(),
                        path: d.path.clone(),
                        message: d.message.clone(),
                    })
                    .collect(),
            }
        }
    }
}

fn compute_predict(
    shared: &Shared,
    device: &str,
    features: &[f64],
    mem_mhz: u32,
    core_mhz: u32,
) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    if features.len() != NUM_FEATURES {
        return bad_request(format!(
            "expected {NUM_FEATURES} features, got {}",
            features.len()
        ));
    }
    let models = trained_models(shared, &spec);
    shared.mark_warm(device);
    let started = Instant::now();
    // One-row batch through the batched engine — bitwise identical to
    // `models.predict` (the proptested contract).
    let p = models
        .predict_sweep_batch(features, &[(core_mhz as f64, mem_mhz as f64)])
        .remove(0);
    shared.predict_event("predict", 1, started.elapsed());
    Response::Predicted {
        time_s: p.time_s,
        energy_j: p.energy_j,
        edp: p.edp,
        ed2p: p.ed2p,
    }
}

fn compute_sweep(shared: &Shared, bench: &str, device: &str) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    let Some(b) = apps::by_name(bench) else {
        return bad_request(format!("unknown benchmark `{bench}`"));
    };
    let points = measured_sweep(&spec, &b.ir, b.work_items);
    // Measured (simulated-profiler) energy rolls into the per-device
    // cost counters the TCO rollup sums.
    let joules: f64 = points.iter().map(|p| p.energy_j).sum();
    shared.instruments.metrics.add_energy_joules(&spec.name, joules);
    let configurations = points.len() as u64;
    Response::SweepFront {
        device: device.to_string(),
        bench: bench.to_string(),
        configurations,
        pareto: pareto_front(points),
    }
}

/// One checkpointable slice of a sweep: the raw measured points for
/// clock-grid rows `[offset, offset + limit)`. Energy accounting is per
/// slice, so a chunked sweep's counters sum to a whole sweep's.
fn compute_sweep_part(
    shared: &Shared,
    bench: &str,
    device: &str,
    offset: u64,
    limit: u64,
) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    let Some(b) = apps::by_name(bench) else {
        return bad_request(format!("unknown benchmark `{bench}`"));
    };
    let configurations = clock_grid(&spec).len() as u64;
    if offset >= configurations {
        return bad_request(format!(
            "sweep offset {offset} is past the {configurations}-row clock grid"
        ));
    }
    let points = synergy_rt::measured_sweep_range(
        &spec,
        &b.ir,
        b.work_items,
        offset as usize,
        limit as usize,
    );
    let joules: f64 = points.iter().map(|p| p.energy_j).sum();
    shared.instruments.metrics.add_energy_joules(&spec.name, joules);
    Response::SweepPartial {
        device: device.to_string(),
        bench: bench.to_string(),
        offset,
        configurations,
        points: points
            .into_iter()
            .map(|p| SweepPoint {
                mem_mhz: p.clocks.mem_mhz,
                core_mhz: p.clocks.core_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
            })
            .collect(),
    }
}

/// The Pareto-efficient subset of (time, energy), ascending in time.
fn pareto_front(points: Vec<MetricPoint>) -> Vec<SweepPoint> {
    pareto_points(
        points
            .into_iter()
            .map(|p| SweepPoint {
                mem_mhz: p.clocks.mem_mhz,
                core_mhz: p.clocks.core_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
            })
            .collect(),
    )
}

/// The Pareto-efficient subset of wire sweep points, ascending in time —
/// exactly the frontier semantics of `Response::SweepFront`. Exported so
/// a fleet coordinator merging `SweepPartial` chunks computes a frontier
/// bitwise identical to the one a single node would have returned.
pub fn pareto_points(mut points: Vec<SweepPoint>) -> Vec<SweepPoint> {
    points.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.energy_j
                    .partial_cmp(&b.energy_j)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in points {
        if p.energy_j < best_energy {
            best_energy = p.energy_j;
            front.push(p);
        }
    }
    front
}

// ---------------------------------------------------------------------------
// MetricsSnapshot <-> wire JSON
// ---------------------------------------------------------------------------
//
// The snapshot crosses the wire (and lands in `metrics_final.json`)
// through the protocol's own hand-rolled codec, not serde: the serve
// stack must not depend on a JSON library for its runtime path. Tuples
// encode as two-element arrays, mirroring the serde layout, so the two
// renderings of a snapshot agree structurally.

fn wire_schema(field: &'static str, expected: &'static str) -> JsonError {
    JsonError::Schema {
        field: field.to_string(),
        expected,
    }
}

fn labels_to_wire(labels: &Labels) -> Json {
    Json::Arr(
        labels
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
            .collect(),
    )
}

fn labels_from_wire(v: Option<&Json>) -> Result<Labels, JsonError> {
    let Some(Json::Arr(items)) = v else {
        return Err(wire_schema("labels", "an array of [key, value] pairs"));
    };
    let mut out = Labels::with_capacity(items.len());
    for pair in items {
        let Json::Arr(kv) = pair else {
            return Err(wire_schema("labels", "an array of [key, value] pairs"));
        };
        match (kv.first().and_then(Json::as_str), kv.get(1).and_then(Json::as_str)) {
            (Some(k), Some(val)) if kv.len() == 2 => out.push((k.to_string(), val.to_string())),
            _ => return Err(wire_schema("labels", "an array of [key, value] pairs")),
        }
    }
    Ok(out)
}

fn sample_to_wire(s: &Sample) -> Json {
    Json::obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("labels", labels_to_wire(&s.labels)),
        ("value", Json::Num(s.value)),
    ])
}

fn sample_from_wire(v: &Json) -> Result<Sample, JsonError> {
    Ok(Sample {
        name: v.str_field("name")?.to_string(),
        labels: labels_from_wire(v.get("labels"))?,
        value: v.f64_field("value")?,
    })
}

fn histogram_to_wire(h: &HistogramSample) -> Json {
    Json::obj(vec![
        ("name", Json::Str(h.name.clone())),
        ("labels", labels_to_wire(&h.labels)),
        (
            "values",
            Json::obj(vec![
                ("count", Json::Int(h.values.count as i128)),
                ("sum_ns", Json::Int(h.values.sum_ns as i128)),
                (
                    "buckets",
                    Json::Arr(
                        h.values
                            .buckets
                            .iter()
                            .map(|&(idx, n)| {
                                Json::Arr(vec![Json::Int(idx as i128), Json::Int(n as i128)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

fn histogram_from_wire(v: &Json) -> Result<HistogramSample, JsonError> {
    let values = v
        .get("values")
        .ok_or_else(|| wire_schema("values", "an object"))?;
    let mut buckets = Vec::new();
    for pair in values.arr_field("buckets")? {
        let Json::Arr(kv) = pair else {
            return Err(wire_schema("buckets", "an array of [index, count] pairs"));
        };
        match (kv.first(), kv.get(1)) {
            (Some(Json::Int(idx)), Some(Json::Int(n)))
                if kv.len() == 2
                    && *idx >= 0
                    && *idx <= u32::MAX as i128
                    && *n >= 0
                    && *n <= u64::MAX as i128 =>
            {
                buckets.push((*idx as u32, *n as u64));
            }
            _ => return Err(wire_schema("buckets", "an array of [index, count] pairs")),
        }
    }
    Ok(HistogramSample {
        name: v.str_field("name")?.to_string(),
        labels: labels_from_wire(v.get("labels"))?,
        values: HistogramValues {
            count: values.u64_field("count")?,
            sum_ns: values.u64_field("sum_ns")?,
            buckets,
        },
    })
}

/// Encode a [`MetricsSnapshot`] as protocol JSON — the payload of
/// [`Response::MetricsReply`] and the body of
/// `experiments/metrics_final.json`.
pub fn snapshot_to_wire(snap: &MetricsSnapshot) -> Json {
    Json::obj(vec![
        ("uptime_s", Json::Num(snap.uptime_s)),
        (
            "counters",
            Json::Arr(snap.counters.iter().map(sample_to_wire).collect()),
        ),
        (
            "gauges",
            Json::Arr(snap.gauges.iter().map(sample_to_wire).collect()),
        ),
        (
            "histograms",
            Json::Arr(snap.histograms.iter().map(histogram_to_wire).collect()),
        ),
        (
            "cost",
            Json::obj(vec![
                ("node_seconds", Json::Num(snap.cost.node_seconds)),
                ("usd_per_kwh", Json::Num(snap.cost.usd_per_kwh)),
                ("total_joules", Json::Num(snap.cost.total_joules)),
                ("kwh", Json::Num(snap.cost.kwh)),
                ("tco_usd", Json::Num(snap.cost.tco_usd)),
                (
                    "joules_by_device",
                    Json::Arr(
                        snap.cost
                            .joules_by_device
                            .iter()
                            .map(|(d, j)| Json::Arr(vec![Json::Str(d.clone()), Json::Num(*j)]))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Decode a [`MetricsSnapshot`] from its protocol JSON form — the
/// client side of `Request::Metrics`.
pub fn snapshot_from_wire(v: &Json) -> Result<MetricsSnapshot, JsonError> {
    let cost = v.get("cost").ok_or_else(|| wire_schema("cost", "an object"))?;
    let mut joules_by_device = Vec::new();
    for pair in cost.arr_field("joules_by_device")? {
        let Json::Arr(kv) = pair else {
            return Err(wire_schema("joules_by_device", "an array of [device, joules]"));
        };
        match (kv.first().and_then(Json::as_str), kv.get(1).and_then(Json::as_f64)) {
            (Some(d), Some(j)) if kv.len() == 2 => joules_by_device.push((d.to_string(), j)),
            _ => return Err(wire_schema("joules_by_device", "an array of [device, joules]")),
        }
    }
    Ok(MetricsSnapshot {
        uptime_s: v.f64_field("uptime_s")?,
        counters: v
            .arr_field("counters")?
            .iter()
            .map(sample_from_wire)
            .collect::<Result<_, _>>()?,
        gauges: v
            .arr_field("gauges")?
            .iter()
            .map(sample_from_wire)
            .collect::<Result<_, _>>()?,
        histograms: v
            .arr_field("histograms")?
            .iter()
            .map(histogram_from_wire)
            .collect::<Result<_, _>>()?,
        cost: CostSnapshot {
            node_seconds: cost.f64_field("node_seconds")?,
            usd_per_kwh: cost.f64_field("usd_per_kwh")?,
            total_joules: cost.f64_field("total_joules")?,
            kwh: cost.f64_field("kwh")?,
            tco_usd: cost.f64_field("tco_usd")?,
            joules_by_device,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_admits_to_capacity_then_rejects() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(matches!(q.try_push(1), Ok(1)));
        assert!(matches!(q.try_push(2), Ok(2)));
        assert!(matches!(q.try_push(3), Err(PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert!(matches!(q.try_push(3), Ok(2)));
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn pareto_front_is_monotone() {
        use synergy_sim::ClockConfig;
        let mk = |t: f64, e: f64| MetricPoint::new(ClockConfig::new(877, 1000), t, e);
        let front = pareto_front(vec![
            mk(3.0, 1.0),
            mk(1.0, 5.0),
            mk(2.0, 2.0),
            mk(2.5, 4.0), // dominated by (2.0, 2.0)
            mk(1.0, 4.5),
        ]);
        let times: Vec<f64> = front.iter().map(|p| p.time_s).collect();
        let energies: Vec<f64> = front.iter().map(|p| p.energy_j).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(energies, vec![4.5, 2.0, 1.0]);
    }

    #[test]
    fn coalesce_keys_distinguish_device_and_targets() {
        let a = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        let b = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "a100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        let c = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_75".to_string()],
        })
        .unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(coalesce_key(&Request::Ping).is_none());
        assert!(coalesce_key(&Request::Stats).is_none());
        // Same logical request → same key.
        let a2 = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn predict_coalesce_keys_are_bit_exact() {
        let req = |features: Vec<f64>, core_mhz: u32| Request::Predict {
            device: "v100".to_string(),
            features,
            mem_mhz: 877,
            core_mhz,
        };
        let a = coalesce_key(&req(vec![1.0, 2.0, 3.0], 1312)).unwrap();
        // Same logical request → same key.
        assert_eq!(coalesce_key(&req(vec![1.0, 2.0, 3.0], 1312)).unwrap(), a);
        // Any differing clock or feature bit → different key (−0.0 and
        // 0.0 compare equal as floats but are distinct inputs).
        assert_ne!(coalesce_key(&req(vec![1.0, 2.0, 3.0], 1005)).unwrap(), a);
        let pos = coalesce_key(&req(vec![0.0], 1312)).unwrap();
        let neg = coalesce_key(&req(vec![-0.0], 1312)).unwrap();
        assert_ne!(pos, neg);
    }

    #[test]
    fn device_lookup_matches_cli_keys() {
        assert!(device_spec("v100").is_some());
        assert!(device_spec("TitanX").is_some());
        assert!(device_spec("h100").is_none());
    }

    #[test]
    fn metrics_snapshot_roundtrips_through_wire_json() {
        let m = Metrics::enabled();
        m.counter("synergy_requests_total", &[("kind", "ping")]).add(3);
        m.gauge("synergy_queue_depth", &[]).set(7);
        let h = m.histogram("synergy_request_seconds", &[("kind", "ping")]);
        h.observe_ns(5);
        h.observe_ns(123_456);
        m.add_energy_joules("v100", 42.5);
        let snap = m.snapshot();

        // Value round-trip.
        let wire = snapshot_to_wire(&snap);
        assert_eq!(snapshot_from_wire(&wire).unwrap(), snap);

        // Byte round-trip through the codec, as the client sees it.
        let parsed = Json::parse(&wire.encode()).unwrap();
        assert_eq!(snapshot_from_wire(&parsed).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_roundtrips_and_decode_rejects_garbage() {
        let snap = MetricsSnapshot::default();
        let wire = snapshot_to_wire(&snap);
        assert_eq!(snapshot_from_wire(&wire).unwrap(), snap);
        assert!(snapshot_from_wire(&Json::Null).is_err());
        assert!(snapshot_from_wire(&Json::obj(vec![("uptime_s", Json::Num(1.0))])).is_err());
    }

    #[test]
    fn instruments_disabled_lookup_is_inert() {
        let inst = Instruments::new(Metrics::disabled(), 2);
        assert!(!inst.enabled);
        inst.kind("predict").requests.inc();
        inst.kind("nonsense").e2e.observe_ns(5);
        assert_eq!(inst.metrics.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn instruments_kind_lookup_finds_every_op() {
        let inst = Instruments::new(Metrics::enabled(), 1);
        for op in REQUEST_KINDS {
            assert_eq!(inst.kind(op).kind, op);
        }
        // Unknown ops fall back to the first bundle instead of panicking.
        assert_eq!(inst.kind("bogus").kind, REQUEST_KINDS[0]);
    }
}
