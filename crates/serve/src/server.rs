//! The daemon: sharded event-loop reactors, a bounded work queue, and a
//! worker pool.
//!
//! ```text
//!             ┌───────────────┐   try_push    ┌───────────────┐
//!  TCP ─────► │ reactor shard │ ────────────► │ BoundedQueue  │
//!  (accept,   │  (poll loop,  │  full → Busy  │ (admission)   │
//!   frames)   │   1/shard)    │               └──────┬────────┘
//!             └───────▲───────┘                      │ pop
//!                     │ outbox + wake                ▼
//!                     │                       ┌───────────────┐
//!                     └────────────────────── │ worker / K    │
//!                          responses          │ (coalescing)  │
//!                                             └───────────────┘
//! ```
//!
//! **Data plane.** Each reactor shard is one thread multiplexing its
//! share of the connections over `poll(2)` ([`crate::reactor`]):
//! nonblocking accept, incremental frame reassembly in per-connection
//! buffers ([`crate::frame`]), and partial-write-aware response
//! flushing. Ten thousand mostly-idle connections cost ten thousand
//! descriptors in a handful of poll sets, not ten thousand threads.
//!
//! **Control plane vs data plane.** `Ping`, `Stats` and `Drain` are
//! answered directly on the reactor thread — they are O(1) and must
//! keep working when the queue is saturated (a `Drain` that could be
//! rejected `Busy` would make graceful shutdown impossible). `Compile`,
//! `Predict` and `Sweep` go through the bounded queue and are subject
//! to admission control and deadlines.
//!
//! **Admission control.** The queue has a hard capacity; a full queue
//! rejects the request immediately with `Busy { retry_after_ms }` rather
//! than queueing unbounded work. Each queued request also carries a
//! deadline — if it expires before a worker dequeues it, the worker
//! answers `Expired` without doing the work.
//!
//! **Coalescing.** `Compile` and `Sweep` requests are keyed by
//! `(kernel-IR hash, device, target set)`; `Predict` requests by
//! `(device, feature/clock bits)`. When a worker starts one, the key is
//! published in an in-flight table; duplicates that arrive while it runs
//! register as waiters and are answered from the leader's result
//! (`coalesced: true` on compiles), never recomputing. The micro-bench
//! training suite and the per-device model bundle are generated once and
//! shared as `Arc`s, so neither a coalesced group's leader nor any later
//! request re-derives them.
//!
//! **Drain.** `drain()` (or a `Drain` request) stops the acceptor,
//! makes reactors answer new data-plane requests with `Draining`, lets
//! workers finish everything already admitted, then `join()` flushes
//! the outboxes and tears the threads down. No accepted request is
//! dropped. Drain is fully event-driven: flipping the flag wakes every
//! shard through its wake pipe, and [`ServerHandle::wait_for_drain`]
//! parks callers on a condvar instead of a sleep-poll.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use synergy_analyze::LintRegistry;
use synergy_apps as apps;
use synergy_kernel::{generate_microbench, MicroBenchConfig, MicroBenchmark, NUM_FEATURES};
use synergy_metrics::{EnergyTarget, MetricPoint};
use synergy_ml::{MetricModels, ModelSelection};
use synergy_rt::{clock_grid, compile_application_traced, measured_sweep, ModelStore};
use synergy_sim::DeviceSpec;
use synergy_telemetry::{EventKind, Recorder, ServeOp};

use crate::protocol::{
    Decision, ErrorKind, Request, RequestFrame, Response, ResponseFrame, SweepPoint,
    WireDiagnostic,
};
use crate::reactor::{spawn_reactor, ConnEvents, ConnHandle, Reactor};

/// How model training is parameterized, mirroring the CLI's profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProfile {
    /// Sweep subsampling stride for training (larger = faster, coarser).
    pub stride: usize,
    /// Microbench generation seed.
    pub seed: u64,
}

impl ModelProfile {
    /// The paper-faithful profile (stride 8, seed 2023).
    pub fn paper() -> ModelProfile {
        ModelProfile {
            stride: 8,
            seed: 2023,
        }
    }

    /// A fast profile for CI and smoke tests (stride 32).
    pub fn small() -> ModelProfile {
        ModelProfile {
            stride: 32,
            seed: 2023,
        }
    }
}

/// Daemon configuration.
pub struct ServeConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads computing data-plane responses.
    pub workers: usize,
    /// Reactor shards multiplexing connections (1 is plenty up to a few
    /// thousand mostly-idle clients; shard for dense traffic).
    pub reactors: usize,
    /// Bounded queue capacity (admission-control knob).
    pub queue_capacity: usize,
    /// Queue-wait budget applied when a request's `deadline_ms` is 0.
    pub default_deadline_ms: u64,
    /// Back-off hint carried in `Busy` responses.
    pub retry_after_ms: u64,
    /// Training profile.
    pub profile: ModelProfile,
    /// Synthetic per-request service time added before data-plane
    /// computation. Zero in production; load tests raise it to make
    /// queueing and coalescing observable at realistic service rates.
    pub compute_delay: Duration,
    /// Model store override; `None` uses [`ModelStore::global()`].
    pub store: Option<Arc<ModelStore>>,
    /// Telemetry sink; disabled by default.
    pub recorder: Arc<Recorder>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            reactors: 1,
            queue_capacity: 64,
            default_deadline_ms: 5_000,
            retry_after_ms: 25,
            profile: ModelProfile::paper(),
            compute_delay: Duration::ZERO,
            store: None,
            recorder: Arc::new(Recorder::disabled()),
        }
    }
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Requests admitted to the queue.
    pub enqueued: u64,
    /// Requests rejected at admission.
    pub busy_rejections: u64,
    /// Requests whose deadline expired in the queue.
    pub expired: u64,
    /// Responses written (all kinds).
    pub responses: u64,
    /// Requests that led an in-flight computation.
    pub coalesce_leaders: u64,
    /// Requests that joined an in-flight computation.
    pub coalesce_joins: u64,
    /// Compiles refused by deny-level lint findings.
    pub lint_denials: u64,
    /// Error responses written.
    pub errors: u64,
    /// Current queue depth.
    pub queue_depth: u64,
    /// High-water queue depth.
    pub queue_depth_max: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

impl StatsSnapshot {
    fn to_response(self) -> Response {
        Response::StatsReply {
            connections: self.connections,
            enqueued: self.enqueued,
            busy_rejections: self.busy_rejections,
            expired: self.expired,
            responses: self.responses,
            coalesce_leaders: self.coalesce_leaders,
            coalesce_joins: self.coalesce_joins,
            lint_denials: self.lint_denials,
            errors: self.errors,
            queue_depth: self.queue_depth,
            queue_depth_max: self.queue_depth_max,
            draining: self.draining,
        }
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    enqueued: AtomicU64,
    busy_rejections: AtomicU64,
    expired: AtomicU64,
    responses: AtomicU64,
    coalesce_leaders: AtomicU64,
    coalesce_joins: AtomicU64,
    lint_denials: AtomicU64,
    errors: AtomicU64,
    queue_depth_max: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn watermark_depth(&self, depth: u64) {
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }
}

/// A multi-producer, multi-consumer FIFO with a hard capacity.
///
/// `try_push` never blocks (admission control wants an immediate
/// verdict); `pop` blocks on a condvar until an item arrives or the
/// queue is closed *and* empty, so closing drains rather than drops.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why `try_push` refused an item.
enum PushError {
    Full,
    Closed,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admit an item, or report why not. Returns the depth after the
    /// push on success.
    fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available; `None` once closed and empty.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            self.available.wait(&mut inner);
        }
    }

    /// Stop accepting; wake every blocked consumer so the remaining
    /// items drain and the pool can exit.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().items.len()
    }
}

/// One admitted data-plane request, waiting for a worker.
struct Job {
    frame: RequestFrame,
    admitted: Instant,
    deadline: Duration,
    writer: ConnHandle,
}

/// A duplicate request parked on an in-flight computation.
struct Waiter {
    id: u64,
    writer: ConnHandle,
}

struct Shared {
    profile: ModelProfile,
    default_deadline: Duration,
    retry_after_ms: u64,
    compute_delay: Duration,
    store: Option<Arc<ModelStore>>,
    recorder: Arc<Recorder>,
    queue: BoundedQueue<Job>,
    counters: Counters,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Condvar companion to `draining`, so `wait_for_drain` parks
    /// instead of sleep-polling.
    drain_flag: Mutex<bool>,
    drained: Condvar,
    /// Set once the reactor is up; drain/shutdown flips wake every
    /// shard through these.
    reactor: OnceLock<Reactor>,
    inflight: Mutex<HashMap<String, Vec<Waiter>>>,
    /// Micro-bench training suite, generated once per server (every
    /// data-plane request used to regenerate it from scratch).
    suite: OnceLock<Vec<MicroBenchmark>>,
    /// Per-device model bundles, shared by every request — including
    /// every leader of a coalesced group — after the first fetch.
    models: Mutex<HashMap<String, Arc<MetricModels>>>,
}

impl Shared {
    fn store(&self) -> &ModelStore {
        match &self.store {
            Some(s) => s,
            None => ModelStore::global(),
        }
    }

    fn suite(&self) -> &[MicroBenchmark] {
        self.suite
            .get_or_init(|| generate_microbench(42, &MicroBenchConfig::default()))
    }

    /// Record one batched inference call so batch sizes surface in the
    /// telemetry summary.
    fn predict_event(&self, source: &str, rows: u64, wall: Duration) {
        self.recorder.record_with(0, || EventKind::PredictBatch {
            source: source.to_string(),
            rows,
            wall_dur_ns: wall.as_nanos() as u64,
        });
    }

    fn snapshot(&self) -> StatsSnapshot {
        let c = &self.counters;
        StatsSnapshot {
            connections: c.connections.load(Ordering::Relaxed),
            enqueued: c.enqueued.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            responses: c.responses.load(Ordering::Relaxed),
            coalesce_leaders: c.coalesce_leaders.load(Ordering::Relaxed),
            coalesce_joins: c.coalesce_joins.load(Ordering::Relaxed),
            lint_denials: c.lint_denials.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_depth_max: c.queue_depth_max.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    fn serve_event(&self, op: ServeOp, conn: u64, req: u64, detail: &str) {
        self.recorder.record_with(0, || EventKind::Serve {
            op,
            conn,
            req,
            detail: detail.to_string(),
            queue_depth: self.queue.len() as u64,
        });
    }

    /// Serialize, frame and queue one response on the connection's
    /// outbox; accounting included. A vanished client discards the
    /// bytes — not the server's problem — after counting the attempt.
    fn respond(&self, writer: &ConnHandle, frame: ResponseFrame) {
        let op = frame.resp.op();
        if matches!(frame.resp, Response::Error { .. }) {
            self.counters.bump(&self.counters.errors);
        }
        writer.send(&frame.encode_framed());
        self.counters.bump(&self.counters.responses);
        self.serve_event(ServeOp::Respond, writer.conn, frame.id, op);
    }
}

/// The reactor-facing half of the server: frame dispatch, admission
/// control, and connection-lifecycle accounting. Runs on reactor
/// threads, so everything here is non-blocking.
impl ConnEvents for Shared {
    fn on_accept(&self, conn: u64) {
        self.counters.bump(&self.counters.connections);
        self.serve_event(ServeOp::Accept, conn, 0, "accept");
    }

    fn on_disconnect(&self, conn: u64) {
        self.serve_event(ServeOp::Disconnect, conn, 0, "disconnect");
    }

    fn on_oversized(&self, conn: &ConnHandle, claimed: usize) {
        // The stream is out of sync past an oversized prefix; report
        // and hang up (the reactor closes after flushing this).
        self.respond(
            conn,
            ResponseFrame {
                id: 0,
                resp: Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("frame of {claimed} bytes exceeds the protocol cap"),
                    diagnostics: Vec::new(),
                },
            },
        );
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn on_frame(&self, conn: &ConnHandle, payload: &[u8]) {
        let frame = match RequestFrame::decode(payload) {
            Ok(f) => f,
            Err(e) => {
                // A complete but meaningless frame: answer and keep the
                // connection — framing is still in sync.
                self.respond(
                    conn,
                    ResponseFrame {
                        id: 0,
                        resp: Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: e.to_string(),
                            diagnostics: Vec::new(),
                        },
                    },
                );
                return;
            }
        };
        let id = frame.id;
        match frame.req {
            // Control plane: answered here, immune to queue pressure.
            Request::Ping => {
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::Pong,
                    },
                );
            }
            Request::Stats => {
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: self.snapshot().to_response(),
                    },
                );
            }
            Request::Drain => {
                begin_drain(self);
                self.respond(
                    conn,
                    ResponseFrame {
                        id,
                        resp: Response::Draining {
                            pending: self.queue.len() as u64,
                        },
                    },
                );
            }
            // Data plane: admission control, then the queue.
            req @ (Request::Compile { .. } | Request::Predict { .. } | Request::Sweep { .. }) => {
                let op = req.op();
                if self.draining.load(Ordering::SeqCst) {
                    self.respond(
                        conn,
                        ResponseFrame {
                            id,
                            resp: Response::Draining {
                                pending: self.queue.len() as u64,
                            },
                        },
                    );
                    return;
                }
                let deadline = if frame.deadline_ms == 0 {
                    self.default_deadline
                } else {
                    Duration::from_millis(frame.deadline_ms)
                };
                let job = Job {
                    frame: RequestFrame {
                        id,
                        deadline_ms: frame.deadline_ms,
                        req,
                    },
                    admitted: Instant::now(),
                    deadline,
                    writer: conn.clone(),
                };
                match self.queue.try_push(job) {
                    Ok(depth) => {
                        self.counters.bump(&self.counters.enqueued);
                        self.counters.watermark_depth(depth as u64);
                        self.serve_event(ServeOp::Enqueue, conn.conn, id, op);
                    }
                    Err(PushError::Full) => {
                        self.counters.bump(&self.counters.busy_rejections);
                        self.serve_event(ServeOp::Busy, conn.conn, id, op);
                        self.respond(
                            conn,
                            ResponseFrame {
                                id,
                                resp: Response::Busy {
                                    retry_after_ms: self.retry_after_ms,
                                },
                            },
                        );
                    }
                    Err(PushError::Closed) => {
                        self.respond(
                            conn,
                            ResponseFrame {
                                id,
                                resp: Response::Draining { pending: 0 },
                            },
                        );
                    }
                }
            }
        }
    }
}

/// A running daemon. Dropping the handle without calling [`join`]
/// detaches the threads; call [`drain`] + [`join`] for a clean stop.
///
/// [`join`]: ServerHandle::join
/// [`drain`]: ServerHandle::drain
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Begin graceful shutdown: stop accepting connections, answer new
    /// data-plane requests with `Draining`, keep computing admitted
    /// work. Idempotent.
    pub fn drain(&self) {
        begin_drain(&self.shared);
    }

    /// Park until some client (or [`drain`](Self::drain)) starts a
    /// drain. Event-driven: a condvar wakeup, not a stats poll.
    pub fn wait_for_drain(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drained.wait(&mut flag);
        }
    }

    /// Drain (if not already draining), wait for every admitted request
    /// to be answered, flush every connection, tear down all threads,
    /// and return the final counters.
    pub fn join(mut self) -> StatsSnapshot {
        self.drain();
        // No producer is left (reactors reject data-plane work while
        // draining): close the queue so workers drain it and exit. Every
        // response lands in a connection outbox before the worker exits.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Admitted work is answered; now release the reactors, which
        // flush the outboxes and drop the connections.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(reactor) = self.shared.reactor.get() {
            reactor.wake_all();
            for h in reactor.take_handles() {
                let _ = h.join();
            }
        }
        self.shared.snapshot()
    }
}

fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        shared.serve_event(ServeOp::Drain, 0, 0, "drain");
        *shared.drain_flag.lock() = true;
        shared.drained.notify_all();
        if let Some(reactor) = shared.reactor.get() {
            reactor.wake_all();
        }
    }
}

/// Bind and spawn the daemon threads.
pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        profile: config.profile,
        default_deadline: Duration::from_millis(config.default_deadline_ms.max(1)),
        retry_after_ms: config.retry_after_ms,
        compute_delay: config.compute_delay,
        store: config.store,
        recorder: config.recorder,
        queue: BoundedQueue::new(config.queue_capacity.max(1)),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        drain_flag: Mutex::new(false),
        drained: Condvar::new(),
        reactor: OnceLock::new(),
        inflight: Mutex::new(HashMap::new()),
        suite: OnceLock::new(),
        models: Mutex::new(HashMap::new()),
    });

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }

    let events: Arc<dyn ConnEvents> = Arc::clone(&shared) as Arc<dyn ConnEvents>;
    let reactor = spawn_reactor(listener, events, config.reactors.max(1))?;
    let _ = shared.reactor.set(reactor);

    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let waited = job.admitted.elapsed();
        let id = job.frame.id;
        let conn = job.writer.conn;
        if waited > job.deadline {
            shared.counters.bump(&shared.counters.expired);
            shared.serve_event(ServeOp::Expire, conn, id, job.frame.req.op());
            shared.respond(
                &job.writer,
                ResponseFrame {
                    id,
                    resp: Response::Expired {
                        waited_ms: waited.as_millis() as u64,
                    },
                },
            );
            continue;
        }
        shared.serve_event(ServeOp::Dispatch, conn, id, job.frame.req.op());

        // Coalescable ops first check the in-flight table.
        if let Some(key) = coalesce_key(&job.frame.req) {
            let mut inflight = shared.inflight.lock();
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(Waiter {
                    id,
                    writer: job.writer.clone(),
                });
                shared.counters.bump(&shared.counters.coalesce_joins);
                shared.serve_event(ServeOp::CoalesceJoin, conn, id, &key);
                continue;
            }
            inflight.insert(key.clone(), Vec::new());
            drop(inflight);
            shared.counters.bump(&shared.counters.coalesce_leaders);

            let resp = compute(shared, &job.frame.req);

            // Claim the waiters *before* responding so a duplicate
            // arriving now starts its own computation instead of
            // joining a finished one.
            let waiters = shared.inflight.lock().remove(&key).unwrap_or_default();
            shared.respond(
                &job.writer,
                ResponseFrame {
                    id,
                    resp: resp.clone(),
                },
            );
            for w in waiters {
                shared.respond(
                    &w.writer,
                    ResponseFrame {
                        id: w.id,
                        resp: mark_coalesced(resp.clone()),
                    },
                );
            }
        } else {
            let resp = compute(shared, &job.frame.req);
            shared.respond(&job.writer, ResponseFrame { id, resp });
        }
    }
}

/// The in-flight table key: kernel-IR content hash + device + targets for
/// compiles and sweeps; device + exact feature/clock bits for predicts
/// (bit-level equality is the right notion — two requests whose inputs
/// differ in any bit may legitimately predict differently).
fn coalesce_key(req: &Request) -> Option<String> {
    match req {
        Request::Compile {
            bench,
            device,
            targets,
        } => {
            let ir_hash = bench_ir_hash(bench);
            Some(format!(
                "compile/{ir_hash:016x}/{device}/{}",
                targets.join("+")
            ))
        }
        Request::Sweep { bench, device } => {
            let ir_hash = bench_ir_hash(bench);
            Some(format!("sweep/{ir_hash:016x}/{device}"))
        }
        Request::Predict {
            device,
            features,
            mem_mhz,
            core_mhz,
        } => {
            let mut bytes = Vec::with_capacity(features.len() * 8 + 8);
            for f in features {
                bytes.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            bytes.extend_from_slice(&mem_mhz.to_le_bytes());
            bytes.extend_from_slice(&core_mhz.to_le_bytes());
            Some(format!("predict/{:016x}/{device}", fnv1a64(&bytes)))
        }
        _ => None,
    }
}

/// FNV-1a over the benchmark's kernel IR (its exhaustive `Debug`
/// rendering — stable within a process, which is all the in-flight
/// table needs). Unknown benchmarks hash their name; they fail
/// identically anyway.
fn bench_ir_hash(bench: &str) -> u64 {
    match apps::by_name(bench) {
        Some(b) => fnv1a64(format!("{:?}", b.ir).as_bytes()),
        None => fnv1a64(bench.as_bytes()),
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mark_coalesced(resp: Response) -> Response {
    match resp {
        Response::Compiled {
            device, decisions, ..
        } => Response::Compiled {
            device,
            coalesced: true,
            decisions,
        },
        other => other,
    }
}

fn device_spec(key: &str) -> Option<DeviceSpec> {
    match key.to_ascii_lowercase().as_str() {
        "v100" => Some(DeviceSpec::v100()),
        "a100" => Some(DeviceSpec::a100()),
        "mi100" => Some(DeviceSpec::mi100()),
        "titanx" | "titan_x" => Some(DeviceSpec::titan_x()),
        _ => None,
    }
}

fn bad_request(message: String) -> Response {
    Response::Error {
        kind: ErrorKind::BadRequest,
        message,
        diagnostics: Vec::new(),
    }
}

fn compute(shared: &Shared, req: &Request) -> Response {
    if !shared.compute_delay.is_zero() {
        std::thread::sleep(shared.compute_delay);
    }
    match req {
        Request::Compile {
            bench,
            device,
            targets,
        } => compute_compile(shared, bench, device, targets),
        Request::Predict {
            device,
            features,
            mem_mhz,
            core_mhz,
        } => compute_predict(shared, device, features, *mem_mhz, *core_mhz),
        Request::Sweep { bench, device } => compute_sweep(bench, device),
        // Control-plane ops never reach the queue.
        Request::Ping => Response::Pong,
        Request::Stats => shared.snapshot().to_response(),
        Request::Drain => Response::Draining { pending: 0 },
    }
}

/// The device's model bundle: fetched (or trained) once, then handed out
/// as a shared `Arc`. Before this cache, every request — every leader of
/// every coalesced group — regenerated the micro-bench suite and re-keyed
/// the model store from scratch.
fn trained_models(shared: &Shared, spec: &DeviceSpec) -> Arc<MetricModels> {
    if let Some(models) = shared.models.lock().get(&spec.name) {
        return Arc::clone(models);
    }
    let models = shared.store().get_or_train_traced(
        spec,
        shared.suite(),
        ModelSelection::paper_best(),
        shared.profile.stride,
        shared.profile.seed,
        &shared.recorder,
    );
    Arc::clone(
        shared
            .models
            .lock()
            .entry(spec.name.clone())
            .or_insert(models),
    )
}

fn compute_compile(shared: &Shared, bench: &str, device: &str, targets: &[String]) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    let Some(b) = apps::by_name(bench) else {
        return bad_request(format!("unknown benchmark `{bench}`"));
    };
    let parsed: Vec<EnergyTarget> = if targets.is_empty() {
        EnergyTarget::PAPER_SET.to_vec()
    } else {
        let mut out = Vec::with_capacity(targets.len());
        for t in targets {
            match t.parse::<EnergyTarget>() {
                Ok(parsed) => out.push(parsed),
                Err(_) => return bad_request(format!("unknown energy target `{t}`")),
            }
        }
        out
    };
    let models = trained_models(shared, &spec);
    let started = Instant::now();
    let compiled = compile_application_traced(
        &spec,
        &models,
        std::slice::from_ref(&b.ir),
        &parsed,
        &LintRegistry::with_builtin(),
        &shared.recorder,
    );
    // The compile predicted the full V/F grid for the kernel in one batch.
    shared.predict_event("compile", clock_grid(&spec).len() as u64, started.elapsed());
    match compiled {
        Ok(registry) => Response::Compiled {
            device: device.to_string(),
            coalesced: false,
            decisions: registry
                .decisions()
                .map(|(kernel, target, clocks)| Decision {
                    kernel: kernel.to_string(),
                    target: target.to_string(),
                    mem_mhz: clocks.mem_mhz,
                    core_mhz: clocks.core_mhz,
                })
                .collect(),
        },
        Err(e) => {
            shared.counters.bump(&shared.counters.lint_denials);
            Response::Error {
                kind: ErrorKind::LintDeny,
                message: format!(
                    "compile refused by {} deny-level finding(s)",
                    e.report.deny_count()
                ),
                diagnostics: e
                    .report
                    .diagnostics
                    .iter()
                    .map(|d| WireDiagnostic {
                        code: d.code.to_string(),
                        severity: d.severity.to_string(),
                        path: d.path.clone(),
                        message: d.message.clone(),
                    })
                    .collect(),
            }
        }
    }
}

fn compute_predict(
    shared: &Shared,
    device: &str,
    features: &[f64],
    mem_mhz: u32,
    core_mhz: u32,
) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    if features.len() != NUM_FEATURES {
        return bad_request(format!(
            "expected {NUM_FEATURES} features, got {}",
            features.len()
        ));
    }
    let models = trained_models(shared, &spec);
    let started = Instant::now();
    // One-row batch through the batched engine — bitwise identical to
    // `models.predict` (the proptested contract).
    let p = models
        .predict_sweep_batch(features, &[(core_mhz as f64, mem_mhz as f64)])
        .remove(0);
    shared.predict_event("predict", 1, started.elapsed());
    Response::Predicted {
        time_s: p.time_s,
        energy_j: p.energy_j,
        edp: p.edp,
        ed2p: p.ed2p,
    }
}

fn compute_sweep(bench: &str, device: &str) -> Response {
    let Some(spec) = device_spec(device) else {
        return bad_request(format!("unknown device `{device}`"));
    };
    let Some(b) = apps::by_name(bench) else {
        return bad_request(format!("unknown benchmark `{bench}`"));
    };
    let points = measured_sweep(&spec, &b.ir, b.work_items);
    let configurations = points.len() as u64;
    Response::SweepFront {
        device: device.to_string(),
        bench: bench.to_string(),
        configurations,
        pareto: pareto_front(points),
    }
}

/// The Pareto-efficient subset of (time, energy), ascending in time.
fn pareto_front(mut points: Vec<MetricPoint>) -> Vec<SweepPoint> {
    points.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.energy_j
                    .partial_cmp(&b.energy_j)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in points {
        if p.energy_j < best_energy {
            best_energy = p.energy_j;
            front.push(SweepPoint {
                mem_mhz: p.clocks.mem_mhz,
                core_mhz: p.clocks.core_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
            });
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_admits_to_capacity_then_rejects() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(matches!(q.try_push(1), Ok(1)));
        assert!(matches!(q.try_push(2), Ok(2)));
        assert!(matches!(q.try_push(3), Err(PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert!(matches!(q.try_push(3), Ok(2)));
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q: BoundedQueue<u32> = BoundedQueue::new(8);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert!(matches!(q.try_push(3), Err(PushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn pareto_front_is_monotone() {
        use synergy_sim::ClockConfig;
        let mk = |t: f64, e: f64| MetricPoint::new(ClockConfig::new(877, 1000), t, e);
        let front = pareto_front(vec![
            mk(3.0, 1.0),
            mk(1.0, 5.0),
            mk(2.0, 2.0),
            mk(2.5, 4.0), // dominated by (2.0, 2.0)
            mk(1.0, 4.5),
        ]);
        let times: Vec<f64> = front.iter().map(|p| p.time_s).collect();
        let energies: Vec<f64> = front.iter().map(|p| p.energy_j).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(energies, vec![4.5, 2.0, 1.0]);
    }

    #[test]
    fn coalesce_keys_distinguish_device_and_targets() {
        let a = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        let b = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "a100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        let c = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_75".to_string()],
        })
        .unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(coalesce_key(&Request::Ping).is_none());
        assert!(coalesce_key(&Request::Stats).is_none());
        // Same logical request → same key.
        let a2 = coalesce_key(&Request::Compile {
            bench: "vec_add".to_string(),
            device: "v100".to_string(),
            targets: vec!["ES_50".to_string()],
        })
        .unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn predict_coalesce_keys_are_bit_exact() {
        let req = |features: Vec<f64>, core_mhz: u32| Request::Predict {
            device: "v100".to_string(),
            features,
            mem_mhz: 877,
            core_mhz,
        };
        let a = coalesce_key(&req(vec![1.0, 2.0, 3.0], 1312)).unwrap();
        // Same logical request → same key.
        assert_eq!(coalesce_key(&req(vec![1.0, 2.0, 3.0], 1312)).unwrap(), a);
        // Any differing clock or feature bit → different key (−0.0 and
        // 0.0 compare equal as floats but are distinct inputs).
        assert_ne!(coalesce_key(&req(vec![1.0, 2.0, 3.0], 1005)).unwrap(), a);
        let pos = coalesce_key(&req(vec![0.0], 1312)).unwrap();
        let neg = coalesce_key(&req(vec![-0.0], 1312)).unwrap();
        assert_ne!(pos, neg);
    }

    #[test]
    fn device_lookup_matches_cli_keys() {
        assert!(device_spec("v100").is_some());
        assert!(device_spec("TitanX").is_some());
        assert!(device_spec("h100").is_none());
    }
}
