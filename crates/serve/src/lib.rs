//! # synergy-serve
//!
//! A concurrent energy-tuning daemon for the SYnergy stack. Long-lived
//! services (schedulers, CI bots, autotuners) connect over TCP and ask
//! the server to compile per-kernel frequency registries, predict
//! metrics for raw feature vectors, or fetch measured Pareto frontiers
//! — without paying model-training or process-startup cost per query,
//! and with the trained-model cache ([`synergy_rt::ModelStore`]) shared
//! across every client.
//!
//! The pieces:
//!
//! * [`protocol`] — length-prefixed JSON frames with typed
//!   [`Request`]/[`Response`] enums and a hardened self-contained codec
//!   ([`json`]).
//! * [`poll`] — a minimal self-contained readiness API over `poll(2)`
//!   plus a self-pipe waker; no external dependencies.
//! * [`frame`] — incremental frame reassembly ([`FrameBuffer`]): bytes
//!   in as the kernel delivers them, complete payloads out as borrowed
//!   slices.
//! * [`server`] — the daemon: a sharded event-loop reactor multiplexing
//!   every connection over a few threads (10k connections ≠ 10k
//!   threads), a bounded work queue with admission control (`Busy`) and
//!   per-request deadlines (`Expired`), a worker pool with in-flight
//!   request coalescing, and graceful event-driven drain.
//! * [`client`] — a blocking client used by the CLI, the tests and the
//!   `serve_perf` load generator.
//!
//! Quick start:
//!
//! ```
//! use synergy_serve::{spawn, Client, ModelProfile, Request, Response, ServeConfig};
//!
//! let handle = spawn(ServeConfig {
//!     profile: ModelProfile::small(),
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert!(matches!(client.ping().unwrap(), Response::Pong));
//! let resp = client.request(Request::Compile {
//!     bench: "vec_add".to_string(),
//!     device: "v100".to_string(),
//!     targets: vec!["ES_50".to_string()],
//! });
//! assert!(matches!(resp.unwrap(), Response::Compiled { .. }));
//! handle.drain();
//! let stats = handle.join();
//! assert_eq!(stats.responses, 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
pub mod frame;
pub use synergy_analyze::json;
pub mod poll;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use frame::FrameBuffer;
pub use synergy_analyze::json::{Json, JsonError};
pub use protocol::{
    frame_bytes, read_frame, write_frame, Decision, ErrorKind, FleetNodeStatus, FrameError,
    KindPercentiles, Request, RequestFrame, Response, ResponseFrame, SweepPoint, WireDiagnostic,
    MAX_FRAME_LEN,
};
pub use reactor::{spawn_reactor, ConnEvents, ConnHandle, Reactor};
pub use server::{
    canonical_device_key, device_spec, pareto_points, snapshot_from_wire, snapshot_to_wire, spawn,
    ModelProfile, ServeConfig, ServerHandle, StatsSnapshot,
};
