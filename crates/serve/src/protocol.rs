//! The `synergy-serve` wire protocol.
//!
//! Frames are a 4-byte big-endian length prefix followed by exactly that
//! many bytes of UTF-8 JSON (the [`json`](crate::json) codec, not
//! `serde_json`, so every field round-trips bit-identically). Requests
//! and responses are tagged objects:
//!
//! ```text
//! frame     := u32_be(len) payload[len]            len <= MAX_FRAME_LEN
//! request   := {"id": u64, "deadline_ms": u64, "op": <op>, ...fields}
//! response  := {"id": u64, "op": <op>, ...fields}
//! ```
//!
//! The `id` is chosen by the client and echoed verbatim; on one
//! connection responses may arrive out of order relative to *other*
//! clients' traffic but each connection's responses carry the ids it
//! sent, so a blocking client can simply match them up. A `deadline_ms`
//! of 0 means "use the server default".

use std::io::{Read, Write};

use crate::json::{Json, JsonError};

/// Hard ceiling on a frame's payload length. Anything longer is a
/// protocol violation — the peer is garbage or hostile — and the
/// connection is dropped without allocating the claimed size.
pub const MAX_FRAME_LEN: usize = 8 * 1024 * 1024;

/// Why reading or decoding a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// An I/O error (including read timeouts, which the server's reader
    /// loop inspects via [`std::io::Error::kind`]).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// The claimed payload length.
        claimed: usize,
    },
    /// The payload was not a well-formed protocol message.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::TooLarge { claimed } => {
                write!(f, "frame of {claimed} bytes exceeds cap of {MAX_FRAME_LEN}")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<JsonError> for FrameError {
    fn from(e: JsonError) -> Self {
        FrameError::Malformed(e.to_string())
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Prefix a payload with its 4-byte big-endian length, yielding one
/// contiguous buffer ready for a socket or a connection outbox.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read one length-prefixed frame.
///
/// Returns [`FrameError::Closed`] only for EOF exactly at a frame
/// boundary; EOF mid-frame is an I/O error (truncated peer).
pub fn read_frame(r: &mut dyn Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside length prefix",
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { claimed: len });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

/// A request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Compile one suite benchmark for a device: train (or fetch cached)
    /// models, lint, and fill a per-kernel frequency registry for the
    /// named energy targets (empty = the full paper set).
    Compile {
        /// Suite benchmark name (`vec_add`, `mat_mul`, ...).
        bench: String,
        /// Device key (`v100`, `a100`, `mi100`, `titanx`).
        device: String,
        /// Energy-target names (`ES_50`, `MIN_EDP`, ...); empty for all.
        targets: Vec<String>,
    },
    /// Predict the four metrics for a raw feature vector at one clock
    /// configuration.
    Predict {
        /// Device key.
        device: String,
        /// Static feature vector (must be `NUM_FEATURES` long).
        features: Vec<f64>,
        /// Memory clock, MHz.
        mem_mhz: u32,
        /// Core clock, MHz.
        core_mhz: u32,
    },
    /// Run the measured frequency sweep for a benchmark's first kernel
    /// and return the Pareto-efficient (time, energy) frontier.
    Sweep {
        /// Suite benchmark name.
        bench: String,
        /// Device key.
        device: String,
    },
    /// Run one contiguous slice of a benchmark's measured frequency
    /// sweep — the checkpointable unit of sweep work the fleet
    /// coordinator fans out. Returns the **raw** measured points for
    /// grid rows `[offset, offset + limit)` (not the Pareto frontier),
    /// so the coordinator can merge chunks and compute the frontier
    /// with exactly single-node semantics.
    SweepPart {
        /// Suite benchmark name.
        bench: String,
        /// Device key.
        device: String,
        /// First clock-grid row of the slice.
        offset: u64,
        /// Number of grid rows in the slice.
        limit: u64,
    },
    /// Fleet membership probe: liveness plus the node's warm model-cache
    /// keys and queue depth, answered on the control plane (never
    /// queued). Sent periodically by the fleet coordinator.
    Heartbeat,
    /// Fleet roster snapshot (coordinator only; serve nodes reply
    /// `Error{BadRequest}`).
    FleetNodes,
    /// Register (or re-register) a serve node with the coordinator.
    FleetJoin {
        /// The node's `host:port` address.
        addr: String,
    },
    /// Inject a preemption notice for a node: it stops receiving new
    /// work immediately and after the grace window its unfinished work
    /// is reassigned (coordinator only).
    FleetPreempt {
        /// The node's `host:port` address.
        addr: String,
        /// Grace window before unfinished work is reassigned.
        grace_ms: u64,
    },
    /// Server counters snapshot.
    Stats,
    /// Live metrics snapshot: every counter, gauge and latency histogram
    /// plus the fleet cost rollup, as a JSON document (see
    /// [`Response::MetricsReply`]).
    Metrics,
    /// Begin graceful shutdown: stop accepting, finish queued work.
    Drain,
}

impl Request {
    /// Stable lowercase tag, used on the wire and in telemetry.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Compile { .. } => "compile",
            Request::Predict { .. } => "predict",
            Request::Sweep { .. } => "sweep",
            Request::SweepPart { .. } => "sweep_part",
            Request::Heartbeat => "heartbeat",
            Request::FleetNodes => "fleet_nodes",
            Request::FleetJoin { .. } => "fleet_join",
            Request::FleetPreempt { .. } => "fleet_preempt",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Drain => "drain",
        }
    }
}

/// One node's status in a [`Response::FleetNodesReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetNodeStatus {
    /// The node's `host:port` address.
    pub addr: String,
    /// Membership state: `up`, `draining`, `preempting`, `preempted`
    /// or `dead`.
    pub state: String,
    /// Device keys the node advertises warm trained-model caches for.
    pub warm_keys: Vec<String>,
    /// Sub-requests queued or in flight on the node right now.
    pub in_flight: u64,
    /// Sub-requests forwarded to the node since it joined.
    pub forwarded: u64,
}

/// One registry entry in a [`Response::Compiled`].
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Kernel name.
    pub kernel: String,
    /// Energy-target name.
    pub target: String,
    /// Chosen memory clock, MHz.
    pub mem_mhz: u32,
    /// Chosen core clock, MHz.
    pub core_mhz: u32,
}

/// One frontier point in a [`Response::SweepFront`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Memory clock, MHz.
    pub mem_mhz: u32,
    /// Core clock, MHz.
    pub core_mhz: u32,
    /// Measured execution time, seconds.
    pub time_s: f64,
    /// Measured energy, joules.
    pub energy_j: f64,
}

/// Latency percentiles for one request kind, carried in a
/// [`Response::StatsReply`]. Sourced from the server's log-bucketed
/// end-to-end histograms, so each value is within the histogram's
/// bounded relative error (6.25%) of the exact order statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct KindPercentiles {
    /// Request kind (`compile`, `predict`, `sweep`, `ping`).
    pub kind: String,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
}

/// One `synergy-analyze` diagnostic carried in an error response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDiagnostic {
    /// Stable code (`IR003`, `SW001`, ...).
    pub code: String,
    /// Severity label (`deny`, `warn`, `note`).
    pub severity: String,
    /// Where in the artifact.
    pub path: String,
    /// Human-readable message.
    pub message: String,
}

/// Machine-readable error class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request was syntactically valid but semantically wrong
    /// (unknown benchmark/device/target, wrong feature count, ...).
    BadRequest,
    /// `synergy-analyze` raised deny-level findings; the compile was
    /// refused. The diagnostics ride along.
    LintDeny,
    /// The server failed internally.
    Internal,
}

impl ErrorKind {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::LintDeny => "lint_deny",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_name(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "bad_request" => ErrorKind::BadRequest,
            "lint_deny" => ErrorKind::LintDeny,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Compile`].
    Compiled {
        /// Device key the registry was built for.
        device: String,
        /// Whether this response was produced by joining an identical
        /// in-flight computation instead of computing independently.
        coalesced: bool,
        /// The per-kernel, per-target clock decisions.
        decisions: Vec<Decision>,
    },
    /// Reply to [`Request::Predict`].
    Predicted {
        /// Predicted time, seconds.
        time_s: f64,
        /// Predicted energy, joules.
        energy_j: f64,
        /// Predicted energy-delay product.
        edp: f64,
        /// Predicted energy-delay-squared product.
        ed2p: f64,
    },
    /// Reply to [`Request::Sweep`].
    SweepFront {
        /// Device key.
        device: String,
        /// Benchmark name.
        bench: String,
        /// Total clock configurations swept.
        configurations: u64,
        /// Pareto-efficient (time, energy) frontier, ascending time.
        pareto: Vec<SweepPoint>,
    },
    /// Reply to [`Request::SweepPart`]: the raw measured points for one
    /// slice of the clock grid, in grid order.
    SweepPartial {
        /// Device key.
        device: String,
        /// Benchmark name.
        bench: String,
        /// First clock-grid row of the slice.
        offset: u64,
        /// Total rows in the device's full clock grid (so the caller
        /// can plan the remaining slices).
        configurations: u64,
        /// Measured (time, energy) per configuration in the slice.
        points: Vec<SweepPoint>,
    },
    /// Reply to [`Request::Heartbeat`].
    HeartbeatReply {
        /// Whether the node is draining (finish what it has, route
        /// nothing new to it).
        draining: bool,
        /// Current data-plane queue depth on the node.
        queue_depth: u64,
        /// Device keys with warm trained-model caches, sorted.
        warm_keys: Vec<String>,
    },
    /// Reply to [`Request::FleetNodes`] / [`Request::FleetJoin`] /
    /// [`Request::FleetPreempt`]: the roster after the operation.
    FleetNodesReply {
        /// Per-node status, in registration order.
        nodes: Vec<FleetNodeStatus>,
    },
    /// Reply to [`Request::Stats`].
    StatsReply {
        /// Connections accepted since start.
        connections: u64,
        /// Requests admitted to the queue.
        enqueued: u64,
        /// Requests rejected at admission.
        busy_rejections: u64,
        /// Requests whose deadline expired in the queue.
        expired: u64,
        /// Responses written (all kinds).
        responses: u64,
        /// Requests that led an in-flight computation.
        coalesce_leaders: u64,
        /// Requests that joined an in-flight computation.
        coalesce_joins: u64,
        /// Compiles refused by deny-level lint findings.
        lint_denials: u64,
        /// Error responses written.
        errors: u64,
        /// Current queue depth.
        queue_depth: u64,
        /// High-water queue depth.
        queue_depth_max: u64,
        /// Whether the server is draining.
        draining: bool,
        /// Per-request-kind end-to-end latency percentiles, sorted by
        /// kind. Empty when the server runs with metrics disabled (and
        /// when decoding frames from servers predating the field).
        percentiles: Vec<KindPercentiles>,
    },
    /// Admission control: the queue is full, try again later.
    Busy {
        /// Suggested client back-off, milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining and rejected new work.
    Draining {
        /// Requests still in flight at rejection time.
        pending: u64,
    },
    /// Reply to [`Request::Metrics`]: the full metrics snapshot as a
    /// JSON document (counters, gauges, histograms, cost rollup) in the
    /// shape produced by `synergy_telemetry::MetricsSnapshot`.
    MetricsReply {
        /// The snapshot document.
        snapshot: Json,
    },
    /// The request's deadline expired before a worker picked it up.
    Expired {
        /// How long the request waited, milliseconds.
        waited_ms: u64,
    },
    /// The request failed.
    Error {
        /// Machine-readable class.
        kind: ErrorKind,
        /// Human-readable explanation.
        message: String,
        /// Lint diagnostics, for [`ErrorKind::LintDeny`].
        diagnostics: Vec<WireDiagnostic>,
    },
}

impl Response {
    /// Stable lowercase tag, used on the wire and in telemetry.
    pub fn op(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Compiled { .. } => "compiled",
            Response::Predicted { .. } => "predicted",
            Response::SweepFront { .. } => "sweep_front",
            Response::SweepPartial { .. } => "sweep_partial",
            Response::HeartbeatReply { .. } => "heartbeat",
            Response::FleetNodesReply { .. } => "fleet_nodes",
            Response::StatsReply { .. } => "stats",
            Response::MetricsReply { .. } => "metrics",
            Response::Busy { .. } => "busy",
            Response::Draining { .. } => "draining",
            Response::Expired { .. } => "expired",
            Response::Error { .. } => "error",
        }
    }
}

/// A request plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Queue-wait budget in milliseconds; 0 = server default.
    pub deadline_ms: u64,
    /// The request body.
    pub req: Request,
}

/// A response plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The id of the request this answers.
    pub id: u64,
    /// The response body.
    pub resp: Response,
}

fn f64s(items: &[f64]) -> Json {
    Json::Arr(items.iter().map(|f| Json::Num(*f)).collect())
}

fn strs(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn sweep_points(points: &[SweepPoint]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("mem_mhz", Json::Int(p.mem_mhz as i128)),
                    ("core_mhz", Json::Int(p.core_mhz as i128)),
                    ("time_s", Json::Num(p.time_s)),
                    ("energy_j", Json::Num(p.energy_j)),
                ])
            })
            .collect(),
    )
}

fn decode_sweep_points(v: &Json, field: &str) -> Result<Vec<SweepPoint>, FrameError> {
    let mut out = Vec::new();
    for p in v.arr_field(field)? {
        out.push(SweepPoint {
            mem_mhz: p.u32_field("mem_mhz")?,
            core_mhz: p.u32_field("core_mhz")?,
            time_s: p.f64_field("time_s")?,
            energy_j: p.f64_field("energy_j")?,
        });
    }
    Ok(out)
}

fn decode_strs(v: &Json, field: &str) -> Result<Vec<String>, FrameError> {
    let mut out = Vec::new();
    for s in v.arr_field(field)? {
        out.push(
            s.as_str()
                .ok_or_else(|| FrameError::Malformed(format!("non-string in `{field}`")))?
                .to_string(),
        );
    }
    Ok(out)
}

impl RequestFrame {
    /// Encode to compact JSON bytes (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut fields = vec![
            ("id", Json::Int(self.id as i128)),
            ("deadline_ms", Json::Int(self.deadline_ms as i128)),
            ("op", Json::Str(self.req.op().to_string())),
        ];
        match &self.req {
            Request::Ping
            | Request::Heartbeat
            | Request::FleetNodes
            | Request::Stats
            | Request::Metrics
            | Request::Drain => {}
            Request::Compile {
                bench,
                device,
                targets,
            } => {
                fields.push(("bench", Json::Str(bench.clone())));
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("targets", strs(targets)));
            }
            Request::Predict {
                device,
                features,
                mem_mhz,
                core_mhz,
            } => {
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("features", f64s(features)));
                fields.push(("mem_mhz", Json::Int(*mem_mhz as i128)));
                fields.push(("core_mhz", Json::Int(*core_mhz as i128)));
            }
            Request::Sweep { bench, device } => {
                fields.push(("bench", Json::Str(bench.clone())));
                fields.push(("device", Json::Str(device.clone())));
            }
            Request::SweepPart {
                bench,
                device,
                offset,
                limit,
            } => {
                fields.push(("bench", Json::Str(bench.clone())));
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("offset", Json::Int(*offset as i128)));
                fields.push(("limit", Json::Int(*limit as i128)));
            }
            Request::FleetJoin { addr } => {
                fields.push(("addr", Json::Str(addr.clone())));
            }
            Request::FleetPreempt { addr, grace_ms } => {
                fields.push(("addr", Json::Str(addr.clone())));
                fields.push(("grace_ms", Json::Int(*grace_ms as i128)));
            }
        }
        Json::obj(fields).encode().into_bytes()
    }

    /// Encode to a complete wire frame (length prefix + JSON payload).
    pub fn encode_framed(&self) -> Vec<u8> {
        frame_bytes(&self.encode())
    }

    /// Decode from JSON bytes.
    pub fn decode(bytes: &[u8]) -> Result<RequestFrame, FrameError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| FrameError::Malformed("payload is not utf-8".to_string()))?;
        let v = Json::parse(text)?;
        let id = v.u64_field("id")?;
        let deadline_ms = v.u64_field("deadline_ms")?;
        let op = v.str_field("op")?;
        let req = match op {
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "drain" => Request::Drain,
            "compile" => Request::Compile {
                bench: v.str_field("bench")?.to_string(),
                device: v.str_field("device")?.to_string(),
                targets: {
                    let mut out = Vec::new();
                    for t in v.arr_field("targets")? {
                        out.push(
                            t.as_str()
                                .ok_or_else(|| {
                                    FrameError::Malformed("non-string target".to_string())
                                })?
                                .to_string(),
                        );
                    }
                    out
                },
            },
            "predict" => Request::Predict {
                device: v.str_field("device")?.to_string(),
                features: {
                    let mut out = Vec::new();
                    for f in v.arr_field("features")? {
                        out.push(f.as_f64().ok_or_else(|| {
                            FrameError::Malformed("non-numeric feature".to_string())
                        })?);
                    }
                    out
                },
                mem_mhz: v.u32_field("mem_mhz")?,
                core_mhz: v.u32_field("core_mhz")?,
            },
            "sweep" => Request::Sweep {
                bench: v.str_field("bench")?.to_string(),
                device: v.str_field("device")?.to_string(),
            },
            "sweep_part" => Request::SweepPart {
                bench: v.str_field("bench")?.to_string(),
                device: v.str_field("device")?.to_string(),
                offset: v.u64_field("offset")?,
                limit: v.u64_field("limit")?,
            },
            "heartbeat" => Request::Heartbeat,
            "fleet_nodes" => Request::FleetNodes,
            "fleet_join" => Request::FleetJoin {
                addr: v.str_field("addr")?.to_string(),
            },
            "fleet_preempt" => Request::FleetPreempt {
                addr: v.str_field("addr")?.to_string(),
                grace_ms: v.u64_field("grace_ms")?,
            },
            other => {
                return Err(FrameError::Malformed(format!("unknown request op `{other}`")));
            }
        };
        Ok(RequestFrame {
            id,
            deadline_ms,
            req,
        })
    }
}

impl ResponseFrame {
    /// Encode to a complete wire frame (length prefix + JSON payload).
    pub fn encode_framed(&self) -> Vec<u8> {
        frame_bytes(&self.encode())
    }

    /// Encode to compact JSON bytes (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut fields = vec![
            ("id", Json::Int(self.id as i128)),
            ("op", Json::Str(self.resp.op().to_string())),
        ];
        match &self.resp {
            Response::Pong => {}
            Response::Compiled {
                device,
                coalesced,
                decisions,
            } => {
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("coalesced", Json::Bool(*coalesced)));
                fields.push((
                    "decisions",
                    Json::Arr(
                        decisions
                            .iter()
                            .map(|d| {
                                Json::obj(vec![
                                    ("kernel", Json::Str(d.kernel.clone())),
                                    ("target", Json::Str(d.target.clone())),
                                    ("mem_mhz", Json::Int(d.mem_mhz as i128)),
                                    ("core_mhz", Json::Int(d.core_mhz as i128)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::Predicted {
                time_s,
                energy_j,
                edp,
                ed2p,
            } => {
                fields.push(("time_s", Json::Num(*time_s)));
                fields.push(("energy_j", Json::Num(*energy_j)));
                fields.push(("edp", Json::Num(*edp)));
                fields.push(("ed2p", Json::Num(*ed2p)));
            }
            Response::SweepFront {
                device,
                bench,
                configurations,
                pareto,
            } => {
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("bench", Json::Str(bench.clone())));
                fields.push(("configurations", Json::Int(*configurations as i128)));
                fields.push(("pareto", sweep_points(pareto)));
            }
            Response::SweepPartial {
                device,
                bench,
                offset,
                configurations,
                points,
            } => {
                fields.push(("device", Json::Str(device.clone())));
                fields.push(("bench", Json::Str(bench.clone())));
                fields.push(("offset", Json::Int(*offset as i128)));
                fields.push(("configurations", Json::Int(*configurations as i128)));
                fields.push(("points", sweep_points(points)));
            }
            Response::HeartbeatReply {
                draining,
                queue_depth,
                warm_keys,
            } => {
                fields.push(("draining", Json::Bool(*draining)));
                fields.push(("queue_depth", Json::Int(*queue_depth as i128)));
                fields.push(("warm_keys", strs(warm_keys)));
            }
            Response::FleetNodesReply { nodes } => {
                fields.push((
                    "nodes",
                    Json::Arr(
                        nodes
                            .iter()
                            .map(|n| {
                                Json::obj(vec![
                                    ("addr", Json::Str(n.addr.clone())),
                                    ("state", Json::Str(n.state.clone())),
                                    ("warm_keys", strs(&n.warm_keys)),
                                    ("in_flight", Json::Int(n.in_flight as i128)),
                                    ("forwarded", Json::Int(n.forwarded as i128)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::StatsReply {
                connections,
                enqueued,
                busy_rejections,
                expired,
                responses,
                coalesce_leaders,
                coalesce_joins,
                lint_denials,
                errors,
                queue_depth,
                queue_depth_max,
                draining,
                percentiles,
            } => {
                fields.push(("connections", Json::Int(*connections as i128)));
                fields.push(("enqueued", Json::Int(*enqueued as i128)));
                fields.push(("busy_rejections", Json::Int(*busy_rejections as i128)));
                fields.push(("expired", Json::Int(*expired as i128)));
                fields.push(("responses", Json::Int(*responses as i128)));
                fields.push(("coalesce_leaders", Json::Int(*coalesce_leaders as i128)));
                fields.push(("coalesce_joins", Json::Int(*coalesce_joins as i128)));
                fields.push(("lint_denials", Json::Int(*lint_denials as i128)));
                fields.push(("errors", Json::Int(*errors as i128)));
                fields.push(("queue_depth", Json::Int(*queue_depth as i128)));
                fields.push(("queue_depth_max", Json::Int(*queue_depth_max as i128)));
                fields.push(("draining", Json::Bool(*draining)));
                fields.push((
                    "percentiles",
                    Json::Arr(
                        percentiles
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("kind", Json::Str(p.kind.clone())),
                                    ("p50_ms", Json::Num(p.p50_ms)),
                                    ("p95_ms", Json::Num(p.p95_ms)),
                                    ("p99_ms", Json::Num(p.p99_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Response::MetricsReply { snapshot } => {
                fields.push(("snapshot", snapshot.clone()));
            }
            Response::Busy { retry_after_ms } => {
                fields.push(("retry_after_ms", Json::Int(*retry_after_ms as i128)));
            }
            Response::Draining { pending } => {
                fields.push(("pending", Json::Int(*pending as i128)));
            }
            Response::Expired { waited_ms } => {
                fields.push(("waited_ms", Json::Int(*waited_ms as i128)));
            }
            Response::Error {
                kind,
                message,
                diagnostics,
            } => {
                fields.push(("kind", Json::Str(kind.name().to_string())));
                fields.push(("message", Json::Str(message.clone())));
                fields.push((
                    "diagnostics",
                    Json::Arr(
                        diagnostics
                            .iter()
                            .map(|d| {
                                Json::obj(vec![
                                    ("code", Json::Str(d.code.clone())),
                                    ("severity", Json::Str(d.severity.clone())),
                                    ("path", Json::Str(d.path.clone())),
                                    ("message", Json::Str(d.message.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        Json::obj(fields).encode().into_bytes()
    }

    /// Decode from JSON bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResponseFrame, FrameError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| FrameError::Malformed("payload is not utf-8".to_string()))?;
        let v = Json::parse(text)?;
        let id = v.u64_field("id")?;
        let op = v.str_field("op")?;
        let resp = match op {
            "pong" => Response::Pong,
            "compiled" => Response::Compiled {
                device: v.str_field("device")?.to_string(),
                coalesced: v.bool_field("coalesced")?,
                decisions: {
                    let mut out = Vec::new();
                    for d in v.arr_field("decisions")? {
                        out.push(Decision {
                            kernel: d.str_field("kernel")?.to_string(),
                            target: d.str_field("target")?.to_string(),
                            mem_mhz: d.u32_field("mem_mhz")?,
                            core_mhz: d.u32_field("core_mhz")?,
                        });
                    }
                    out
                },
            },
            "predicted" => Response::Predicted {
                time_s: v.f64_field("time_s")?,
                energy_j: v.f64_field("energy_j")?,
                edp: v.f64_field("edp")?,
                ed2p: v.f64_field("ed2p")?,
            },
            "sweep_front" => Response::SweepFront {
                device: v.str_field("device")?.to_string(),
                bench: v.str_field("bench")?.to_string(),
                configurations: v.u64_field("configurations")?,
                pareto: decode_sweep_points(&v, "pareto")?,
            },
            "sweep_partial" => Response::SweepPartial {
                device: v.str_field("device")?.to_string(),
                bench: v.str_field("bench")?.to_string(),
                offset: v.u64_field("offset")?,
                configurations: v.u64_field("configurations")?,
                points: decode_sweep_points(&v, "points")?,
            },
            "heartbeat" => Response::HeartbeatReply {
                draining: v.bool_field("draining")?,
                queue_depth: v.u64_field("queue_depth")?,
                warm_keys: decode_strs(&v, "warm_keys")?,
            },
            "fleet_nodes" => Response::FleetNodesReply {
                nodes: {
                    let mut out = Vec::new();
                    for n in v.arr_field("nodes")? {
                        out.push(FleetNodeStatus {
                            addr: n.str_field("addr")?.to_string(),
                            state: n.str_field("state")?.to_string(),
                            warm_keys: decode_strs(n, "warm_keys")?,
                            in_flight: n.u64_field("in_flight")?,
                            forwarded: n.u64_field("forwarded")?,
                        });
                    }
                    out
                },
            },
            "stats" => Response::StatsReply {
                connections: v.u64_field("connections")?,
                enqueued: v.u64_field("enqueued")?,
                busy_rejections: v.u64_field("busy_rejections")?,
                expired: v.u64_field("expired")?,
                responses: v.u64_field("responses")?,
                coalesce_leaders: v.u64_field("coalesce_leaders")?,
                coalesce_joins: v.u64_field("coalesce_joins")?,
                lint_denials: v.u64_field("lint_denials")?,
                errors: v.u64_field("errors")?,
                queue_depth: v.u64_field("queue_depth")?,
                queue_depth_max: v.u64_field("queue_depth_max")?,
                draining: v.bool_field("draining")?,
                // Additive field: frames from servers predating it
                // decode to an empty list.
                percentiles: match v.get("percentiles") {
                    None => Vec::new(),
                    Some(_) => {
                        let mut out = Vec::new();
                        for p in v.arr_field("percentiles")? {
                            out.push(KindPercentiles {
                                kind: p.str_field("kind")?.to_string(),
                                p50_ms: p.f64_field("p50_ms")?,
                                p95_ms: p.f64_field("p95_ms")?,
                                p99_ms: p.f64_field("p99_ms")?,
                            });
                        }
                        out
                    }
                },
            },
            "metrics" => Response::MetricsReply {
                snapshot: v
                    .get("snapshot")
                    .ok_or_else(|| FrameError::Malformed("missing snapshot".to_string()))?
                    .clone(),
            },
            "busy" => Response::Busy {
                retry_after_ms: v.u64_field("retry_after_ms")?,
            },
            "draining" => Response::Draining {
                pending: v.u64_field("pending")?,
            },
            "expired" => Response::Expired {
                waited_ms: v.u64_field("waited_ms")?,
            },
            "error" => Response::Error {
                kind: ErrorKind::from_name(v.str_field("kind")?).ok_or_else(|| {
                    FrameError::Malformed("unknown error kind".to_string())
                })?,
                message: v.str_field("message")?.to_string(),
                diagnostics: {
                    let mut out = Vec::new();
                    for d in v.arr_field("diagnostics")? {
                        out.push(WireDiagnostic {
                            code: d.str_field("code")?.to_string(),
                            severity: d.str_field("severity")?.to_string(),
                            path: d.str_field("path")?.to_string(),
                            message: d.str_field("message")?.to_string(),
                        });
                    }
                    out
                },
            },
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown response op `{other}`"
                )));
            }
        };
        Ok(ResponseFrame { id, resp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(frame: RequestFrame) {
        let bytes = frame.encode();
        let back = RequestFrame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    fn rt_resp(frame: ResponseFrame) {
        let bytes = frame.encode();
        let back = ResponseFrame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn every_request_round_trips() {
        rt_req(RequestFrame {
            id: u64::MAX,
            deadline_ms: 0,
            req: Request::Ping,
        });
        rt_req(RequestFrame {
            id: 1,
            deadline_ms: 250,
            req: Request::Compile {
                bench: "vec_add".to_string(),
                device: "v100".to_string(),
                targets: vec!["ES_50".to_string(), "MIN_EDP".to_string()],
            },
        });
        rt_req(RequestFrame {
            id: 2,
            deadline_ms: 0,
            req: Request::Predict {
                device: "a100".to_string(),
                features: vec![0.1, -2.5e-8, 1e300, 0.0],
                mem_mhz: 877,
                core_mhz: 1312,
            },
        });
        rt_req(RequestFrame {
            id: 3,
            deadline_ms: 9,
            req: Request::Sweep {
                bench: "mat_mul".to_string(),
                device: "mi100".to_string(),
            },
        });
        rt_req(RequestFrame {
            id: 4,
            deadline_ms: 0,
            req: Request::Stats,
        });
        rt_req(RequestFrame {
            id: 5,
            deadline_ms: 0,
            req: Request::Drain,
        });
        rt_req(RequestFrame {
            id: 6,
            deadline_ms: 0,
            req: Request::Metrics,
        });
        rt_req(RequestFrame {
            id: 7,
            deadline_ms: 100,
            req: Request::SweepPart {
                bench: "sobel3".to_string(),
                device: "v100".to_string(),
                offset: 32,
                limit: 16,
            },
        });
        rt_req(RequestFrame {
            id: 8,
            deadline_ms: 0,
            req: Request::Heartbeat,
        });
        rt_req(RequestFrame {
            id: 9,
            deadline_ms: 0,
            req: Request::FleetNodes,
        });
        rt_req(RequestFrame {
            id: 10,
            deadline_ms: 0,
            req: Request::FleetJoin {
                addr: "127.0.0.1:9001".to_string(),
            },
        });
        rt_req(RequestFrame {
            id: 11,
            deadline_ms: 0,
            req: Request::FleetPreempt {
                addr: "127.0.0.1:9001".to_string(),
                grace_ms: 250,
            },
        });
    }

    #[test]
    fn every_response_round_trips() {
        rt_resp(ResponseFrame {
            id: 7,
            resp: Response::Pong,
        });
        rt_resp(ResponseFrame {
            id: 8,
            resp: Response::Compiled {
                device: "v100".to_string(),
                coalesced: true,
                decisions: vec![Decision {
                    kernel: "vec_add".to_string(),
                    target: "ES_50".to_string(),
                    mem_mhz: 877,
                    core_mhz: 1312,
                }],
            },
        });
        rt_resp(ResponseFrame {
            id: 9,
            resp: Response::Predicted {
                time_s: 0.001_234,
                energy_j: 1.5,
                edp: 0.001_851,
                ed2p: 2.284e-6,
            },
        });
        rt_resp(ResponseFrame {
            id: 10,
            resp: Response::SweepFront {
                device: "titanx".to_string(),
                bench: "vec_add".to_string(),
                configurations: 48,
                pareto: vec![SweepPoint {
                    mem_mhz: 810,
                    core_mhz: 1000,
                    time_s: 0.002,
                    energy_j: 0.9,
                }],
            },
        });
        rt_resp(ResponseFrame {
            id: 11,
            resp: Response::StatsReply {
                connections: 1,
                enqueued: 2,
                busy_rejections: 3,
                expired: 4,
                responses: 5,
                coalesce_leaders: 6,
                coalesce_joins: 7,
                lint_denials: 8,
                errors: 9,
                queue_depth: 10,
                queue_depth_max: 11,
                draining: true,
                percentiles: vec![
                    KindPercentiles {
                        kind: "compile".to_string(),
                        p50_ms: 1.5,
                        p95_ms: 4.25,
                        p99_ms: 9.0,
                    },
                    KindPercentiles {
                        kind: "ping".to_string(),
                        p50_ms: 0.031,
                        p95_ms: 0.062,
                        p99_ms: 0.125,
                    },
                ],
            },
        });
        rt_resp(ResponseFrame {
            id: 12,
            resp: Response::Busy { retry_after_ms: 25 },
        });
        rt_resp(ResponseFrame {
            id: 31,
            resp: Response::SweepPartial {
                device: "v100".to_string(),
                bench: "sobel3".to_string(),
                offset: 32,
                configurations: 196,
                points: vec![SweepPoint {
                    mem_mhz: 877,
                    core_mhz: 1000,
                    time_s: 0.0015,
                    energy_j: 0.75,
                }],
            },
        });
        rt_resp(ResponseFrame {
            id: 32,
            resp: Response::HeartbeatReply {
                draining: false,
                queue_depth: 3,
                warm_keys: vec!["a100".to_string(), "v100".to_string()],
            },
        });
        rt_resp(ResponseFrame {
            id: 33,
            resp: Response::FleetNodesReply {
                nodes: vec![FleetNodeStatus {
                    addr: "127.0.0.1:9001".to_string(),
                    state: "up".to_string(),
                    warm_keys: vec!["v100".to_string()],
                    in_flight: 2,
                    forwarded: 40,
                }],
            },
        });
        rt_resp(ResponseFrame {
            id: 21,
            resp: Response::MetricsReply {
                snapshot: Json::obj(vec![
                    ("uptime_s", Json::Num(1.25)),
                    (
                        "counters",
                        Json::Arr(vec![Json::obj(vec![
                            ("name", Json::Str("synergy_serve_responses_total".into())),
                            ("labels", Json::Arr(vec![])),
                            ("value", Json::Num(42.0)),
                        ])]),
                    ),
                ]),
            },
        });
        rt_resp(ResponseFrame {
            id: 13,
            resp: Response::Draining { pending: 2 },
        });
        rt_resp(ResponseFrame {
            id: 14,
            resp: Response::Expired { waited_ms: 50 },
        });
        rt_resp(ResponseFrame {
            id: 15,
            resp: Response::Error {
                kind: ErrorKind::LintDeny,
                message: "2 deny findings".to_string(),
                diagnostics: vec![WireDiagnostic {
                    code: "IR003".to_string(),
                    severity: "deny".to_string(),
                    path: "kernel/vec_add".to_string(),
                    message: "unbounded loop".to_string(),
                }],
            },
        });
    }

    #[test]
    fn stats_without_percentiles_stays_wire_compatible() {
        // A frame from a server predating the percentiles field.
        let legacy = br#"{"id":3,"op":"stats","connections":1,"enqueued":2,"busy_rejections":0,"expired":0,"responses":2,"coalesce_leaders":0,"coalesce_joins":0,"lint_denials":0,"errors":0,"queue_depth":0,"queue_depth_max":1,"draining":false}"#;
        let frame = ResponseFrame::decode(legacy).unwrap();
        match frame.resp {
            Response::StatsReply { percentiles, connections, .. } => {
                assert_eq!(connections, 1);
                assert!(percentiles.is_empty());
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn framing_round_trips_over_a_cursor() {
        let frame = RequestFrame {
            id: 42,
            deadline_ms: 100,
            req: Request::Stats,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame.encode()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let payload = read_frame(&mut cursor).unwrap();
        assert_eq!(RequestFrame::decode(&payload).unwrap(), frame);
        // A second read hits clean EOF.
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_io_errors_not_panics() {
        // Length says 100, only 3 bytes follow.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
        // EOF inside the length prefix itself.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
    }

    #[test]
    fn garbage_payloads_decode_to_errors() {
        for bad in [
            &b"not json"[..],
            br#"{"id":1}"#,
            br#"{"id":"x","deadline_ms":0,"op":"ping"}"#,
            br#"{"id":1,"deadline_ms":0,"op":"warp"}"#,
            br#"{"id":1,"deadline_ms":0,"op":"compile","bench":"vec_add"}"#,
            &[0xFF, 0xFE][..],
        ] {
            assert!(RequestFrame::decode(bad).is_err());
            assert!(ResponseFrame::decode(bad).is_err());
        }
    }
}
