//! The fleet coordinator: one daemon fronting N `synergy-serve` nodes.
//!
//! Clients speak the ordinary serve wire protocol to the coordinator;
//! nodes are plain, unmodified `synergy-serve` daemons the coordinator
//! talks to with the blocking [`Client`]. Three planes:
//!
//! * **Membership** — nodes join via config or [`Request::FleetJoin`];
//!   a heartbeat thread probes each node every interval, adopting the
//!   warm-cache keys and metrics snapshot it advertises, and declares a
//!   node dead after [`FleetConfig::dead_after`] of silence (or a burst
//!   of connection failures). Dead nodes auto-rejoin on the next
//!   successful heartbeat; *preempted* nodes need an explicit
//!   `FleetJoin`.
//! * **Routing** — data-plane requests are admitted against the fleet's
//!   total free capacity (mirroring serve's `Busy { retry_after_ms }`
//!   semantics, but with per-node in-flight bounds), then steered to an
//!   *up* node that owns the device, preferring nodes whose
//!   [`ModelStore`](synergy_rt::ModelStore) is already warm for it.
//!   Sweeps are split into [`Request::SweepPart`] chunks — the fleet's
//!   unit of checkpointed, reassignable work — and the merged frontier
//!   is computed with [`pareto_points`], bit-identical to a single
//!   node's [`Response::SweepFront`].
//! * **Volatility** — [`Request::FleetPreempt`] starts a grace window
//!   during which the node gets no new work; at the deadline its queued
//!   work is orphaned. Orphans (also produced by node death and I/O
//!   failures) are re-dispatched by a rebalancer that solves an exact
//!   minimum-cost assignment ([`crate::assign`]) of orphans onto free
//!   node slots, pricing cold caches and queue depth. An accepted
//!   request is answered exactly once, whatever happens to the node it
//!   first landed on — by result, `Busy`, or `Expired`, never silence.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use synergy_serve::reactor::{spawn_reactor, ConnEvents, ConnHandle, Reactor};
use synergy_serve::{
    canonical_device_key, device_spec, pareto_points, snapshot_from_wire, snapshot_to_wire,
    Client, ErrorKind, FleetNodeStatus, Request, RequestFrame, Response, ResponseFrame,
    RetryPolicy, SweepPoint,
};
use synergy_telemetry::{Counter, Metrics, MetricsSnapshot};

use crate::assign::assign_min_cost;

/// One node in the static fleet roster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// The node's `host:port` address.
    pub addr: String,
    /// Canonical device keys this node owns; empty = serves any device.
    pub devices: Vec<String>,
}

impl NodeConfig {
    /// Parse `addr` or `addr=dev1,dev2` (the CLI `--node` syntax).
    pub fn parse(s: &str) -> Result<NodeConfig, String> {
        let (addr, devs) = match s.split_once('=') {
            Some((a, d)) => (a, d),
            None => (s, ""),
        };
        if addr.is_empty() {
            return Err(format!("node spec `{s}` has no address"));
        }
        let mut devices = Vec::new();
        for d in devs.split(',').filter(|d| !d.is_empty()) {
            match canonical_device_key(d) {
                Some(k) => devices.push(k),
                None => return Err(format!("node spec `{s}`: unknown device `{d}`")),
            }
        }
        devices.sort();
        devices.dedup();
        Ok(NodeConfig {
            addr: addr.to_string(),
            devices,
        })
    }
}

/// Coordinator configuration.
pub struct FleetConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Initial roster; more nodes can join at runtime.
    pub nodes: Vec<NodeConfig>,
    /// Reactor shards for the client-facing listener.
    pub reactors: usize,
    /// How often the membership plane probes each node.
    pub heartbeat_interval: Duration,
    /// Silence threshold after which a node is declared dead.
    pub dead_after: Duration,
    /// Per-node bound on queued-plus-in-flight forwarded requests.
    pub max_inflight_per_node: usize,
    /// Forwarder connections (threads) per node.
    pub links_per_node: usize,
    /// Queue-wait budget for requests that do not set one, ms.
    pub default_deadline_ms: u64,
    /// Back-off hint sent with fleet-level `Busy` rejections, ms.
    pub retry_after_ms: u64,
    /// Clock-grid rows per [`Request::SweepPart`] chunk.
    pub sweep_chunk: usize,
    /// Reassignment-cost penalty for routing a device onto a node with
    /// a cold model cache, in milliseconds-equivalent units.
    pub cold_penalty_ms: f64,
    /// Coordinator-side metrics registry (merged with node snapshots
    /// for the fleet cost rollup). [`Metrics::disabled`] is free.
    pub metrics: Metrics,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            addr: "127.0.0.1:0".to_string(),
            nodes: Vec::new(),
            reactors: 1,
            heartbeat_interval: Duration::from_millis(250),
            dead_after: Duration::from_millis(1500),
            max_inflight_per_node: 8,
            links_per_node: 2,
            default_deadline_ms: 10_000,
            retry_after_ms: 25,
            sweep_chunk: 48,
            cold_penalty_ms: 150.0,
            metrics: Metrics::disabled(),
        }
    }
}

/// A point-in-time copy of the coordinator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Client connections accepted.
    pub connections: u64,
    /// Data-plane requests accepted (each is answered exactly once).
    pub accepted: u64,
    /// Responses written to clients.
    pub responses: u64,
    /// Fleet-level `Busy` rejections (no free slot anywhere).
    pub busy_rejections: u64,
    /// Accepted requests that expired before completing.
    pub expired: u64,
    /// Error responses relayed or produced.
    pub errors: u64,
    /// Sub-requests handed to forwarders (includes re-dispatches).
    pub forwarded: u64,
    /// Orphaned sub-requests re-dispatched to a different-or-same node.
    pub reassigned: u64,
    /// Sub-requests orphaned by death, preemption or I/O failure.
    pub orphaned: u64,
    /// Preemption notices honoured.
    pub preemptions: u64,
    /// Nodes currently marked dead.
    pub dead_nodes: u64,
}

#[derive(Default)]
struct FleetCounters {
    connections: AtomicU64,
    accepted: AtomicU64,
    responses: AtomicU64,
    busy_rejections: AtomicU64,
    expired: AtomicU64,
    errors: AtomicU64,
    forwarded: AtomicU64,
    reassigned: AtomicU64,
    orphaned: AtomicU64,
    preemptions: AtomicU64,
}

/// Registry handles mirroring [`FleetCounters`] (no-ops when disabled).
struct Instr {
    accepted: Counter,
    reassigned: Counter,
    orphaned: Counter,
    preemptions: Counter,
}

impl Instr {
    fn new(m: &Metrics) -> Instr {
        Instr {
            accepted: m.counter("synergy_fleet_requests_total", &[]),
            reassigned: m.counter("synergy_fleet_reassigned_total", &[]),
            orphaned: m.counter("synergy_fleet_orphaned_total", &[]),
            preemptions: m.counter("synergy_fleet_preemptions_total", &[]),
        }
    }
}

/// Membership state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    /// Routable.
    Up,
    /// The node reported it is draining: finish its work, route nothing
    /// new to it.
    Draining,
    /// Preemption notice received; no new work. At `until` the queued
    /// work is orphaned and the state becomes [`NodeState::Preempted`].
    Preempting {
        /// Grace deadline.
        until: Instant,
    },
    /// Preempted; requires an explicit `FleetJoin` to return.
    Preempted,
    /// Missed heartbeats past the threshold. Auto-revived by the next
    /// successful heartbeat.
    Dead,
}

impl NodeState {
    fn name(self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Draining => "draining",
            NodeState::Preempting { .. } => "preempting",
            NodeState::Preempted => "preempted",
            NodeState::Dead => "dead",
        }
    }

    fn routable(self) -> bool {
        matches!(self, NodeState::Up)
    }
}

struct NodeInner {
    state: NodeState,
    /// Canonical device keys the node advertises warm model caches for.
    warm: BTreeSet<String>,
    last_seen: Instant,
    /// Queued-plus-in-flight forwarded sub-requests.
    in_flight: usize,
    /// Sub-requests ever handed to this node's forwarders.
    forwarded: u64,
    /// Consecutive forwarder I/O failures; a burst marks the node dead
    /// ahead of the heartbeat timeout.
    failures: u32,
    /// Last metrics snapshot scraped from the node.
    snapshot: Option<MetricsSnapshot>,
}

struct NodeQueue {
    q: VecDeque<SubJob>,
    closed: bool,
}

struct Node {
    addr: String,
    /// Device ownership (canonical, sorted); empty = any device.
    devices: Vec<String>,
    queue: Mutex<NodeQueue>,
    queue_cv: Condvar,
    inner: Mutex<NodeInner>,
}

impl Node {
    fn new(cfg: NodeConfig) -> Arc<Node> {
        Arc::new(Node {
            addr: cfg.addr,
            devices: cfg.devices,
            queue: Mutex::new(NodeQueue {
                q: VecDeque::new(),
                closed: false,
            }),
            queue_cv: Condvar::new(),
            inner: Mutex::new(NodeInner {
                state: NodeState::Up,
                warm: BTreeSet::new(),
                last_seen: Instant::now(),
                in_flight: 0,
                forwarded: 0,
                failures: 0,
                snapshot: None,
            }),
        })
    }

    fn owns(&self, device: &str) -> bool {
        self.devices.is_empty() || self.devices.iter().any(|d| d == device)
    }

    fn status(&self) -> FleetNodeStatus {
        let inner = self.inner.lock();
        FleetNodeStatus {
            addr: self.addr.clone(),
            state: inner.state.name().to_string(),
            warm_keys: inner.warm.iter().cloned().collect(),
            in_flight: inner.in_flight as u64,
            forwarded: inner.forwarded,
        }
    }
}

/// Partial results of a chunked sweep, keyed by grid offset.
struct SweepParts {
    pending: BTreeSet<u64>,
    points: BTreeMap<u64, Vec<SweepPoint>>,
}

/// Checkpoint state for one chunked sweep: completed chunks survive the
/// death of the node that computed the rest.
struct SweepAgg {
    bench: String,
    configurations: u64,
    parts: Mutex<SweepParts>,
}

/// One accepted client request. Responded to exactly once (`done`).
struct Job {
    client: ConnHandle,
    frame_id: u64,
    deadline_ms: u64,
    accepted: Instant,
    /// Canonical device key (the routing dimension).
    device: String,
    req: Request,
    done: AtomicBool,
    sweep: Option<SweepAgg>,
}

impl Job {
    fn expired(&self) -> bool {
        self.accepted.elapsed() >= Duration::from_millis(self.deadline_ms)
    }
}

/// The unit of routable, reassignable work: a whole single-shot request
/// or one sweep chunk.
struct SubJob {
    job: Arc<Job>,
    /// `(offset, limit)` for a sweep chunk; `None` forwards `job.req`.
    part: Option<(u64, u64)>,
    /// Dispatch attempts so far; failed attempts back off re-dispatch.
    attempts: u32,
    /// Earliest re-dispatch time for orphans.
    not_before: Instant,
    /// True once the work was orphaned by node death, preemption, a
    /// transient rejection or an I/O failure — as opposed to merely
    /// deferred while every slot was busy. Placing an orphaned sub-job
    /// is what counts as a reassignment.
    orphaned: bool,
}

impl SubJob {
    fn request(&self) -> Request {
        match self.part {
            Some((offset, limit)) => Request::SweepPart {
                bench: self
                    .job
                    .sweep
                    .as_ref()
                    .map(|s| s.bench.clone())
                    .unwrap_or_default(),
                device: self.job.device.clone(),
                offset,
                limit,
            },
            None => self.job.req.clone(),
        }
    }
}

struct Shared {
    heartbeat_interval: Duration,
    dead_after: Duration,
    max_inflight: usize,
    default_deadline_ms: u64,
    retry_after_ms: u64,
    sweep_chunk: usize,
    cold_penalty_ms: f64,
    metrics: Metrics,
    instr: Instr,
    counters: FleetCounters,
    nodes: Mutex<BTreeMap<String, Arc<Node>>>,
    orphans: Mutex<VecDeque<SubJob>>,
    /// Rebalancer doorbell: set on orphan pushes, freed slots and
    /// membership changes.
    kick_flag: Mutex<bool>,
    kick: Condvar,
    /// Accepted-but-unanswered jobs; drain/join wait for zero.
    outstanding: AtomicU64,
    outstanding_max: AtomicU64,
    idle_flag: Mutex<()>,
    idle: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    drain_flag: Mutex<bool>,
    drained: Condvar,
    reactor: OnceLock<Reactor>,
    /// Forwarder threads, appended as nodes register.
    forwarders: Mutex<Vec<JoinHandle<()>>>,
    /// Back-reference so reactor hooks (`&self`) can spawn owning
    /// threads; set once at spawn, before any hook can fire.
    self_ref: OnceLock<std::sync::Weak<Shared>>,
}

impl Shared {
    fn respond(&self, conn: &ConnHandle, id: u64, resp: Response) {
        if matches!(resp, Response::Error { .. }) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        conn.send(&ResponseFrame { id, resp }.encode_framed());
    }

    /// Answer an accepted job. The `done` flag makes this exactly-once:
    /// late duplicate results (a reassigned chunk finishing twice, a
    /// timed-out forward completing after all) are discarded.
    fn finish_job(&self, job: &Job, resp: Response) {
        if job.done.swap(true, Ordering::SeqCst) {
            return;
        }
        match &resp {
            Response::Expired { .. } => {
                self.counters.expired.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error { .. } => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.counters.responses.fetch_add(1, Ordering::Relaxed);
        job.client
            .send(&ResponseFrame { id: job.frame_id, resp }.encode_framed());
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = self.idle_flag.lock();
            self.idle.notify_all();
        }
    }

    fn kick_rebalancer(&self) {
        *self.kick_flag.lock() = true;
        self.kick.notify_all();
    }

    fn node(&self, addr: &str) -> Option<Arc<Node>> {
        self.nodes.lock().get(addr).cloned()
    }

    fn roster(&self) -> Vec<Arc<Node>> {
        self.nodes.lock().values().cloned().collect()
    }

    fn roster_response(&self) -> Response {
        Response::FleetNodesReply {
            nodes: self.roster().iter().map(|n| n.status()).collect(),
        }
    }

    fn stats(&self) -> FleetStats {
        let c = &self.counters;
        FleetStats {
            connections: c.connections.load(Ordering::Relaxed),
            accepted: c.accepted.load(Ordering::Relaxed),
            responses: c.responses.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            expired: c.expired.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            forwarded: c.forwarded.load(Ordering::Relaxed),
            reassigned: c.reassigned.load(Ordering::Relaxed),
            orphaned: c.orphaned.load(Ordering::Relaxed),
            preemptions: c.preemptions.load(Ordering::Relaxed),
            dead_nodes: self
                .roster()
                .iter()
                .filter(|n| n.inner.lock().state == NodeState::Dead)
                .count() as u64,
        }
    }

    fn stats_response(&self) -> Response {
        let s = self.stats();
        Response::StatsReply {
            connections: s.connections,
            enqueued: s.accepted,
            busy_rejections: s.busy_rejections,
            expired: s.expired,
            responses: s.responses,
            coalesce_leaders: 0,
            coalesce_joins: 0,
            lint_denials: 0,
            errors: s.errors,
            queue_depth: self.outstanding.load(Ordering::Relaxed),
            queue_depth_max: self.outstanding_max.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::SeqCst),
            percentiles: Vec::new(),
        }
    }

    /// The fleet rollup: the coordinator's own registry merged with the
    /// last metrics snapshot scraped from every node. Counters and
    /// gauges sum, histograms merge bucket-wise, the cost rollup sums
    /// joules and node-seconds fleet-wide.
    fn merged_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        for node in self.roster() {
            if let Some(s) = node.inner.lock().snapshot.as_ref() {
                snap.merge_from(s);
            }
        }
        snap
    }

    fn warm_union(&self) -> Vec<String> {
        let mut keys = BTreeSet::new();
        for node in self.roster() {
            keys.extend(node.inner.lock().warm.iter().cloned());
        }
        keys.into_iter().collect()
    }

    /// Register (or revive) a node and spawn its forwarder links.
    fn register_node(self: &Arc<Shared>, cfg: NodeConfig, links: usize) {
        let addr = cfg.addr.clone();
        let node = {
            let mut nodes = self.nodes.lock();
            if let Some(existing) = nodes.get(&addr) {
                let mut inner = existing.inner.lock();
                inner.state = NodeState::Up;
                inner.last_seen = Instant::now();
                inner.failures = 0;
                drop(inner);
                self.kick_rebalancer();
                return;
            }
            let node = Node::new(cfg);
            nodes.insert(addr.clone(), Arc::clone(&node));
            node
        };
        let mut handles = self.forwarders.lock();
        for k in 0..links.max(1) {
            let shared = Arc::clone(self);
            let node = Arc::clone(&node);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fleet-fwd-{addr}-{k}"))
                    .spawn(move || forwarder_loop(&shared, &node, k as u64))
                    .expect("spawn forwarder"),
            );
        }
        self.kick_rebalancer();
    }

    fn preempt(&self, addr: &str, grace_ms: u64) -> bool {
        let Some(node) = self.node(addr) else {
            return false;
        };
        {
            let mut inner = node.inner.lock();
            inner.state = NodeState::Preempting {
                until: Instant::now() + Duration::from_millis(grace_ms),
            };
        }
        self.counters.preemptions.fetch_add(1, Ordering::Relaxed);
        self.instr.preemptions.inc();
        self.kick_rebalancer();
        true
    }

    /// Declare a node dead and orphan everything queued on it. Its
    /// in-flight forwards resolve through forwarder I/O errors.
    fn mark_dead(&self, node: &Node) {
        {
            let mut inner = node.inner.lock();
            if matches!(inner.state, NodeState::Dead | NodeState::Preempted) {
                return;
            }
            inner.state = NodeState::Dead;
        }
        self.orphan_queued(node);
    }

    /// Move a node's queued (not yet in-flight) sub-jobs to the orphan
    /// pool.
    fn orphan_queued(&self, node: &Node) {
        let drained: Vec<SubJob> = {
            let mut q = node.queue.lock();
            q.q.drain(..).collect()
        };
        if drained.is_empty() {
            self.kick_rebalancer();
            return;
        }
        {
            let mut inner = node.inner.lock();
            inner.in_flight = inner.in_flight.saturating_sub(drained.len());
        }
        let n = drained.len() as u64;
        self.counters.orphaned.fetch_add(n, Ordering::Relaxed);
        self.instr.orphaned.add(n);
        let mut orphans = self.orphans.lock();
        orphans.extend(drained.into_iter().map(|mut sj| {
            sj.orphaned = true;
            sj
        }));
        drop(orphans);
        self.kick_rebalancer();
    }

    fn push_orphan(&self, mut sj: SubJob) {
        sj.orphaned = true;
        sj.not_before = Instant::now() + Duration::from_millis(20 * u64::from(sj.attempts.min(10)));
        self.counters.orphaned.fetch_add(1, Ordering::Relaxed);
        self.instr.orphaned.inc();
        self.orphans.lock().push_back(sj);
        self.kick_rebalancer();
    }

    /// Park a sub-job in the rebalancer's pool because no slot is free
    /// right now. Unlike [`Self::push_orphan`] this is normal queueing
    /// under load, not a volatility event: no counters move.
    fn defer(&self, mut sj: SubJob) {
        sj.not_before = Instant::now();
        self.orphans.lock().push_back(sj);
        self.kick_rebalancer();
    }

    /// Hand a sub-job to a node's forwarders (the in-flight slot was
    /// already reserved by the caller under `inner`).
    fn enqueue_reserved(&self, node: &Node, sj: SubJob) {
        self.counters.forwarded.fetch_add(1, Ordering::Relaxed);
        let mut q = node.queue.lock();
        q.q.push_back(sj);
        drop(q);
        node.queue_cv.notify_one();
    }

    /// Route one sub-job: the cheapest routable node with a free slot,
    /// preferring warm caches, then shorter queues. Falls back to the
    /// orphan pool (the rebalancer's problem) when nothing fits now.
    fn route(&self, sj: SubJob) {
        let device = sj.job.device.clone();
        let mut best: Option<(f64, Arc<Node>)> = None;
        for node in self.roster() {
            if !node.owns(&device) {
                continue;
            }
            let inner = node.inner.lock();
            if !inner.state.routable() || inner.in_flight >= self.max_inflight {
                continue;
            }
            let cost = self.slot_cost(&inner, &device, 0);
            drop(inner);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, node));
            }
        }
        match best {
            Some((_, node)) => {
                let reserved = {
                    let mut inner = node.inner.lock();
                    if inner.state.routable() && inner.in_flight < self.max_inflight {
                        inner.in_flight += 1;
                        inner.forwarded += 1;
                        true
                    } else {
                        false
                    }
                };
                if reserved {
                    self.enqueue_reserved(&node, sj);
                } else {
                    self.defer(sj);
                }
            }
            None => self.defer(sj),
        }
    }

    /// The reassignment cost of putting `device` work onto a node as
    /// its `slot`-th extra item: a cold model cache costs a retrain
    /// (`cold_penalty_ms`), each queued item ahead costs estimated
    /// queue wait.
    fn slot_cost(&self, inner: &NodeInner, device: &str, slot: usize) -> f64 {
        let cold = if inner.warm.contains(device) {
            0.0
        } else {
            self.cold_penalty_ms
        };
        cold + 5.0 * (inner.in_flight + slot) as f64
    }

    /// Whether any routable node could ever take `device` work, and
    /// whether one has a free slot right now.
    fn capacity(&self, device: &str) -> (bool, bool) {
        let mut routable = false;
        let mut free = false;
        for node in self.roster() {
            if !node.owns(device) {
                continue;
            }
            let inner = node.inner.lock();
            if inner.state.routable() {
                routable = true;
                if inner.in_flight < self.max_inflight {
                    free = true;
                }
            }
        }
        (routable, free)
    }

    /// Admit one data-plane request: validate the device, check fleet
    /// capacity, build the job (chunking sweeps), and route its pieces.
    fn admit(self: &Arc<Shared>, conn: &ConnHandle, frame: RequestFrame) {
        let RequestFrame {
            id,
            deadline_ms,
            req,
        } = frame;
        let raw_device = match &req {
            Request::Compile { device, .. }
            | Request::Predict { device, .. }
            | Request::Sweep { device, .. }
            | Request::SweepPart { device, .. } => device.clone(),
            _ => unreachable!("admit only sees data-plane requests"),
        };
        let Some(device) = canonical_device_key(&raw_device) else {
            self.respond(
                conn,
                id,
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: format!("unknown device `{raw_device}`"),
                    diagnostics: Vec::new(),
                },
            );
            return;
        };
        let (routable, free) = self.capacity(&device);
        if !routable || !free {
            self.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            self.respond(
                conn,
                id,
                Response::Busy {
                    retry_after_ms: self.retry_after_ms,
                },
            );
            return;
        }
        let sweep = match &req {
            Request::Sweep { bench, .. } => {
                let spec = device_spec(&device).expect("canonical key has a spec");
                Some(SweepAgg {
                    bench: bench.clone(),
                    configurations: synergy_rt::clock_grid(&spec).len() as u64,
                    parts: Mutex::new(SweepParts {
                        pending: BTreeSet::new(),
                        points: BTreeMap::new(),
                    }),
                })
            }
            _ => None,
        };
        let job = Arc::new(Job {
            client: conn.clone(),
            frame_id: id,
            deadline_ms: if deadline_ms > 0 {
                deadline_ms
            } else {
                self.default_deadline_ms
            },
            accepted: Instant::now(),
            device,
            req,
            done: AtomicBool::new(false),
            sweep,
        });
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.instr.accepted.inc();
        let depth = self.outstanding.fetch_add(1, Ordering::SeqCst) + 1;
        self.outstanding_max.fetch_max(depth, Ordering::Relaxed);

        match &job.sweep {
            Some(agg) => {
                let total = agg.configurations;
                let chunk = self.sweep_chunk.max(1) as u64;
                let mut offsets = Vec::new();
                let mut off = 0;
                while off < total {
                    offsets.push((off, chunk.min(total - off)));
                    off += chunk;
                }
                {
                    let mut parts = agg.parts.lock();
                    for (o, _) in &offsets {
                        parts.pending.insert(*o);
                    }
                }
                for (offset, limit) in offsets {
                    self.route(SubJob {
                        job: Arc::clone(&job),
                        part: Some((offset, limit)),
                        attempts: 0,
                        not_before: Instant::now(),
                        orphaned: false,
                    });
                }
            }
            None => self.route(SubJob {
                job,
                part: None,
                attempts: 0,
                not_before: Instant::now(),
                orphaned: false,
            }),
        }
    }

    /// Fold one sub-response into its job and answer the client when
    /// the job is complete (or failed).
    fn complete(&self, sj: SubJob, node: &Node, resp: Response) {
        // A successful data-plane response means the node now holds
        // warm models for the device: advertise without waiting a
        // heartbeat.
        if matches!(
            resp,
            Response::Compiled { .. } | Response::Predicted { .. } | Response::SweepPartial { .. } | Response::SweepFront { .. }
        ) {
            node.inner.lock().warm.insert(sj.job.device.clone());
        }
        match (&sj.part, resp) {
            // Transient rejections: the work survives as an orphan and
            // is re-dispatched (possibly elsewhere).
            (_, Response::Busy { .. }) | (_, Response::Draining { .. }) => {
                let mut sj = sj;
                sj.attempts += 1;
                self.push_orphan(sj);
            }
            (Some((offset, _)), Response::SweepPartial { offset: ro, points, .. }) => {
                debug_assert_eq!(*offset, ro);
                let job = Arc::clone(&sj.job);
                let agg = job.sweep.as_ref().expect("chunked job has sweep state");
                let finished = {
                    let mut parts = agg.parts.lock();
                    parts.points.insert(ro, points);
                    parts.pending.remove(&ro);
                    parts.pending.is_empty()
                };
                if finished {
                    let all: Vec<SweepPoint> = {
                        let mut parts = agg.parts.lock();
                        std::mem::take(&mut parts.points)
                            .into_values()
                            .flatten()
                            .collect()
                    };
                    self.finish_job(
                        &job,
                        Response::SweepFront {
                            device: job.device.clone(),
                            bench: agg.bench.clone(),
                            configurations: agg.configurations,
                            pareto: pareto_points(all),
                        },
                    );
                }
            }
            (Some(_), Response::Expired { .. }) => {
                self.finish_job(
                    &sj.job,
                    Response::Expired {
                        waited_ms: sj.job.accepted.elapsed().as_millis() as u64,
                    },
                );
            }
            (Some(_), resp @ Response::Error { .. }) => {
                // One bad chunk fails the whole sweep (same answer the
                // node would give the whole request).
                self.finish_job(&sj.job, resp);
            }
            (Some(_), _other) => {
                self.finish_job(
                    &sj.job,
                    Response::Error {
                        kind: ErrorKind::Internal,
                        message: "node returned an unexpected response to a sweep chunk"
                            .to_string(),
                        diagnostics: Vec::new(),
                    },
                );
            }
            // Single-shot requests relay the node's answer verbatim.
            (None, resp) => self.finish_job(&sj.job, resp),
        }
    }
}

impl ConnEvents for Shared {
    fn on_accept(&self, _conn: u64) {
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
    }

    fn on_disconnect(&self, _conn: u64) {}

    fn on_oversized(&self, conn: &ConnHandle, claimed: usize) {
        self.respond(
            conn,
            0,
            Response::Error {
                kind: ErrorKind::BadRequest,
                message: format!("frame of {claimed} bytes exceeds the protocol cap"),
                diagnostics: Vec::new(),
            },
        );
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn wants_timings(&self) -> bool {
        false
    }

    fn on_loop_pass(&self, _shard: usize, _dur: Duration) {}

    fn on_flush(&self, _shard: usize, _dur: Duration) {}

    fn on_frame(&self, conn: &ConnHandle, payload: &[u8]) {
        let frame = match RequestFrame::decode(payload) {
            Ok(f) => f,
            Err(e) => {
                self.respond(
                    conn,
                    0,
                    Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                        diagnostics: Vec::new(),
                    },
                );
                return;
            }
        };
        let id = frame.id;
        match frame.req {
            // Control plane: answered on the reactor thread, immune to
            // node load. Never blocks on node I/O — the metrics rollup
            // reads heartbeat-cached snapshots.
            Request::Ping => self.respond(conn, id, Response::Pong),
            Request::Stats => {
                let resp = self.stats_response();
                self.respond(conn, id, resp);
            }
            Request::Metrics => {
                let snapshot = snapshot_to_wire(&self.merged_snapshot());
                self.respond(conn, id, Response::MetricsReply { snapshot });
            }
            Request::Heartbeat => {
                let resp = Response::HeartbeatReply {
                    draining: self.draining.load(Ordering::SeqCst),
                    queue_depth: self.outstanding.load(Ordering::Relaxed),
                    warm_keys: self.warm_union(),
                };
                self.respond(conn, id, resp);
            }
            Request::FleetNodes => {
                let resp = self.roster_response();
                self.respond(conn, id, resp);
            }
            Request::FleetJoin { ref addr } => {
                // Reactor hooks get `&self`; recover the Arc to spawn
                // owning forwarder threads.
                let this = self.arc_self();
                this.register_node(
                    NodeConfig {
                        addr: addr.clone(),
                        devices: Vec::new(),
                    },
                    this.links_per_node_hint(),
                );
                let resp = self.roster_response();
                self.respond(conn, id, resp);
            }
            Request::FleetPreempt { ref addr, grace_ms } => {
                if self.preempt(addr, grace_ms) {
                    let resp = self.roster_response();
                    self.respond(conn, id, resp);
                } else {
                    self.respond(
                        conn,
                        id,
                        Response::Error {
                            kind: ErrorKind::BadRequest,
                            message: format!("unknown node `{addr}`"),
                            diagnostics: Vec::new(),
                        },
                    );
                }
            }
            Request::Drain => {
                begin_drain(self);
                let resp = Response::Draining {
                    pending: self.outstanding.load(Ordering::Relaxed),
                };
                self.respond(conn, id, resp);
            }
            req @ (Request::Compile { .. }
            | Request::Predict { .. }
            | Request::Sweep { .. }
            | Request::SweepPart { .. }) => {
                if self.draining.load(Ordering::SeqCst) {
                    self.respond(
                        conn,
                        id,
                        Response::Draining {
                            pending: self.outstanding.load(Ordering::Relaxed),
                        },
                    );
                    return;
                }
                let this = self.arc_self();
                this.admit(
                    conn,
                    RequestFrame {
                        id,
                        deadline_ms: frame.deadline_ms,
                        req,
                    },
                );
            }
        }
    }
}

impl Shared {
    fn links_per_node_hint(&self) -> usize {
        // Runtime joins reuse the in-flight bound as link parallelism
        // hint, capped to keep thread counts sane.
        self.max_inflight.clamp(1, 4)
    }

    fn arc_self(&self) -> Arc<Shared> {
        self.self_ref
            .get()
            .and_then(std::sync::Weak::upgrade)
            .expect("self_ref is set at spawn, before any hook fires")
    }
}

fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        *shared.drain_flag.lock() = true;
        shared.drained.notify_all();
        if let Some(reactor) = shared.reactor.get() {
            reactor.wake_all();
        }
    }
}

/// One forwarder link: a blocking [`Client`] draining its node's queue.
fn forwarder_loop(shared: &Arc<Shared>, node: &Arc<Node>, seed: u64) {
    let mut client: Option<Client> = None;
    let io_timeout = shared.dead_after.max(Duration::from_secs(5));
    loop {
        // Pop the next sub-job, or exit when the fleet shuts down.
        let sj = {
            let mut q = node.queue.lock();
            loop {
                if let Some(sj) = q.q.pop_front() {
                    break Some(sj);
                }
                if q.closed || shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                node.queue_cv.wait_for(&mut q, Duration::from_millis(100));
            }
        };
        let Some(mut sj) = sj else { return };

        let finish_slot = |freed_failure: Option<()>| {
            let mut inner = node.inner.lock();
            inner.in_flight = inner.in_flight.saturating_sub(1);
            match freed_failure {
                Some(()) => inner.failures += 1,
                None => inner.failures = 0,
            }
            let failures = inner.failures;
            drop(inner);
            if failures >= 3 {
                shared.mark_dead(node);
            }
            shared.kick_rebalancer();
        };

        if sj.job.done.load(Ordering::SeqCst) {
            finish_slot(None);
            continue;
        }
        if sj.job.expired() {
            finish_slot(None);
            shared.finish_job(
                &sj.job,
                Response::Expired {
                    waited_ms: sj.job.accepted.elapsed().as_millis() as u64,
                },
            );
            continue;
        }

        if client.is_none() {
            match Client::connect(&node.addr) {
                Ok(c) => {
                    let _ = c.set_timeout(Some(io_timeout));
                    client = Some(c);
                }
                Err(_) => {
                    finish_slot(Some(()));
                    sj.attempts += 1;
                    shared.push_orphan(sj);
                    continue;
                }
            }
        }
        let c = client.as_mut().expect("connected above");

        let elapsed = sj.job.accepted.elapsed().as_millis() as u64;
        let remaining = sj.job.deadline_ms.saturating_sub(elapsed).max(1);
        let mut policy = RetryPolicy::new(3, shared.retry_after_ms.max(1), 250, seed ^ elapsed | 1);
        let req = sj.request();
        match c.request_with_retry(&req, remaining, &mut policy) {
            Ok(resp) => {
                finish_slot(None);
                shared.complete(sj, node, resp);
            }
            Err(_) => {
                // Connection-level failure: reconnect next time, orphan
                // the work so the rebalancer can place it elsewhere.
                client = None;
                finish_slot(Some(()));
                sj.attempts += 1;
                shared.push_orphan(sj);
            }
        }
    }
}

/// The membership plane: probe every node each interval, adopt its
/// warm keys and metrics snapshot, declare silence past the threshold
/// death, honour preemption grace deadlines.
fn heartbeat_loop(shared: &Arc<Shared>) {
    let probe_timeout = shared.heartbeat_interval.max(Duration::from_millis(250));
    while !shared.shutdown.load(Ordering::SeqCst) {
        for node in shared.roster() {
            let state = node.inner.lock().state;
            if state == NodeState::Preempted {
                continue; // explicit FleetJoin required
            }
            if let NodeState::Preempting { until } = state {
                if Instant::now() >= until {
                    let mut inner = node.inner.lock();
                    if matches!(inner.state, NodeState::Preempting { .. }) {
                        inner.state = NodeState::Preempted;
                    }
                    drop(inner);
                    shared.orphan_queued(&node);
                }
                continue;
            }
            let probe = Client::connect(&node.addr).and_then(|mut c| {
                let _ = c.set_timeout(Some(probe_timeout));
                let hb = c.request(Request::Heartbeat)?;
                let metrics = c.request(Request::Metrics)?;
                Ok((hb, metrics))
            });
            match probe {
                Ok((Response::HeartbeatReply {
                    draining,
                    warm_keys,
                    ..
                }, metrics)) => {
                    let mut inner = node.inner.lock();
                    inner.last_seen = Instant::now();
                    inner.failures = 0;
                    for k in warm_keys {
                        if let Some(c) = canonical_device_key(&k) {
                            inner.warm.insert(c);
                        }
                    }
                    if let Response::MetricsReply { snapshot } = metrics {
                        if let Ok(s) = snapshot_from_wire(&snapshot) {
                            inner.snapshot = Some(s);
                        }
                    }
                    match inner.state {
                        NodeState::Dead | NodeState::Up | NodeState::Draining => {
                            inner.state = if draining {
                                NodeState::Draining
                            } else {
                                NodeState::Up
                            };
                        }
                        _ => {}
                    }
                    drop(inner);
                    shared.kick_rebalancer();
                }
                Ok(_) | Err(_) => {
                    let dead = {
                        let inner = node.inner.lock();
                        inner.last_seen.elapsed() > shared.dead_after
                    };
                    if dead {
                        shared.mark_dead(&node);
                    }
                }
            }
        }
        // Sleep out the interval in slices so shutdown is prompt; the
        // rebalancer's doorbell is not ours to consume.
        let mut slept = Duration::ZERO;
        while slept < shared.heartbeat_interval && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(25).min(shared.heartbeat_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// The optimal-reassignment plane: expire overdue orphans, then solve a
/// minimum-cost assignment of the rest onto the fleet's free slots.
fn rebalance_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        {
            let mut flag = shared.kick_flag.lock();
            if !*flag {
                let _ = shared.kick.wait_for(&mut flag, Duration::from_millis(50));
            }
            *flag = false;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        rebalance_once(shared);
    }
}

fn rebalance_once(shared: &Arc<Shared>) {
    let now = Instant::now();
    let taken: Vec<SubJob> = shared.orphans.lock().drain(..).collect();
    if taken.is_empty() {
        return;
    }
    let mut rows: Vec<SubJob> = Vec::new();
    let mut held: Vec<SubJob> = Vec::new();
    for sj in taken {
        if sj.job.done.load(Ordering::SeqCst) {
            continue;
        }
        if sj.job.expired() {
            shared.finish_job(
                &sj.job,
                Response::Expired {
                    waited_ms: sj.job.accepted.elapsed().as_millis() as u64,
                },
            );
            continue;
        }
        if sj.not_before > now {
            held.push(sj);
        } else {
            rows.push(sj);
        }
    }

    // Columns: every free slot on every routable node, priced per slot
    // so two orphans placed on one node pay increasing queue-wait.
    let mut cols: Vec<(Arc<Node>, usize)> = Vec::new();
    for node in shared.roster() {
        let inner = node.inner.lock();
        if !inner.state.routable() {
            continue;
        }
        let free = shared.max_inflight.saturating_sub(inner.in_flight);
        drop(inner);
        for slot in 0..free {
            cols.push((Arc::clone(&node), slot));
        }
    }

    if rows.is_empty() || cols.is_empty() {
        let mut orphans = shared.orphans.lock();
        for sj in held.into_iter().chain(rows) {
            orphans.push_back(sj);
        }
        return;
    }

    let cost: Vec<Vec<f64>> = rows
        .iter()
        .map(|sj| {
            cols.iter()
                .map(|(node, slot)| {
                    if !node.owns(&sj.job.device) {
                        return f64::INFINITY;
                    }
                    let inner = node.inner.lock();
                    if !inner.state.routable() {
                        return f64::INFINITY;
                    }
                    shared.slot_cost(&inner, &sj.job.device, *slot)
                })
                .collect()
        })
        .collect();
    let assignment = assign_min_cost(&cost);

    let mut orphans_back: Vec<SubJob> = held;
    for (sj, col) in rows.into_iter().zip(assignment.row_to_col) {
        match col {
            Some(j) => {
                let (node, _) = &cols[j];
                let reserved = {
                    let mut inner = node.inner.lock();
                    if inner.state.routable() && inner.in_flight < shared.max_inflight {
                        inner.in_flight += 1;
                        inner.forwarded += 1;
                        true
                    } else {
                        false
                    }
                };
                if reserved {
                    if sj.orphaned {
                        shared.counters.reassigned.fetch_add(1, Ordering::Relaxed);
                        shared.instr.reassigned.inc();
                    }
                    shared.enqueue_reserved(node, sj);
                } else {
                    orphans_back.push(sj);
                }
            }
            None => orphans_back.push(sj),
        }
    }
    if !orphans_back.is_empty() {
        let mut orphans = shared.orphans.lock();
        orphans.extend(orphans_back);
    }
}

/// A running coordinator. [`drain`](FleetHandle::drain) +
/// [`join`](FleetHandle::join) for a clean stop.
pub struct FleetHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl FleetHandle {
    /// The bound client-facing address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current coordinator counters.
    pub fn stats(&self) -> FleetStats {
        self.shared.stats()
    }

    /// Per-node membership status.
    pub fn nodes(&self) -> Vec<FleetNodeStatus> {
        self.shared.roster().iter().map(|n| n.status()).collect()
    }

    /// The fleet-wide metrics rollup (own registry merged with every
    /// node's heartbeat-scraped snapshot).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.merged_snapshot()
    }

    /// Register a node at runtime (idempotent; revives preempted and
    /// dead nodes).
    pub fn join_node(&self, addr: &str) {
        self.shared.register_node(
            NodeConfig {
                addr: addr.to_string(),
                devices: Vec::new(),
            },
            self.shared.links_per_node_hint(),
        );
    }

    /// Inject a preemption notice. Returns false for unknown nodes.
    pub fn preempt(&self, addr: &str, grace_ms: u64) -> bool {
        self.shared.preempt(addr, grace_ms)
    }

    /// Begin graceful shutdown: reject new data-plane work, keep
    /// answering what was accepted. Idempotent.
    pub fn drain(&self) {
        begin_drain(&self.shared);
    }

    /// Park until a drain starts (from this handle or a client).
    pub fn wait_for_drain(&self) {
        let mut flag = self.shared.drain_flag.lock();
        while !*flag {
            self.shared.drained.wait(&mut flag);
        }
    }

    /// Drain, wait for every accepted request to be answered (results,
    /// errors or deadline expiry guarantee progress), then tear down
    /// every thread and return the final counters.
    pub fn join(mut self) -> FleetStats {
        self.drain();
        {
            let mut g = self.shared.idle_flag.lock();
            while self.shared.outstanding.load(Ordering::SeqCst) > 0 {
                self.shared
                    .idle
                    .wait_for(&mut g, Duration::from_millis(100));
                // Overdue orphans are expired by the rebalancer; keep
                // nudging it so a stalled fleet still converges.
                self.shared.kick_rebalancer();
            }
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for node in self.shared.roster() {
            node.queue.lock().closed = true;
            node.queue_cv.notify_all();
        }
        self.shared.kick_rebalancer();
        if let Some(reactor) = self.shared.reactor.get() {
            reactor.wake_all();
            for h in reactor.take_handles() {
                let _ = h.join();
            }
        }
        for h in self.shared.forwarders.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        self.shared.stats()
    }
}

/// Bind the coordinator and spawn its planes.
pub fn spawn_fleet(config: FleetConfig) -> std::io::Result<FleetHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        heartbeat_interval: config.heartbeat_interval.max(Duration::from_millis(10)),
        dead_after: config.dead_after.max(Duration::from_millis(20)),
        max_inflight: config.max_inflight_per_node.max(1),
        default_deadline_ms: config.default_deadline_ms.max(1),
        retry_after_ms: config.retry_after_ms.max(1),
        sweep_chunk: config.sweep_chunk.max(1),
        cold_penalty_ms: config.cold_penalty_ms.max(0.0),
        instr: Instr::new(&config.metrics),
        metrics: config.metrics,
        counters: FleetCounters::default(),
        nodes: Mutex::new(BTreeMap::new()),
        orphans: Mutex::new(VecDeque::new()),
        kick_flag: Mutex::new(false),
        kick: Condvar::new(),
        outstanding: AtomicU64::new(0),
        outstanding_max: AtomicU64::new(0),
        idle_flag: Mutex::new(()),
        idle: Condvar::new(),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        drain_flag: Mutex::new(false),
        drained: Condvar::new(),
        reactor: OnceLock::new(),
        forwarders: Mutex::new(Vec::new()),
        self_ref: OnceLock::new(),
    });
    shared
        .self_ref
        .set(Arc::downgrade(&shared))
        .unwrap_or_else(|_| unreachable!("self_ref set once"));

    let links = config.links_per_node.max(1);
    for node in config.nodes {
        shared.register_node(node, links);
    }

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("fleet-heartbeat".to_string())
                .spawn(move || heartbeat_loop(&shared))?,
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("fleet-rebalance".to_string())
                .spawn(move || rebalance_loop(&shared))?,
        );
    }

    let events: Arc<dyn ConnEvents> = Arc::clone(&shared) as Arc<dyn ConnEvents>;
    let reactor = spawn_reactor(listener, events, config.reactors.max(1))?;
    shared
        .reactor
        .set(reactor)
        .unwrap_or_else(|_| unreachable!("reactor set once"));

    Ok(FleetHandle {
        addr,
        shared,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_config_parse() {
        let n = NodeConfig::parse("127.0.0.1:9001").unwrap();
        assert_eq!(n.addr, "127.0.0.1:9001");
        assert!(n.devices.is_empty());
        let n = NodeConfig::parse("10.0.0.2:9001=v100,TITAN_X").unwrap();
        assert_eq!(n.devices, vec!["titanx".to_string(), "v100".to_string()]);
        assert!(NodeConfig::parse("=v100").is_err());
        assert!(NodeConfig::parse("h:1=notadevice").is_err());
    }

    #[test]
    fn node_state_names() {
        assert_eq!(NodeState::Up.name(), "up");
        assert_eq!(
            NodeState::Preempting {
                until: Instant::now()
            }
            .name(),
            "preempting"
        );
        assert_eq!(NodeState::Preempted.name(), "preempted");
        assert_eq!(NodeState::Dead.name(), "dead");
        assert!(!NodeState::Dead.routable());
        assert!(NodeState::Up.routable());
    }
}
