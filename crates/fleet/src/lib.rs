//! # synergy-fleet
//!
//! A distributed tuning fleet for the SYnergy stack: one coordinator
//! daemon fronting N unmodified `synergy-serve` nodes, speaking the
//! existing wire protocol on both sides. The coordinator adds what a
//! single node cannot give you:
//!
//! * **Cache-affinity routing** — nodes advertise which devices they
//!   hold warm trained-model caches for (via heartbeats and observed
//!   responses); requests are steered to warm nodes first, so a fleet
//!   retrains each device's models roughly once instead of everywhere.
//! * **Scale-out sweeps** — a measured frequency sweep is chunked into
//!   `SweepPart` slices fanned out across the fleet; the merged Pareto
//!   frontier is bit-identical to a single node's answer.
//! * **Preemption tolerance** — preemption notices start a grace
//!   window; when it lapses (or a node simply dies) the node's
//!   unfinished work is *orphaned*, and a rebalancer re-dispatches
//!   orphans with an exact minimum-cost assignment ([`assign`]) that
//!   prices cold caches and queue depth. Accepted requests are answered
//!   exactly once — by result, `Busy`, or `Expired` — never dropped.
//!
//! See `DESIGN.md` §15 for the architecture discussion and the
//! `fleet_perf` bench for the scaling harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod assign;
pub mod coordinator;

pub use assign::{assign_min_cost, Assignment};
pub use coordinator::{spawn_fleet, FleetConfig, FleetHandle, FleetStats, NodeConfig};
