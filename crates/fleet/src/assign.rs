//! Exact minimum-cost assignment (the Hungarian algorithm).
//!
//! The rebalancer turns orphaned work into rows and free node slots
//! into columns of a cost matrix, then asks for the cheapest perfect
//! matching. A greedy pass would strand work: give the warm node to the
//! job that merely *prefers* it and the job that *needs* it pays a cold
//! retrain. The O(n³) potentials formulation (Kuhn/Jonker-Volgenant)
//! is exact and, at fleet sizes (tens of rows), effectively free.
//!
//! Infeasible edges are expressed as [`f64::INFINITY`]. Internally they
//! become a finite sentinel larger than any possible feasible-matching
//! cost difference, which makes the optimum a *minimum-cost
//! maximum-cardinality* matching on the feasible edges; rows whose
//! match used the sentinel come back as `None`.

/// The result of [`assign_min_cost`].
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// For each row (job), the chosen column (slot), or `None` when the
    /// row is unassignable (more rows than columns, or every feasible
    /// column went to rows that needed it more).
    pub row_to_col: Vec<Option<usize>>,
    /// Sum of the original matrix entries over the assigned pairs.
    pub total_cost: f64,
}

impl Assignment {
    /// Number of rows that received a column.
    pub fn matched(&self) -> usize {
        self.row_to_col.iter().filter(|c| c.is_some()).count()
    }
}

/// Minimum-cost assignment of rows to columns.
///
/// `cost[i][j]` is the cost of giving row `i` column `j`; use
/// [`f64::INFINITY`] for forbidden pairs. The matrix may be rectangular
/// and rows may be wholly infeasible. Among all matchings of maximum
/// cardinality (counting only feasible edges), the returned one has
/// minimum total cost. Every row of `cost` must have the same length.
///
/// # Panics
///
/// Panics if rows have differing lengths or any entry is NaN.
pub fn assign_min_cost(cost: &[Vec<f64>]) -> Assignment {
    let rows = cost.len();
    let cols = cost.first().map_or(0, Vec::len);
    for row in cost {
        assert_eq!(row.len(), cols, "ragged cost matrix");
        for &c in row {
            assert!(!c.is_nan(), "NaN cost");
        }
    }
    if rows == 0 || cols == 0 {
        return Assignment {
            row_to_col: vec![None; rows],
            total_cost: 0.0,
        };
    }

    // The sentinel must dominate any achievable cost *difference*
    // between matchings over finite edges, so minimizing total cost
    // first minimizes sentinel-edge count (maximizes cardinality).
    let max_abs = cost
        .iter()
        .flatten()
        .filter(|c| c.is_finite())
        .fold(1.0f64, |m, &c| m.max(c.abs()));
    let n = rows;
    let m = cols.max(rows); // pad columns so every row can be matched
    let big = 1.0 + 2.0 * (n as f64) * max_abs;
    let at = |i: usize, j: usize| -> f64 {
        if j >= cols {
            return big;
        }
        let c = cost[i][j];
        if c.is_finite() {
            c
        } else {
            big
        }
    };

    // Kuhn's algorithm with potentials, 1-indexed (index 0 is the
    // virtual free row/column).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut matched = vec![0usize; m + 1]; // column -> row (0 = free)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        matched[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = matched[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = at(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[matched[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path back to the free column.
        loop {
            let j1 = way[j0];
            matched[j0] = matched[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; rows];
    let mut total_cost = 0.0;
    for (j, &i) in matched.iter().enumerate().skip(1) {
        if i == 0 {
            continue;
        }
        let (row, col) = (i - 1, j - 1);
        // Sentinel edges are padding or infeasible pairs: unmatched.
        if col < cols && cost[row][col].is_finite() {
            row_to_col[row] = Some(col);
            total_cost += cost[row][col];
        }
    }
    Assignment {
        row_to_col,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::{assign_min_cost, Assignment};
    use proptest::prelude::*;

    /// Exhaustive reference: maximum-cardinality, then minimum-cost,
    /// matching by trying every row→(column | skip) injection.
    fn brute_force(cost: &[Vec<f64>]) -> (usize, f64) {
        let cols = cost.first().map_or(0, Vec::len);
        fn go(cost: &[Vec<f64>], row: usize, taken: &mut Vec<bool>, best: &mut (usize, f64), cur: (usize, f64)) {
            if row == cost.len() {
                if cur.0 > best.0 || (cur.0 == best.0 && cur.1 < best.1) {
                    *best = cur;
                }
                return;
            }
            go(cost, row + 1, taken, best, cur); // leave this row out
            for col in 0..taken.len() {
                if !taken[col] && cost[row][col].is_finite() {
                    taken[col] = true;
                    go(cost, row + 1, taken, best, (cur.0 + 1, cur.1 + cost[row][col]));
                    taken[col] = false;
                }
            }
        }
        let mut best = (0usize, f64::INFINITY);
        go(cost, 0, &mut vec![false; cols], &mut best, (0, 0.0));
        if best.0 == 0 {
            best.1 = 0.0;
        }
        (best.0, best.1)
    }

    fn check_valid(cost: &[Vec<f64>], a: &Assignment) {
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0;
        for (i, c) in a.row_to_col.iter().enumerate() {
            if let Some(j) = *c {
                assert!(seen.insert(j), "column {j} assigned twice");
                assert!(cost[i][j].is_finite(), "infeasible edge used");
                sum += cost[i][j];
            }
        }
        assert!((sum - a.total_cost).abs() < 1e-9);
    }

    #[test]
    fn trivial_cases() {
        let a = assign_min_cost(&[]);
        assert_eq!(a.row_to_col, Vec::<Option<usize>>::new());
        let a = assign_min_cost(&[vec![], vec![]]);
        assert_eq!(a.row_to_col, vec![None, None]);
        let a = assign_min_cost(&[vec![3.0]]);
        assert_eq!(a.row_to_col, vec![Some(0)]);
        assert_eq!(a.total_cost, 3.0);
    }

    #[test]
    fn picks_the_cheaper_cross_assignment() {
        // Greedy (row 0 takes its min, col 0) would cost 1 + 10 = 11;
        // the optimum crosses over for 2 + 1 = 3.
        let cost = vec![vec![1.0, 2.0], vec![1.0, 10.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(a.matched(), 2);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
        assert!((a.total_cost - 3.0).abs() < 1e-9, "cost {}", a.total_cost);
    }

    #[test]
    fn infeasible_rows_stay_unmatched() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![5.0, 1.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(a.row_to_col[0], None);
        assert_eq!(a.row_to_col[1], Some(1));
        assert_eq!(a.total_cost, 1.0);
    }

    #[test]
    fn more_rows_than_columns_drops_the_costliest() {
        let cost = vec![vec![9.0], vec![1.0], vec![5.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(a.row_to_col, vec![None, Some(0), None]);
        assert_eq!(a.total_cost, 1.0);
    }

    #[test]
    fn negative_costs_are_handled_exactly() {
        let cost = vec![vec![-5.0, 2.0], vec![-4.0, -10.0]];
        let a = assign_min_cost(&cost);
        let (bc, bcost) = brute_force(&cost);
        assert_eq!(a.matched(), bc);
        assert!((a.total_cost - bcost).abs() < 1e-9);
    }

    fn arb_cost(max_dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
            prop::collection::vec(
                prop::collection::vec(
                    prop_oneof![
                        4 => (-100i32..=100).prop_map(|v| v as f64 / 2.0),
                        1 => Just(f64::INFINITY),
                    ],
                    c,
                ),
                r,
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The matcher agrees with exhaustive search on cardinality and
        /// total cost for every matrix up to 6×6, including rectangular
        /// shapes and infeasible edges.
        #[test]
        fn matches_brute_force(cost in arb_cost(6)) {
            let a = assign_min_cost(&cost);
            check_valid(&cost, &a);
            let (bc, bcost) = brute_force(&cost);
            prop_assert_eq!(a.matched(), bc, "cardinality");
            prop_assert!((a.total_cost - bcost).abs() < 1e-6,
                "cost {} vs brute {}", a.total_cost, bcost);
        }
    }
}
