//! Random forest regression: bagged CART trees with per-split feature
//! subsampling, fitted in parallel with Rayon. Fully deterministic given
//! the forest seed (per-tree seeds are derived, independent of thread
//! scheduling).

use crate::model::Regressor;
use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Random forest hyperparameters and fitted state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. `feature_subsample: None` considers every
    /// feature at every split (the usual regression-forest default).
    pub tree_config: TreeConfig,
    /// Forest seed.
    pub seed: u64,
    trees: Vec<RegressionTree>,
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 40,
            tree_config: TreeConfig::default(),
            seed: 0,
            trees: Vec::new(),
        }
    }
}

impl RandomForest {
    /// Default forest with an explicit seed.
    pub fn with_seed(seed: u64) -> RandomForest {
        RandomForest {
            seed,
            ..Default::default()
        }
    }

    /// Builder: set the number of trees.
    pub fn with_trees(mut self, n: usize) -> RandomForest {
        self.n_trees = n.max(1);
        self
    }

    /// Number of fitted trees (0 before fit).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let n = x.len();
        // Regression forests default to considering every feature per split
        // (bagging alone decorrelates); callers can opt into subsampling
        // via `tree_config.feature_subsample`.
        let cfg = self.tree_config;
        let seed = self.seed;
        self.trees = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                // Derive a stable per-tree seed.
                let tree_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t as u64);
                let mut rng = StdRng::seed_from_u64(tree_seed);
                let bootstrap: Vec<usize> =
                    (0..n).map(|_| rng.random_range(0..n)).collect();
                RegressionTree::fit(x, y, &bootstrap, cfg, rng.random())
            })
            .collect();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::rmse;

    fn wavy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![i as f64 / 300.0, ((i * 13) % 300) as f64 / 300.0])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| (6.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(3);
        f.fit(&x, &y);
        let pred = f.predict(&x);
        assert!(rmse(&y, &pred) < 0.15, "rmse {}", rmse(&y, &pred));
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = wavy();
        let mut a = RandomForest::with_seed(9);
        let mut b = RandomForest::with_seed(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.iter().take(20) {
            assert_eq!(a.predict_row(row), b.predict_row(row));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = wavy();
        let mut a = RandomForest::with_seed(1);
        let mut b = RandomForest::with_seed(2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        let differs = x
            .iter()
            .take(50)
            .any(|r| a.predict_row(r) != b.predict_row(r));
        assert!(differs);
    }

    #[test]
    fn prediction_within_target_range() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(5);
        f.fit(&x, &y);
        let (lo, hi) = y
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for row in x.iter().take(50) {
            let p = f.predict_row(row);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "tree means cannot extrapolate");
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = wavy();
        let mut f = RandomForest {
            n_trees: 7,
            ..RandomForest::with_seed(0)
        };
        f.fit(&x, &y);
        assert_eq!(f.tree_count(), 7);
    }

    #[test]
    fn single_sample_dataset() {
        let mut f = RandomForest::with_seed(0);
        f.fit(&[vec![1.0, 2.0]], &[5.0]);
        assert_eq!(f.predict_row(&[9.0, 9.0]), 5.0);
    }
}
