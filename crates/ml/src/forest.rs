//! Random forest regression: bagged CART trees with per-split feature
//! subsampling, fitted in parallel with Rayon. Fully deterministic given
//! the forest seed (per-tree seeds are derived, independent of thread
//! scheduling).
//!
//! Batched prediction runs on a [`FlatForest`]: every tree's node arena
//! flattened into shared struct-of-arrays storage (feature index,
//! threshold, children, leaf value), traversed iteratively with no
//! per-node pointer chasing. The flat layout is derived state — built at
//! fit time and rebuilt lazily after deserialization — so the serialized
//! forest format is unchanged.

use crate::batch::FeatureMatrix;
use crate::model::Regressor;
use crate::train::{TrainMatrix, TreeScratch};
use crate::tree::{Node, RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Sentinel feature index marking a leaf in the flat layout.
const LEAF: u32 = u32::MAX;

/// A forest flattened into struct-of-arrays form for batched traversal.
///
/// All trees share four parallel arrays indexed by a global node id:
/// `feature[i]` is the split feature (or [`LEAF`]), `threshold[i]` the
/// split threshold, `left[i]`/`right[i]` the child ids, and `value[i]`
/// the leaf value. `roots` holds each tree's root id. Every threshold and
/// leaf value is copied bit-for-bit from the boxed tree, and trees are
/// visited in fit order, so a flat prediction is bitwise identical to the
/// per-tree reference path.
#[derive(Debug, Clone, Default)]
pub struct FlatForest {
    roots: Vec<u32>,
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    value: Vec<f64>,
}

impl FlatForest {
    /// Flatten fitted trees into SoA storage.
    pub(crate) fn from_trees(trees: &[RegressionTree]) -> FlatForest {
        let total: usize = trees.iter().map(RegressionTree::node_count).sum();
        let mut flat = FlatForest {
            roots: Vec::with_capacity(trees.len()),
            feature: Vec::with_capacity(total),
            threshold: Vec::with_capacity(total),
            left: Vec::with_capacity(total),
            right: Vec::with_capacity(total),
            value: Vec::with_capacity(total),
        };
        for tree in trees {
            let base = flat.feature.len() as u32;
            flat.roots.push(base);
            for node in tree.nodes() {
                match node {
                    Node::Leaf { value } => {
                        flat.feature.push(LEAF);
                        flat.threshold.push(0.0);
                        flat.left.push(0);
                        flat.right.push(0);
                        flat.value.push(*value);
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        flat.feature.push(*feature as u32);
                        flat.threshold.push(*threshold);
                        flat.left.push(base + *left as u32);
                        flat.right.push(base + *right as u32);
                        flat.value.push(0.0);
                    }
                }
            }
        }
        flat
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total flattened nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Mean leaf value over all trees for one row — the forest prediction.
    /// Trees accumulate in fit order from 0.0 and divide by the tree
    /// count, exactly like the per-tree reference path.
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            let mut at = root as usize;
            loop {
                let f = self.feature[at];
                if f == LEAF {
                    acc += self.value[at];
                    break;
                }
                at = if row[f as usize] <= self.threshold[at] {
                    self.left[at] as usize
                } else {
                    self.right[at] as usize
                };
            }
        }
        acc / self.roots.len() as f64
    }
}

/// Random forest hyperparameters and fitted state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. `feature_subsample: None` considers every
    /// feature at every split (the usual regression-forest default).
    pub tree_config: TreeConfig,
    /// Forest seed.
    pub seed: u64,
    trees: Vec<RegressionTree>,
    /// Derived SoA layout: primed at fit time, rebuilt lazily after
    /// deserialization. Never serialized, never compared.
    #[serde(skip)]
    flat: OnceLock<FlatForest>,
}

// `flat` is a cache of `trees`; equality is over the fitted state only,
// so a freshly deserialized forest (flat unset) equals its source.
impl PartialEq for RandomForest {
    fn eq(&self, other: &Self) -> bool {
        self.n_trees == other.n_trees
            && self.tree_config == other.tree_config
            && self.seed == other.seed
            && self.trees == other.trees
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        RandomForest {
            n_trees: 40,
            tree_config: TreeConfig::default(),
            seed: 0,
            trees: Vec::new(),
            flat: OnceLock::new(),
        }
    }
}

impl RandomForest {
    /// Default forest with an explicit seed.
    pub fn with_seed(seed: u64) -> RandomForest {
        RandomForest {
            seed,
            ..Default::default()
        }
    }

    /// Builder: set the number of trees.
    pub fn with_trees(mut self, n: usize) -> RandomForest {
        self.n_trees = n.max(1);
        self
    }

    /// Number of fitted trees (0 before fit).
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Build the derived SoA layout from the fitted trees — the **one**
    /// constructor both the eager (fit-time) and lazy (post-deserialize)
    /// paths share.
    fn rebuild_flat(&self) -> FlatForest {
        FlatForest::from_trees(&self.trees)
    }

    /// The flattened SoA view of the fitted trees, built on first use
    /// (deserialized forests arrive without it) and cached.
    pub fn flat(&self) -> &FlatForest {
        self.flat.get_or_init(|| self.rebuild_flat())
    }

    /// Ensure the flat layout exists; returns `true` when it had to be
    /// rebuilt (i.e. the forest arrived without its derived cache, as
    /// after deserialization). The runtime's model store counts these.
    pub fn prime_flat(&self) -> bool {
        let mut rebuilt = false;
        self.flat.get_or_init(|| {
            rebuilt = true;
            self.rebuild_flat()
        });
        rebuilt
    }

    /// Fit over a prebuilt flat matrix: per-worker bootstrap buffers and
    /// [`TreeScratch`] arenas are reused across every tree that worker
    /// fits, and each tree uses the pre-sorted-columns builder. Bitwise
    /// identical to [`fit_reference`](RandomForest::fit_reference).
    pub fn fit_flat(&mut self, m: &TrainMatrix, y: &[f64]) {
        assert!(m.n_rows() > 0, "cannot fit to an empty dataset");
        assert_eq!(m.n_rows(), y.len());
        let n = m.n_rows();
        let cfg = self.tree_config;
        let seed = self.seed;
        self.trees = (0..self.n_trees)
            .into_par_iter()
            .map_init(
                || (Vec::<usize>::new(), TreeScratch::default()),
                |(bootstrap, scratch), t| {
                    // Derive a stable per-tree seed.
                    let tree_seed = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(t as u64);
                    let mut rng = StdRng::seed_from_u64(tree_seed);
                    bootstrap.clear();
                    bootstrap.extend((0..n).map(|_| rng.random_range(0..n)));
                    RegressionTree::fit_flat(m, y, bootstrap, cfg, rng.random(), scratch)
                },
            )
            .collect();
        self.flat = OnceLock::new();
        let _ = self.flat.set(self.rebuild_flat());
    }

    /// The original training path (per-tree allocations, per-node sorts
    /// over ragged rows), kept as the bit-identity oracle for
    /// [`fit_flat`](RandomForest::fit_flat).
    pub fn fit_reference(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let n = x.len();
        let cfg = self.tree_config;
        let seed = self.seed;
        self.trees = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let tree_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t as u64);
                let mut rng = StdRng::seed_from_u64(tree_seed);
                let bootstrap: Vec<usize> =
                    (0..n).map(|_| rng.random_range(0..n)).collect();
                RegressionTree::fit_reference(x, y, &bootstrap, cfg, rng.random())
            })
            .collect();
        self.flat = OnceLock::new();
        let _ = self.flat.set(self.rebuild_flat());
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        // Regression forests default to considering every feature per split
        // (bagging alone decorrelates); callers can opt into subsampling
        // via `tree_config.feature_subsample`.
        let m = TrainMatrix::from_rows(x);
        self.fit_flat(&m, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict before fit");
        let flat = self.flat();
        x.iter_rows().map(|row| flat.predict_row(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::rmse;

    fn wavy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![i as f64 / 300.0, ((i * 13) % 300) as f64 / 300.0])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| (6.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(3);
        f.fit(&x, &y);
        let pred = f.predict(&x);
        assert!(rmse(&y, &pred) < 0.15, "rmse {}", rmse(&y, &pred));
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = wavy();
        let mut a = RandomForest::with_seed(9);
        let mut b = RandomForest::with_seed(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.iter().take(20) {
            assert_eq!(a.predict_row(row), b.predict_row(row));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = wavy();
        let mut a = RandomForest::with_seed(1);
        let mut b = RandomForest::with_seed(2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        let differs = x
            .iter()
            .take(50)
            .any(|r| a.predict_row(r) != b.predict_row(r));
        assert!(differs);
    }

    #[test]
    fn prediction_within_target_range() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(5);
        f.fit(&x, &y);
        let (lo, hi) = y
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for row in x.iter().take(50) {
            let p = f.predict_row(row);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "tree means cannot extrapolate");
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = wavy();
        let mut f = RandomForest {
            n_trees: 7,
            ..RandomForest::with_seed(0)
        };
        f.fit(&x, &y);
        assert_eq!(f.tree_count(), 7);
    }

    #[test]
    fn single_sample_dataset() {
        let mut f = RandomForest::with_seed(0);
        f.fit(&[vec![1.0, 2.0]], &[5.0]);
        assert_eq!(f.predict_row(&[9.0, 9.0]), 5.0);
    }

    #[test]
    fn flat_forest_is_bitwise_identical_to_boxed_trees() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(11).with_trees(12);
        f.fit(&x, &y);
        let flat = f.flat();
        assert_eq!(flat.tree_count(), 12);
        assert!(flat.node_count() >= flat.tree_count());
        for row in &x {
            assert_eq!(flat.predict_row(row).to_bits(), f.predict_row(row).to_bits());
        }
        let m = FeatureMatrix::from_rows(&x);
        let batch = f.predict_batch(&m);
        for (i, row) in x.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), f.predict_row(row).to_bits());
        }
    }

    #[test]
    fn flat_fit_matches_reference_bitwise() {
        let (x, y) = wavy();
        let mut flat = RandomForest::with_seed(21).with_trees(10);
        flat.fit(&x, &y);
        let mut reference = RandomForest::with_seed(21).with_trees(10);
        reference.fit_reference(&x, &y);
        assert_eq!(flat, reference);
        for row in x.iter().take(30) {
            assert_eq!(
                flat.predict_row(row).to_bits(),
                reference.predict_row(row).to_bits()
            );
        }
    }

    #[test]
    fn prime_flat_reports_rebuilds() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(4).with_trees(5);
        f.fit(&x, &y);
        // Fit primes the cache eagerly, so priming again is a no-op.
        assert!(!f.prime_flat());
        let fresh = RandomForest {
            n_trees: f.n_trees,
            tree_config: f.tree_config,
            seed: f.seed,
            trees: f.trees.clone(),
            flat: OnceLock::new(),
        };
        assert!(fresh.prime_flat(), "unprimed forest must rebuild");
        assert!(!fresh.prime_flat(), "second prime must hit the cache");
    }

    #[test]
    fn flat_forest_rebuilds_after_clone_without_cache() {
        let (x, y) = wavy();
        let mut f = RandomForest::with_seed(4).with_trees(6);
        f.fit(&x, &y);
        // A forest whose cache was never primed (as after deserialization)
        // must lazily rebuild an identical flat layout.
        let fresh = RandomForest {
            n_trees: f.n_trees,
            tree_config: f.tree_config,
            seed: f.seed,
            trees: f.trees.clone(),
            flat: OnceLock::new(),
        };
        assert_eq!(f, fresh);
        for row in x.iter().take(25) {
            assert_eq!(fresh.flat().predict_row(row), f.predict_row(row));
        }
    }
}
