//! Minimal dense linear algebra for the regression models: a row-major
//! matrix, normal-equation assembly, and a Cholesky solver for symmetric
//! positive-definite systems (with a ridge jitter fallback so nearly
//! collinear feature sets still solve).

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from already-flat row-major storage (`rows × cols` values).
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "flat data has the wrong length");
        Matrix { rows, cols, data }
    }

    /// Build from a row iterator; every row must have `cols` entries.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Gram matrix `XᵀX` (symmetric, cols × cols).
    // Triangular index ranges express the symmetry directly; iterator
    // adaptors would obscure the j >= i structure.
    #[allow(clippy::needless_range_loop)]
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for row in 0..self.rows {
            let r = self.row(row);
            for i in 0..d {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..d {
                    let v = ri * r[j];
                    g.data[i * d + j] += v;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in 0..i {
                g.data[i * d + j] = g.data[j * d + i];
            }
        }
        g
    }

    /// `Xᵀy` as a vector.
    pub fn t_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            let r = self.row(row);
            for (o, &x) in out.iter_mut().zip(r) {
                *o += x * yi;
            }
        }
        out
    }
}

/// Solve the SPD system `A x = b` by Cholesky factorization. When `A` is
/// singular or indefinite (collinear features), retry with growing ridge
/// jitter on the diagonal. Panics only if the system stays unsolvable after
/// heavy regularization (numerically impossible for Gram matrices).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), a.cols(), "solve_spd needs a square matrix");
    assert_eq!(b.len(), a.rows());
    let n = a.rows();
    let mut jitter = 0.0;
    let scale = (0..n).map(|i| a.get(i, i)).fold(0.0f64, f64::max).max(1e-30);
    for _attempt in 0..12 {
        if let Some(l) = cholesky(a, jitter) {
            return cholesky_solve(&l, b);
        }
        jitter = if jitter == 0.0 {
            scale * 1e-12
        } else {
            jitter * 100.0
        };
    }
    panic!("solve_spd: matrix is not SPD even with ridge {jitter:e}");
}

/// Lower-triangular Cholesky factor of `A + jitter·I`, or `None` when the
/// factorization breaks down.
fn cholesky(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `L Lᵀ x = b` given the Cholesky factor `L`.
#[allow(clippy::needless_range_loop)] // triangular solves index by k < i / k > i
fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward: L z = b
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l.get(i, k) * z[k];
        }
        z[i] = s / l.get(i, i);
    }
    // Backward: Lᵀ x = z
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = z[i];
        for k in (i + 1)..n {
            s -= l.get(k, i) * x[k];
        }
        x[i] = s / l.get(i, i);
    }
    x
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_and_tmulvec() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = x.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let v = x.t_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![9.0, 12.0]);
    }

    #[test]
    fn solves_well_conditioned_system() {
        // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let x = solve_spd(&a, &[10.0, 8.0]);
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn singular_system_solved_with_jitter() {
        // Perfectly collinear columns: rank 1.
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let g = x.gram();
        let b = x.t_mul_vec(&[1.0, 2.0, 3.0]);
        let w = solve_spd(&g, &b);
        // The ridge solution still reproduces the targets.
        for (row, y) in [(vec![1.0, 2.0], 1.0), (vec![3.0, 6.0], 3.0)] {
            let pred = dot(&row, &w);
            assert!((pred - y).abs() < 1e-3, "pred {pred} vs {y}");
        }
    }

    #[test]
    fn least_squares_recovers_coefficients() {
        // y = 3 x0 - 2 x1 + noiseless
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let a = (i as f64 * 0.37).sin();
                let b = (i as f64 * 0.73).cos();
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let w = solve_spd(&x.gram(), &x.t_mul_vec(&y));
        assert!((w[0] - 3.0).abs() < 1e-9);
        assert!((w[1] + 2.0).abs() < 1e-9);
    }

    #[test]
    fn dot_and_sq_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
