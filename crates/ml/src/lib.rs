//! # synergy-ml
//!
//! From-scratch regression models for the SYnergy modeling methodology
//! (Section 6): linear regression, Lasso, random forest, and ε-SVR with an
//! RBF kernel, plus datasets, standardization, prediction-error metrics
//! (APE / MAPE / RMSE) and the four single-target metric models
//! (time, energy, EDP, ED2P) of Figure 6.
//!
//! No external ML dependencies: a small dense-linear-algebra module, CART
//! trees, coordinate-descent solvers. Every algorithm is deterministic
//! given its seed, including the Rayon-parallel random forest.

#![warn(missing_docs)]

pub mod batch;
pub mod cv;
pub mod data;
pub mod errors;
pub mod forest;
pub mod lasso;
pub mod linalg;
pub mod linear;
pub mod model;
pub mod pipeline;
pub mod svr;
pub mod train;
pub mod tree;

pub use batch::FeatureMatrix;
pub use cv::{compare_algorithms, cross_validate, kfold_assignment, select_algorithm, CvScore};
pub use data::{Dataset, StandardScaler, TargetScaler};
pub use errors::{ape, mape, r2, rmse};
pub use forest::{FlatForest, RandomForest};
pub use lasso::Lasso;
pub use linear::LinearRegression;
pub use model::{Algorithm, Regressor, TrainedRegressor};
pub use pipeline::{
    input_matrix, input_row, MetricModels, ModelSelection, PredictedMetrics, SweepSample,
};
pub use svr::SvrRbf;
pub use train::{TrainMatrix, TreeScratch};
pub use tree::{RegressionTree, TreeConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_xy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
        // Linear ground truth with bounded coefficients, 2-4 features.
        (2usize..5, 10usize..60).prop_flat_map(|(d, n)| {
            (
                prop::collection::vec(-5.0f64..5.0, d),
                -5.0f64..5.0,
                Just(d),
                Just(n),
            )
                .prop_map(|(coef, intercept, d, n)| {
                    let x: Vec<Vec<f64>> = (0..n)
                        .map(|i| {
                            (0..d)
                                .map(|j| ((i * (j + 3) * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                                .collect()
                        })
                        .collect();
                    let y: Vec<f64> = x
                        .iter()
                        .map(|r| {
                            r.iter().zip(&coef).map(|(a, b)| a * b).sum::<f64>() + intercept
                        })
                        .collect();
                    (x, y)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// OLS reproduces noiseless linear data to near machine precision.
        #[test]
        fn ols_exact_on_linear_data((x, y) in arb_xy()) {
            let mut m = LinearRegression::default();
            m.fit(&x, &y);
            let spread = y.iter().cloned().fold(f64::MIN, f64::max)
                - y.iter().cloned().fold(f64::MAX, f64::min);
            let tol = 1e-6 * spread.max(1.0);
            for (row, &want) in x.iter().zip(&y) {
                prop_assert!((m.predict_row(row) - want).abs() < tol);
            }
        }

        /// Error metrics are non-negative and zero on perfect predictions.
        #[test]
        fn error_metrics_sane(ys in prop::collection::vec(0.1f64..100.0, 1..30)) {
            prop_assert_eq!(mape(&ys, &ys), 0.0);
            prop_assert_eq!(rmse(&ys, &ys), 0.0);
            let shifted: Vec<f64> = ys.iter().map(|v| v + 1.0).collect();
            prop_assert!(mape(&ys, &shifted) > 0.0);
            prop_assert!(rmse(&ys, &shifted) > 0.0);
        }

        /// Forest predictions stay within the convex hull of targets.
        #[test]
        fn forest_bounded_by_targets((x, y) in arb_xy()) {
            let mut f = RandomForest::with_seed(1).with_trees(8);
            f.fit(&x, &y);
            let lo = y.iter().cloned().fold(f64::MAX, f64::min);
            let hi = y.iter().cloned().fold(f64::MIN, f64::max);
            for row in &x {
                let p = f.predict_row(row);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        /// Scaler transform is invertible in distribution: transformed
        /// data has mean ~0 and the original column stds are preserved.
        #[test]
        fn scaler_is_affine((x, _y) in arb_xy()) {
            let sc = StandardScaler::fit(&x);
            let t = sc.transform(&x);
            for j in 0..x[0].len() {
                let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
                prop_assert!(mean.abs() < 1e-9);
            }
        }

        /// The batched fast path of every algorithm is bitwise identical
        /// to the per-row reference path, on the training rows and on a
        /// derived out-of-sample matrix.
        #[test]
        fn predict_batch_bitwise_identical_to_predict_row(
            (x, y) in arb_xy(),
            seed in 0u64..1000,
        ) {
            // Probe rows the models never saw: shifted and scaled copies.
            let probes: Vec<Vec<f64>> = x
                .iter()
                .map(|r| r.iter().map(|v| v * 1.37 - 0.21).collect())
                .collect();
            for rows in [&x, &probes] {
                let matrix = FeatureMatrix::from_rows(rows);
                for algo in Algorithm::ALL {
                    let m = TrainedRegressor::fit(algo, seed, &x, &y);
                    let batch = m.predict_batch(&matrix);
                    prop_assert_eq!(batch.len(), rows.len());
                    for (row, got) in rows.iter().zip(&batch) {
                        let reference = m.predict_row(row);
                        prop_assert_eq!(
                            got.to_bits(),
                            reference.to_bits(),
                            "{}: batch {} != per-row {}",
                            algo, got, reference
                        );
                    }
                }
            }
        }

        /// The flat training engine is bitwise identical to the original
        /// per-algorithm reference fits, for all four algorithms: equal
        /// as models (every learned parameter) and in prediction bits.
        #[test]
        fn fit_flat_bitwise_identical_to_fit_reference(
            (x, y) in arb_xy(),
            seed in 0u64..1000,
        ) {
            for algo in Algorithm::ALL {
                let flat = TrainedRegressor::fit(algo, seed, &x, &y);
                let reference = TrainedRegressor::fit_reference(algo, seed, &x, &y);
                prop_assert_eq!(&flat, &reference, "{} models differ", algo);
                for row in &x {
                    prop_assert_eq!(
                        flat.predict_row(row).to_bits(),
                        reference.predict_row(row).to_bits(),
                        "{} prediction differs on {:?}", algo, row
                    );
                }
            }
        }

        /// The batched sweep of the trained metric-model bundle matches
        /// the per-configuration reference bit for bit.
        #[test]
        fn sweep_batch_bitwise_identical(
            (x, _y) in arb_xy(),
            seed in 0u64..100,
        ) {
            let f_max = 1500.0;
            let samples: Vec<SweepSample> = x
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let core = 400.0 + (i as f64 * 193.0) % 1100.0;
                    SweepSample {
                        features: r.iter().map(|v| v.abs() * 8.0).collect(),
                        core_mhz: core,
                        mem_mhz: 877.0,
                        time_s: 0.1 + 1500.0 / core,
                        energy_j: 0.2 + core / 1500.0,
                    }
                })
                .collect();
            let models = MetricModels::train(ModelSelection::paper_best(), &samples, f_max, seed);
            let clocks: Vec<(f64, f64)> = samples
                .iter()
                .map(|s| (s.core_mhz, s.mem_mhz))
                .collect();
            let features = &samples[0].features;
            let batch = models.predict_sweep_batch(features, &clocks);
            for (p, &(core, mem)) in batch.iter().zip(&clocks) {
                let q = models.predict(features, core, mem);
                prop_assert_eq!(p.time_s.to_bits(), q.time_s.to_bits());
                prop_assert_eq!(p.energy_j.to_bits(), q.energy_j.to_bits());
                prop_assert_eq!(p.edp.to_bits(), q.edp.to_bits());
                prop_assert_eq!(p.ed2p.to_bits(), q.ed2p.to_bits());
            }
        }
    }
}

#[cfg(test)]
mod degenerate_identity {
    //! Flat-vs-reference bit-identity on the datasets where tie handling
    //! and empty splits are most likely to diverge: constant columns,
    //! duplicated rows, all-zero features, and a single sample.

    use super::*;

    fn check_all(x: &[Vec<f64>], y: &[f64]) {
        for algo in Algorithm::ALL {
            for seed in [0u64, 7] {
                let flat = TrainedRegressor::fit(algo, seed, x, y);
                let reference = TrainedRegressor::fit_reference(algo, seed, x, y);
                assert_eq!(flat, reference, "{algo} seed {seed}");
                for row in x {
                    assert_eq!(
                        flat.predict_row(row).to_bits(),
                        reference.predict_row(row).to_bits(),
                        "{algo} seed {seed} row {row:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_columns() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0, i as f64, -1.5]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i % 5) as f64).collect();
        check_all(&x, &y);
    }

    #[test]
    fn duplicate_rows_and_tied_values() {
        let x: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 3) as f64, ((i / 3) % 2) as f64])
            .collect();
        let y: Vec<f64> = (0..24).map(|i| (i % 4) as f64 * 0.25).collect();
        check_all(&x, &y);
    }

    #[test]
    fn single_row() {
        check_all(&[vec![1.0, 2.0]], &[3.5]);
    }

    #[test]
    fn all_zero_features() {
        let x = vec![vec![0.0, 0.0]; 8];
        let y: Vec<f64> = (0..8).map(|i| i as f64).collect();
        check_all(&x, &y);
    }
}
