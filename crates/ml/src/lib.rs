//! # synergy-ml
//!
//! From-scratch regression models for the SYnergy modeling methodology
//! (Section 6): linear regression, Lasso, random forest, and ε-SVR with an
//! RBF kernel, plus datasets, standardization, prediction-error metrics
//! (APE / MAPE / RMSE) and the four single-target metric models
//! (time, energy, EDP, ED2P) of Figure 6.
//!
//! No external ML dependencies: a small dense-linear-algebra module, CART
//! trees, coordinate-descent solvers. Every algorithm is deterministic
//! given its seed, including the Rayon-parallel random forest.

#![warn(missing_docs)]

pub mod cv;
pub mod data;
pub mod errors;
pub mod forest;
pub mod lasso;
pub mod linalg;
pub mod linear;
pub mod model;
pub mod pipeline;
pub mod svr;
pub mod tree;

pub use cv::{compare_algorithms, cross_validate, kfold_assignment, select_algorithm, CvScore};
pub use data::{Dataset, StandardScaler, TargetScaler};
pub use errors::{ape, mape, r2, rmse};
pub use forest::RandomForest;
pub use lasso::Lasso;
pub use linear::LinearRegression;
pub use model::{Algorithm, Regressor, TrainedRegressor};
pub use pipeline::{input_row, MetricModels, ModelSelection, PredictedMetrics, SweepSample};
pub use svr::SvrRbf;
pub use tree::{RegressionTree, TreeConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_xy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
        // Linear ground truth with bounded coefficients, 2-4 features.
        (2usize..5, 10usize..60).prop_flat_map(|(d, n)| {
            (
                prop::collection::vec(-5.0f64..5.0, d),
                -5.0f64..5.0,
                Just(d),
                Just(n),
            )
                .prop_map(|(coef, intercept, d, n)| {
                    let x: Vec<Vec<f64>> = (0..n)
                        .map(|i| {
                            (0..d)
                                .map(|j| ((i * (j + 3) * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                                .collect()
                        })
                        .collect();
                    let y: Vec<f64> = x
                        .iter()
                        .map(|r| {
                            r.iter().zip(&coef).map(|(a, b)| a * b).sum::<f64>() + intercept
                        })
                        .collect();
                    (x, y)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// OLS reproduces noiseless linear data to near machine precision.
        #[test]
        fn ols_exact_on_linear_data((x, y) in arb_xy()) {
            let mut m = LinearRegression::default();
            m.fit(&x, &y);
            let spread = y.iter().cloned().fold(f64::MIN, f64::max)
                - y.iter().cloned().fold(f64::MAX, f64::min);
            let tol = 1e-6 * spread.max(1.0);
            for (row, &want) in x.iter().zip(&y) {
                prop_assert!((m.predict_row(row) - want).abs() < tol);
            }
        }

        /// Error metrics are non-negative and zero on perfect predictions.
        #[test]
        fn error_metrics_sane(ys in prop::collection::vec(0.1f64..100.0, 1..30)) {
            prop_assert_eq!(mape(&ys, &ys), 0.0);
            prop_assert_eq!(rmse(&ys, &ys), 0.0);
            let shifted: Vec<f64> = ys.iter().map(|v| v + 1.0).collect();
            prop_assert!(mape(&ys, &shifted) > 0.0);
            prop_assert!(rmse(&ys, &shifted) > 0.0);
        }

        /// Forest predictions stay within the convex hull of targets.
        #[test]
        fn forest_bounded_by_targets((x, y) in arb_xy()) {
            let mut f = RandomForest::with_seed(1).with_trees(8);
            f.fit(&x, &y);
            let lo = y.iter().cloned().fold(f64::MAX, f64::min);
            let hi = y.iter().cloned().fold(f64::MIN, f64::max);
            for row in &x {
                let p = f.predict_row(row);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }
        }

        /// Scaler transform is invertible in distribution: transformed
        /// data has mean ~0 and the original column stds are preserved.
        #[test]
        fn scaler_is_affine((x, _y) in arb_xy()) {
            let sc = StandardScaler::fit(&x);
            let t = sc.transform(&x);
            for j in 0..x[0].len() {
                let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
                prop_assert!(mean.abs() < 1e-9);
            }
        }
    }
}
