//! The four single-target metric models of the paper's Figure 6:
//! execution time `F_t(k, f)`, energy `F_e(k, f)`, EDP `F_edp(k, f)` and
//! ED2P `F_ed2p(k, f)`, trained on micro-benchmark frequency sweeps and
//! queried per (kernel-features, frequency) pair.
//!
//! The input row is a basis expansion of `(k, f)` that lets even the linear
//! models capture the leading physics: compute time is `Σ a_i k_i / f`, so
//! the expansion contains each feature both raw and divided by the
//! normalized core clock, plus the clock, its inverse, and the memory-clock
//! ratio.

use crate::batch::FeatureMatrix;
use crate::model::{Algorithm, Regressor, TrainedRegressor};
use crate::train::TrainMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One training observation: a kernel's features, the clocks it ran at,
/// and its measured per-item time and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSample {
    /// Static feature vector (Table 1), any fixed width.
    pub features: Vec<f64>,
    /// Core clock in MHz.
    pub core_mhz: f64,
    /// Memory clock in MHz.
    pub mem_mhz: f64,
    /// Measured execution time (seconds; normalize per-item upstream for
    /// cross-kernel training).
    pub time_s: f64,
    /// Measured energy (joules; same normalization note).
    pub energy_j: f64,
}

/// Predicted metric values for one (kernel, frequency) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedMetrics {
    /// Predicted time (seconds).
    pub time_s: f64,
    /// Predicted energy (joules).
    pub energy_j: f64,
    /// Predicted energy-delay product.
    pub edp: f64,
    /// Predicted energy-delay-squared product.
    pub ed2p: f64,
}

/// Which algorithm trains which single-target model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSelection {
    /// Algorithm for the execution-time model.
    pub time: Algorithm,
    /// Algorithm for the energy model.
    pub energy: Algorithm,
    /// Algorithm for the EDP model.
    pub edp: Algorithm,
    /// Algorithm for the ED2P model.
    pub ed2p: Algorithm,
}

impl ModelSelection {
    /// The per-objective winners of the paper's Table 2: Linear for
    /// performance and ED2P, Random Forest for energy and EDP.
    pub fn paper_best() -> ModelSelection {
        ModelSelection {
            time: Algorithm::Linear,
            energy: Algorithm::RandomForest,
            edp: Algorithm::RandomForest,
            ed2p: Algorithm::Linear,
        }
    }

    /// The same algorithm for all four targets (for the accuracy study).
    pub fn uniform(algo: Algorithm) -> ModelSelection {
        ModelSelection {
            time: algo,
            energy: algo,
            edp: algo,
            ed2p: algo,
        }
    }
}

/// Build the expanded model-input row for `(features, clocks)`.
///
/// Targets are trained per-kernel *normalized* (relative to the kernel's
/// default-clock metric), so the inputs must be scale-invariant too: raw
/// instruction counts are converted to **shape fractions** `s_i = k_i/Σk`.
/// The basis then contains each fraction raw and divided by the normalized
/// core clock (letting linear models express the `1/f` compute law per
/// instruction mix), the clock itself and its inverse, the memory-clock
/// ratio, and one log-magnitude term (total work per item — which governs
/// how much fixed launch overhead dilutes the frequency effect).
pub fn input_row(features: &[f64], core_mhz: f64, mem_mhz: f64, f_max_mhz: f64) -> Vec<f64> {
    let fhat = (core_mhz / f_max_mhz).max(1e-6);
    let mem_ratio = if f_max_mhz > 0.0 { mem_mhz / f_max_mhz } else { 0.0 };
    let total: f64 = features.iter().sum();
    let denom = total.max(1e-9);
    let mut row = Vec::with_capacity(features.len() * 2 + 4);
    row.extend(features.iter().map(|&k| k / denom));
    row.extend(features.iter().map(|&k| k / denom / fhat));
    row.push(fhat);
    row.push(1.0 / fhat);
    row.push(mem_ratio);
    row.push((1.0 + total).log10());
    row
}

/// Build the whole model-input grid for one kernel at many clock
/// configurations as a flat [`FeatureMatrix`] — the batched counterpart
/// of calling [`input_row`] once per `(core_mhz, mem_mhz)` pair.
///
/// The kernel-dependent parts of the basis (shape fractions, their total
/// and the log-magnitude term) are computed **once** and replayed into
/// every row; only the clock-dependent columns are evaluated per
/// configuration. Each value is produced by the same operation sequence
/// as `input_row` (`k/denom` cached, then divided by `f̂` — division is
/// left-associative, so the cached fraction is the identical
/// intermediate), making every row bitwise identical to the per-row
/// reference.
pub fn input_matrix(features: &[f64], clocks: &[(f64, f64)], f_max_mhz: f64) -> FeatureMatrix {
    let d = features.len();
    let total: f64 = features.iter().sum();
    let denom = total.max(1e-9);
    let frac: Vec<f64> = features.iter().map(|&k| k / denom).collect();
    let log_total = (1.0 + total).log10();
    let mut m = FeatureMatrix::with_capacity(clocks.len(), 2 * d + 4);
    for &(core_mhz, mem_mhz) in clocks {
        let fhat = (core_mhz / f_max_mhz).max(1e-6);
        let mem_ratio = if f_max_mhz > 0.0 { mem_mhz / f_max_mhz } else { 0.0 };
        let row = m.push_row_uninit();
        row[..d].copy_from_slice(&frac);
        for j in 0..d {
            row[d + j] = frac[j] / fhat;
        }
        row[2 * d] = fhat;
        row[2 * d + 1] = 1.0 / fhat;
        row[2 * d + 2] = mem_ratio;
        row[2 * d + 3] = log_total;
    }
    m
}

/// The four trained single-target models.
///
/// The bundle is a plain value: cloneable, comparable and serde-able, so a
/// trained pipeline can be memoized in memory and persisted to disk (the
/// runtime's `ModelStore` relies on this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricModels {
    selection: ModelSelection,
    f_max_mhz: f64,
    time: TrainedRegressor,
    energy: TrainedRegressor,
    edp: TrainedRegressor,
    ed2p: TrainedRegressor,
}

impl MetricModels {
    /// Train all four models on the sweep samples. The four single-target
    /// fits are independent and run in parallel; per-model seeds are derived
    /// from `seed` alone, so the result is identical to a serial fit.
    ///
    /// `f_max_mhz` is the device's maximum core clock (used to normalize
    /// inputs); `seed` drives any randomized algorithm deterministically.
    pub fn train(
        selection: ModelSelection,
        samples: &[SweepSample],
        f_max_mhz: f64,
        seed: u64,
    ) -> MetricModels {
        assert!(!samples.is_empty(), "cannot train on an empty sweep");
        let x: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| input_row(&s.features, s.core_mhz, s.mem_mhz, f_max_mhz))
            .collect();
        // One flat matrix shared by all four fits.
        let m = TrainMatrix::from_rows(&x);
        let t: Vec<f64> = samples.iter().map(|s| s.time_s).collect();
        let e: Vec<f64> = samples.iter().map(|s| s.energy_j).collect();
        let edp: Vec<f64> = samples.iter().map(|s| s.energy_j * s.time_s).collect();
        let ed2p: Vec<f64> = samples
            .iter()
            .map(|s| s.energy_j * s.time_s * s.time_s)
            .collect();

        let jobs: Vec<(Algorithm, Vec<f64>, u64)> = vec![
            (selection.time, t, 1),
            (selection.energy, e, 2),
            (selection.edp, edp, 3),
            (selection.ed2p, ed2p, 4),
        ];
        let mut fitted: Vec<TrainedRegressor> = jobs
            .into_par_iter()
            .map(|(algo, y, salt)| {
                TrainedRegressor::fit_flat(algo, seed.wrapping_add(salt), &m, &y)
            })
            .collect();
        let ed2p = fitted.pop().expect("four fits");
        let edp = fitted.pop().expect("four fits");
        let energy = fitted.pop().expect("four fits");
        let time = fitted.pop().expect("four fits");
        MetricModels {
            time,
            energy,
            edp,
            ed2p,
            selection,
            f_max_mhz,
        }
    }

    /// [`train`](MetricModels::train) through the original per-algorithm
    /// reference paths — the bit-identity oracle for the flat training
    /// engine, and the baseline the `pipeline_perf` benchmark times the
    /// optimized path against.
    pub fn train_reference(
        selection: ModelSelection,
        samples: &[SweepSample],
        f_max_mhz: f64,
        seed: u64,
    ) -> MetricModels {
        assert!(!samples.is_empty(), "cannot train on an empty sweep");
        let x: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| input_row(&s.features, s.core_mhz, s.mem_mhz, f_max_mhz))
            .collect();
        let t: Vec<f64> = samples.iter().map(|s| s.time_s).collect();
        let e: Vec<f64> = samples.iter().map(|s| s.energy_j).collect();
        let edp: Vec<f64> = samples.iter().map(|s| s.energy_j * s.time_s).collect();
        let ed2p: Vec<f64> = samples
            .iter()
            .map(|s| s.energy_j * s.time_s * s.time_s)
            .collect();

        let jobs: Vec<(Algorithm, Vec<f64>, u64)> = vec![
            (selection.time, t, 1),
            (selection.energy, e, 2),
            (selection.edp, edp, 3),
            (selection.ed2p, ed2p, 4),
        ];
        let mut fitted: Vec<TrainedRegressor> = jobs
            .into_par_iter()
            .map(|(algo, y, salt)| {
                TrainedRegressor::fit_reference(algo, seed.wrapping_add(salt), &x, &y)
            })
            .collect();
        let ed2p = fitted.pop().expect("four fits");
        let edp = fitted.pop().expect("four fits");
        let energy = fitted.pop().expect("four fits");
        let time = fitted.pop().expect("four fits");
        MetricModels {
            time,
            energy,
            edp,
            ed2p,
            selection,
            f_max_mhz,
        }
    }

    /// Rebuild every derived per-model cache (forest SoA layouts, SVR
    /// support sets) that did not survive deserialization; returns how
    /// many models had to rebuild. Freshly trained bundles return 0 —
    /// fit primes the caches eagerly.
    pub fn prime_derived(&self) -> usize {
        let mut rebuilt = 0;
        for (_, r) in self.regressors() {
            let did = match r {
                TrainedRegressor::RandomForest(f) => f.prime_flat(),
                TrainedRegressor::SvrRbf(s) => s.prime_support(),
                TrainedRegressor::Linear(_) | TrainedRegressor::Lasso(_) => false,
            };
            if did {
                rebuilt += 1;
            }
        }
        rebuilt
    }

    /// Predict all four metrics for a kernel at one clock configuration.
    /// Predictions are floored at a tiny positive value — time and energy
    /// are physical quantities.
    pub fn predict(&self, features: &[f64], core_mhz: f64, mem_mhz: f64) -> PredictedMetrics {
        let row = input_row(features, core_mhz, mem_mhz, self.f_max_mhz);
        let floor = 1e-12;
        PredictedMetrics {
            time_s: self.time.predict_row(&row).max(floor),
            energy_j: self.energy.predict_row(&row).max(floor),
            edp: self.edp.predict_row(&row).max(floor),
            ed2p: self.ed2p.predict_row(&row).max(floor),
        }
    }

    /// Predict all four metrics for one kernel across a whole clock grid
    /// in one batched pass: the input matrix is built once
    /// ([`input_matrix`]) and each model's `predict_batch` fast path
    /// streams over it — four model dispatches total instead of four per
    /// configuration, and no per-configuration allocations.
    ///
    /// Output element `i` is bitwise identical to
    /// `self.predict(features, clocks[i].0, clocks[i].1)`.
    pub fn predict_sweep_batch(
        &self,
        features: &[f64],
        clocks: &[(f64, f64)],
    ) -> Vec<PredictedMetrics> {
        let m = input_matrix(features, clocks, self.f_max_mhz);
        let t = self.time.predict_batch(&m);
        let e = self.energy.predict_batch(&m);
        let edp = self.edp.predict_batch(&m);
        let ed2p = self.ed2p.predict_batch(&m);
        let floor = 1e-12;
        (0..clocks.len())
            .map(|i| PredictedMetrics {
                time_s: t[i].max(floor),
                energy_j: e[i].max(floor),
                edp: edp[i].max(floor),
                ed2p: ed2p[i].max(floor),
            })
            .collect()
    }

    /// The algorithm selection this bundle was trained with.
    pub fn selection(&self) -> ModelSelection {
        self.selection
    }

    /// The core-clock normalizer.
    pub fn f_max_mhz(&self) -> f64 {
        self.f_max_mhz
    }

    /// The four trained regressors with their metric names, in
    /// `(time, energy, edp, ed2p)` order — for introspection passes that
    /// audit a trained bundle.
    pub fn regressors(&self) -> [(&'static str, &TrainedRegressor); 4] {
        [
            ("time", &self.time),
            ("energy", &self.energy),
            ("edp", &self.edp),
            ("ed2p", &self.ed2p),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic device-physics generator producing *normalized* targets
    /// (relative to the value at the baseline clock), mirroring how the
    /// SYnergy compile step trains: time = (a·k0 + b·k1)/f̂ + c,
    /// power = p0 + p1·f̂³, energy = power·time, each divided by its value
    /// at f̂ = 0.875.
    fn synth_samples() -> Vec<SweepSample> {
        let raw = |k0: f64, k1: f64, fhat: f64| -> (f64, f64) {
            let time = (0.2 * k0 + 0.1 * k1) / fhat + 0.05;
            let power = 40.0 + 200.0 * fhat * fhat * fhat;
            (time, power * time)
        };
        let mut out = Vec::new();
        for k0 in [1.0f64, 4.0, 16.0] {
            for k1 in [2.0f64, 8.0] {
                let (t_base, e_base) = raw(k0, k1, 0.875);
                for step in 0..20 {
                    let core = 400.0 + step as f64 * 55.0;
                    let fhat = core / 1500.0;
                    let (t, e) = raw(k0, k1, fhat);
                    out.push(SweepSample {
                        features: vec![k0, k1],
                        core_mhz: core,
                        mem_mhz: 877.0,
                        time_s: t / t_base,
                        energy_j: e / e_base,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn linear_time_model_captures_inverse_frequency() {
        let samples = synth_samples();
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Linear),
            &samples,
            1500.0,
            0,
        );
        for s in samples.iter().step_by(7) {
            let p = models.predict(&s.features, s.core_mhz, s.mem_mhz);
            let err = (p.time_s - s.time_s).abs() / s.time_s;
            assert!(err < 0.06, "time err {err} at f={}", s.core_mhz);
        }
    }

    #[test]
    fn forest_energy_model_tracks_energy() {
        let samples = synth_samples();
        let models = MetricModels::train(
            ModelSelection::paper_best(),
            &samples,
            1500.0,
            7,
        );
        let actual: Vec<f64> = samples.iter().map(|s| s.energy_j).collect();
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| models.predict(&s.features, s.core_mhz, s.mem_mhz).energy_j)
            .collect();
        let err = crate::errors::mape(&actual, &pred);
        assert!(err < 0.10, "energy MAPE {err}");
    }

    #[test]
    fn predictions_are_positive() {
        let samples = synth_samples();
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Lasso),
            &samples,
            1500.0,
            0,
        );
        // Probe far outside the training range.
        let p = models.predict(&[0.0, 0.0], 100.0, 877.0);
        assert!(p.time_s > 0.0 && p.energy_j > 0.0 && p.edp > 0.0 && p.ed2p > 0.0);
    }

    #[test]
    fn input_row_shape_and_content() {
        let row = input_row(&[2.0, 3.0], 750.0, 877.0, 1500.0);
        assert_eq!(row.len(), 2 * 2 + 4);
        assert_eq!(row[0], 0.4); // shape fraction 2/5
        assert_eq!(row[1], 0.6);
        assert_eq!(row[2], 0.8); // 0.4 / f̂
        assert_eq!(row[3], 1.2);
        assert_eq!(row[4], 0.5); // f̂
        assert_eq!(row[5], 2.0); // 1/f̂
        assert!((row[7] - 6f64.log10()).abs() < 1e-12); // log magnitude
    }

    #[test]
    fn input_matrix_rows_are_bitwise_input_rows() {
        let features = [3.0, 0.0, 11.5];
        let clocks: Vec<(f64, f64)> = (0..25)
            .map(|i| (400.0 + i as f64 * 47.0, if i % 2 == 0 { 877.0 } else { 405.0 }))
            .collect();
        let m = input_matrix(&features, &clocks, 1500.0);
        assert_eq!(m.rows(), clocks.len());
        assert_eq!(m.cols(), 2 * features.len() + 4);
        for (i, &(core, mem)) in clocks.iter().enumerate() {
            let reference = input_row(&features, core, mem, 1500.0);
            let got = m.row(i);
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "config {i}");
            }
        }
    }

    #[test]
    fn sweep_batch_is_bitwise_identical_to_per_config_predict() {
        let samples = synth_samples();
        let models = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 5);
        let clocks: Vec<(f64, f64)> = samples
            .iter()
            .step_by(3)
            .map(|s| (s.core_mhz, s.mem_mhz))
            .collect();
        let features = [4.0, 8.0];
        let batch = models.predict_sweep_batch(&features, &clocks);
        assert_eq!(batch.len(), clocks.len());
        for (p, &(core, mem)) in batch.iter().zip(&clocks) {
            let q = models.predict(&features, core, mem);
            assert_eq!(p.time_s.to_bits(), q.time_s.to_bits());
            assert_eq!(p.energy_j.to_bits(), q.energy_j.to_bits());
            assert_eq!(p.edp.to_bits(), q.edp.to_bits());
            assert_eq!(p.ed2p.to_bits(), q.ed2p.to_bits());
        }
    }

    #[test]
    fn sweep_batch_empty_grid_is_empty() {
        let samples = synth_samples();
        let models = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 5);
        assert!(models.predict_sweep_batch(&[4.0, 8.0], &[]).is_empty());
    }

    #[test]
    fn selection_accessors() {
        let samples = synth_samples();
        let sel = ModelSelection::paper_best();
        let models = MetricModels::train(sel, &samples, 1500.0, 0);
        assert_eq!(models.selection(), sel);
        assert_eq!(models.f_max_mhz(), 1500.0);
        assert_eq!(sel.time, Algorithm::Linear);
        assert_eq!(sel.energy, Algorithm::RandomForest);
    }

    #[test]
    fn regressors_expose_the_four_models_in_order() {
        let samples = synth_samples();
        let models = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 0);
        let regs = models.regressors();
        let names: Vec<&str> = regs.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["time", "energy", "edp", "ed2p"]);
        assert_eq!(regs[0].1.algorithm(), Algorithm::Linear);
        assert_eq!(regs[1].1.algorithm(), Algorithm::RandomForest);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        MetricModels::train(ModelSelection::paper_best(), &[], 1500.0, 0);
    }

    #[test]
    fn training_is_deterministic_values() {
        // The parallel four-target fit must be independent of scheduling:
        // two trainings with the same inputs are equal as values.
        let samples = synth_samples();
        let a = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 11);
        let b = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn train_matches_train_reference_bitwise() {
        let samples = synth_samples();
        // Cover all four algorithms across the two selections.
        let mixed = ModelSelection {
            time: Algorithm::Lasso,
            energy: Algorithm::SvrRbf,
            edp: Algorithm::RandomForest,
            ed2p: Algorithm::Linear,
        };
        for sel in [ModelSelection::paper_best(), mixed] {
            let flat = MetricModels::train(sel, &samples, 1500.0, 11);
            let reference = MetricModels::train_reference(sel, &samples, 1500.0, 11);
            assert_eq!(flat, reference);
            for s in samples.iter().step_by(17) {
                let p = flat.predict(&s.features, s.core_mhz, s.mem_mhz);
                let q = reference.predict(&s.features, s.core_mhz, s.mem_mhz);
                assert_eq!(p.time_s.to_bits(), q.time_s.to_bits());
                assert_eq!(p.energy_j.to_bits(), q.energy_j.to_bits());
                assert_eq!(p.edp.to_bits(), q.edp.to_bits());
                assert_eq!(p.ed2p.to_bits(), q.ed2p.to_bits());
            }
        }
    }

    #[test]
    fn prime_derived_counts_rebuilt_caches() {
        let samples = synth_samples();
        // paper_best has two forests; fit primes them, so nothing rebuilds.
        let models = MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 2);
        assert_eq!(models.prime_derived(), 0);
        // A serde round-trip drops the derived caches: both forests rebuild.
        let json = serde_json::to_string(&models).expect("serialize");
        let thawed: MetricModels = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(thawed.prime_derived(), 2);
        assert_eq!(thawed.prime_derived(), 0);
        // All-linear bundles have no derived caches at all.
        let lin =
            MetricModels::train(ModelSelection::uniform(Algorithm::Linear), &samples, 1500.0, 2);
        assert_eq!(lin.prime_derived(), 0);
    }

    #[test]
    fn clone_predicts_identically() {
        let samples = synth_samples();
        let models =
            MetricModels::train(ModelSelection::paper_best(), &samples, 1500.0, 3);
        let copy = models.clone();
        assert_eq!(models, copy);
        for s in samples.iter().step_by(13) {
            let p = models.predict(&s.features, s.core_mhz, s.mem_mhz);
            let q = copy.predict(&s.features, s.core_mhz, s.mem_mhz);
            assert_eq!(p, q);
        }
    }
}
