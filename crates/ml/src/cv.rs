//! K-fold cross-validation and automatic algorithm selection.
//!
//! Section 6.1 of the paper applies *"different machine learning methods"*
//! per target and Section 8.3 picks the best per objective. This module
//! provides the machinery: deterministic k-fold splits, per-algorithm CV
//! scores, and a selector that returns the winning algorithm for a
//! dataset.

use crate::data::Dataset;
use crate::errors::rmse;
use crate::model::Algorithm;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Deterministic k-fold index assignment: `folds[i]` is the fold of row
/// `i`. Every fold size differs by at most one.
pub fn kfold_assignment(rows: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least two folds");
    assert!(rows >= k, "need at least one row per fold");
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![0usize; rows];
    for (pos, &row) in idx.iter().enumerate() {
        folds[row] = pos % k;
    }
    folds
}

/// Cross-validation result for one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvScore {
    /// The algorithm evaluated.
    pub algorithm: Algorithm,
    /// Per-fold RMSE on the held-out fold.
    pub fold_rmse: Vec<f64>,
}

impl CvScore {
    /// Mean held-out RMSE.
    pub fn mean_rmse(&self) -> f64 {
        self.fold_rmse.iter().sum::<f64>() / self.fold_rmse.len() as f64
    }
}

/// Run k-fold CV for one algorithm on a dataset.
pub fn cross_validate(
    algorithm: Algorithm,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> CvScore {
    let folds = kfold_assignment(data.len(), k, seed);
    let mut fold_rmse = Vec::with_capacity(k);
    for fold in 0..k {
        let (train, test) = data.split_by(|i| folds[i] == fold);
        let mut model = algorithm.build(seed.wrapping_add(fold as u64));
        model.fit(&train.x, &train.y);
        let pred = model.predict(&test.x);
        fold_rmse.push(rmse(&test.y, &pred));
    }
    CvScore {
        algorithm,
        fold_rmse,
    }
}

/// Cross-validate every algorithm and return all scores, best first.
pub fn compare_algorithms(data: &Dataset, k: usize, seed: u64) -> Vec<CvScore> {
    let mut scores: Vec<CvScore> = Algorithm::ALL
        .iter()
        .map(|&a| cross_validate(a, data, k, seed))
        .collect();
    scores.sort_by(|a, b| a.mean_rmse().total_cmp(&b.mean_rmse()));
    scores
}

/// The algorithm with the lowest mean held-out RMSE.
pub fn select_algorithm(data: &Dataset, k: usize, seed: u64) -> Algorithm {
    compare_algorithms(data, k, seed)[0].algorithm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..120 {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.73).cos();
            d.push(vec![a, b], 3.0 * a - 2.0 * b + 1.0);
        }
        d
    }

    fn step_dataset() -> Dataset {
        // Axis-aligned steps: tree territory, hostile to linear models.
        let mut d = Dataset::new();
        for i in 0..200 {
            let x = (i % 20) as f64 / 20.0;
            let y = (i / 20) as f64 / 10.0;
            let t = (if x > 0.5 { 4.0 } else { 0.0 }) + (if y > 0.55 { 2.0 } else { 0.0 });
            d.push(vec![x, y], t);
        }
        d
    }

    #[test]
    fn kfold_assignment_is_balanced_and_deterministic() {
        let a = kfold_assignment(103, 5, 9);
        let b = kfold_assignment(103, 5, 9);
        assert_eq!(a, b);
        let mut counts = [0usize; 5];
        for &f in &a {
            counts[f] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "{counts:?}");
        assert_ne!(a, kfold_assignment(103, 5, 10));
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn one_fold_rejected() {
        kfold_assignment(10, 1, 0);
    }

    #[test]
    fn linear_data_selects_a_linear_model() {
        let d = linear_dataset();
        let best = select_algorithm(&d, 5, 3);
        assert!(
            matches!(best, Algorithm::Linear | Algorithm::Lasso),
            "linear ground truth should favour a linear model, got {best}"
        );
    }

    #[test]
    fn step_data_selects_a_tree_model() {
        let d = step_dataset();
        let best = select_algorithm(&d, 5, 3);
        assert_eq!(
            best,
            Algorithm::RandomForest,
            "axis-aligned steps should favour trees"
        );
    }

    #[test]
    fn scores_are_sorted_best_first() {
        let d = linear_dataset();
        let scores = compare_algorithms(&d, 4, 1);
        assert_eq!(scores.len(), 4);
        for w in scores.windows(2) {
            assert!(w[0].mean_rmse() <= w[1].mean_rmse());
        }
    }

    #[test]
    fn fold_count_respected() {
        let d = linear_dataset();
        let s = cross_validate(Algorithm::Linear, &d, 6, 0);
        assert_eq!(s.fold_rmse.len(), 6);
        assert!(s.fold_rmse.iter().all(|r| r.is_finite()));
    }
}
