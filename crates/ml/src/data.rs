//! Datasets, standardization, and deterministic splits.

use crate::train::TrainMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A supervised regression dataset: rows of features with scalar targets.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows share one width.
    pub x: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Append one `(features, target)` observation.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        if let Some(first) = self.x.first() {
            assert_eq!(features.len(), first.len(), "inconsistent feature width");
        }
        self.x.push(features);
        self.y.push(target);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Deterministic shuffled split into `(train, test)` with `test_frac`
    /// of rows held out (at least one row stays in train when possible).
    pub fn split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = ((self.len() as f64) * test_frac).round() as usize;
        let n_test = n_test.min(self.len().saturating_sub(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        let pick = |ids: &[usize]| Dataset {
            x: ids.iter().map(|&i| self.x[i].clone()).collect(),
            y: ids.iter().map(|&i| self.y[i]).collect(),
        };
        (pick(train_idx), pick(test_idx))
    }

    /// Leave out exactly the rows for which `hold_out` is true — the
    /// leave-one-benchmark-out protocol of the accuracy study.
    pub fn split_by(&self, hold_out: impl Fn(usize) -> bool) -> (Dataset, Dataset) {
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..self.len() {
            let row = self.x[i].clone();
            if hold_out(i) {
                test.push(row, self.y[i]);
            } else {
                train.push(row, self.y[i]);
            }
        }
        (train, test)
    }
}

/// Per-column standardizer: `x' = (x - mean) / std`.
///
/// Constant columns get `std = 1` so they map to zero rather than NaN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column standard deviations (1.0 for constant columns).
    pub std: Vec<f64>,
}

impl StandardScaler {
    /// Fit to the rows of `x`.
    pub fn fit(x: &[Vec<f64>]) -> StandardScaler {
        assert!(!x.is_empty(), "cannot fit a scaler to no data");
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in x {
            for ((v, &xv), &m) in var.iter_mut().zip(row).zip(&mean) {
                let dlt = xv - m;
                *v += dlt * dlt;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Fit to the columns of a flat training matrix.
    ///
    /// Bitwise identical to [`fit`](StandardScaler::fit) on the same
    /// data: the row-major reference interleaves columns, but each
    /// per-column accumulator still sees its values in ascending row
    /// order — exactly the order a contiguous column scan visits them.
    pub fn fit_matrix(m: &TrainMatrix) -> StandardScaler {
        assert!(m.n_rows() > 0, "cannot fit a scaler to no data");
        let n = m.n_rows() as f64;
        let d = m.n_features();
        let mut mean = Vec::with_capacity(d);
        let mut std = Vec::with_capacity(d);
        for j in 0..d {
            let col = m.col(j);
            let mut mj = 0.0;
            for &v in col {
                mj += v;
            }
            mj /= n;
            let mut var = 0.0;
            for &v in col {
                let dlt = v - mj;
                var += dlt * dlt;
            }
            let s = (var / n).sqrt();
            mean.push(mj);
            std.push(if s > 1e-12 { s } else { 1.0 });
        }
        StandardScaler { mean, std }
    }

    /// Transform one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((&x, &m), &s)| (x - m) / s)
            .collect()
    }

    /// Transform many rows.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.transform_row(r)).collect()
    }
}

/// Scalar standardizer for targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (1.0 when constant).
    pub std: f64,
}

impl TargetScaler {
    /// Fit to the targets.
    pub fn fit(y: &[f64]) -> TargetScaler {
        assert!(!y.is_empty());
        let n = y.len() as f64;
        let mean = y.iter().sum::<f64>() / n;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        TargetScaler {
            mean,
            std: if std > 1e-12 { std } else { 1.0 },
        }
    }

    /// To standardized space.
    pub fn transform(&self, v: f64) -> f64 {
        (v - self.mean) / self.std
    }

    /// Back to original space.
    pub fn inverse(&self, v: f64) -> f64 {
        v * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, (i * i) as f64], i as f64 * 2.0);
        }
        d
    }

    #[test]
    fn push_and_dims() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_push_panics() {
        let mut d = toy();
        d.push(vec![1.0], 0.0);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let (tr1, te1) = d.split(0.3, 42);
        let (tr2, te2) = d.split(0.3, 42);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), d.len());
        assert_eq!(te1.len(), 3);
        let (_, te3) = d.split(0.3, 43);
        assert_ne!(te1, te3, "different seed, different split");
    }

    #[test]
    fn split_by_predicate() {
        let d = toy();
        let (tr, te) = d.split_by(|i| i % 2 == 0);
        assert_eq!(te.len(), 5);
        assert_eq!(tr.len(), 5);
        assert!(te.y.iter().all(|&y| ((y / 2.0) as usize).is_multiple_of(2)));
    }

    #[test]
    fn scaler_zero_mean_unit_var() {
        let d = toy();
        let sc = StandardScaler::fit(&d.x);
        let t = sc.transform(&d.x);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.iter().map(|r| r[j] * r[j]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scaler_handles_constant_column() {
        let x = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[1][0], 0.0);
        assert!(t[0][1].is_finite());
    }

    #[test]
    fn fit_matrix_is_bitwise_fit() {
        let x: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![i as f64 * 0.37, 4.0, (i as f64).sin()])
            .collect();
        let a = StandardScaler::fit(&x);
        let b = StandardScaler::fit_matrix(&TrainMatrix::from_rows(&x));
        for j in 0..3 {
            assert_eq!(a.mean[j].to_bits(), b.mean[j].to_bits());
            assert_eq!(a.std[j].to_bits(), b.std[j].to_bits());
        }
    }

    #[test]
    fn target_scaler_roundtrip() {
        let y = vec![1.0, 2.0, 3.0, 10.0];
        let ts = TargetScaler::fit(&y);
        for &v in &y {
            assert!((ts.inverse(ts.transform(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn target_scaler_constant() {
        let ts = TargetScaler::fit(&[4.0, 4.0, 4.0]);
        assert_eq!(ts.transform(4.0), 0.0);
        assert_eq!(ts.inverse(0.0), 4.0);
    }
}
