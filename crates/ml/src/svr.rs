//! ε-support-vector regression with an RBF kernel.
//!
//! We solve the standard SVR dual in the β = α − α* parametrization with
//! the bias absorbed into the kernel (`K'(x,z) = K(x,z) + 1`), which removes
//! the equality constraint and leaves a box-constrained problem:
//!
//! ```text
//! min_β  ½ βᵀ K' β + ε Σ|β_i| − yᵀ β     s.t.  −C ≤ β_i ≤ C
//! ```
//!
//! Exact cyclic coordinate descent then has a closed-form soft-threshold
//! update per coordinate, giving a deterministic, dependency-free solver.
//! Features and targets are standardized internally so the default
//! hyperparameters are meaningful at any scale.

use crate::batch::FeatureMatrix;
use crate::data::{StandardScaler, TargetScaler};
use crate::linalg::{dot, sq_dist};
use crate::model::Regressor;
use crate::train::TrainMatrix;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The active support vectors in prediction-ready form: flat row-major
/// standardized coordinates, their dual coefficients, and precomputed
/// squared norms so the RBF exponent `‖s−r‖² = ‖s‖² − 2 s·r + ‖r‖²`
/// costs one dot product per (support vector, row) pair.
///
/// Derived state: built from `(beta, train_x)` at fit time, rebuilt
/// lazily after deserialization. Zero-β training points are dropped (in
/// training order, matching the reference path's filter).
#[derive(Debug, Clone, Default)]
pub(crate) struct SupportSet {
    dim: usize,
    x: Vec<f64>,
    beta: Vec<f64>,
    sq_norm: Vec<f64>,
}

impl SupportSet {
    fn build(beta: &[f64], train_x: &[Vec<f64>]) -> SupportSet {
        let dim = train_x.first().map_or(0, Vec::len);
        let mut set = SupportSet {
            dim,
            x: Vec::new(),
            beta: Vec::new(),
            sq_norm: Vec::new(),
        };
        for (sv, &b) in train_x.iter().zip(beta) {
            if b != 0.0 {
                set.x.extend_from_slice(sv);
                set.beta.push(b);
                set.sq_norm.push(dot(sv, sv));
            }
        }
        set
    }

    /// Build from flat row-major standardized rows with squared norms
    /// already computed (the optimized fit has them on hand). The filter
    /// runs in training order like [`build`](SupportSet::build), and each
    /// retained `sq_norm[i]` was produced by the same `dot(row, row)`
    /// operation sequence, so the two constructors are bitwise identical.
    fn from_flat(beta: &[f64], xs: &[f64], dim: usize, sq_norm: &[f64]) -> SupportSet {
        let mut set = SupportSet {
            dim,
            x: Vec::new(),
            beta: Vec::new(),
            sq_norm: Vec::new(),
        };
        for (i, &b) in beta.iter().enumerate() {
            if b != 0.0 {
                set.x.extend_from_slice(&xs[i * dim..(i + 1) * dim]);
                set.beta.push(b);
                set.sq_norm.push(sq_norm[i]);
            }
        }
        set
    }

    /// Number of support vectors.
    fn len(&self) -> usize {
        self.beta.len()
    }
}

/// ε-SVR with an RBF kernel `exp(-γ‖x−z‖²)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvrRbf {
    /// Box constraint (regularization strength).
    pub c: f64,
    /// ε-insensitive tube half-width (standardized target units).
    pub epsilon: f64,
    /// RBF bandwidth; `None` = 1/d heuristic on standardized features.
    pub gamma: Option<f64>,
    /// Maximum coordinate sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest β change in one sweep.
    pub tol: f64,
    beta: Vec<f64>,
    train_x: Vec<Vec<f64>>,
    gamma_fitted: f64,
    scaler: Option<StandardScaler>,
    target: Option<TargetScaler>,
    /// Derived support-vector layout; never serialized, never compared.
    #[serde(skip)]
    support: OnceLock<SupportSet>,
}

// `support` is a cache of `(beta, train_x)`; equality covers the fitted
// state only, so a freshly deserialized model equals its source.
impl PartialEq for SvrRbf {
    fn eq(&self, other: &Self) -> bool {
        self.c == other.c
            && self.epsilon == other.epsilon
            && self.gamma == other.gamma
            && self.max_iter == other.max_iter
            && self.tol == other.tol
            && self.beta == other.beta
            && self.train_x == other.train_x
            && self.gamma_fitted == other.gamma_fitted
            && self.scaler == other.scaler
            && self.target == other.target
    }
}

impl Default for SvrRbf {
    fn default() -> Self {
        SvrRbf {
            c: 10.0,
            epsilon: 0.05,
            gamma: None,
            max_iter: 300,
            tol: 1e-6,
            beta: Vec::new(),
            train_x: Vec::new(),
            gamma_fitted: 0.0,
            scaler: None,
            target: None,
            support: OnceLock::new(),
        }
    }
}

impl SvrRbf {
    /// SVR with explicit hyperparameters.
    pub fn new(c: f64, epsilon: f64, gamma: Option<f64>) -> SvrRbf {
        SvrRbf {
            c,
            epsilon,
            gamma,
            ..Default::default()
        }
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn support_vector_count(&self) -> usize {
        self.beta.iter().filter(|b| **b != 0.0).count()
    }

    fn support(&self) -> &SupportSet {
        self.support
            .get_or_init(|| SupportSet::build(&self.beta, &self.train_x))
    }

    /// Ensure the support-vector layout exists; returns `true` when it
    /// had to be rebuilt (i.e. the model arrived without its derived
    /// cache, as after deserialization). The runtime's model store
    /// counts these.
    pub fn prime_support(&self) -> bool {
        let mut rebuilt = false;
        self.support.get_or_init(|| {
            rebuilt = true;
            SupportSet::build(&self.beta, &self.train_x)
        });
        rebuilt
    }

    /// Fit over a prebuilt flat matrix with lazily materialized kernel
    /// rows.
    ///
    /// The reference fills the dense `n×n` kernel up front; this path
    /// computes a row only the first time its coordinate takes an
    /// effective step, into a reused arena. Rows are generated with the
    /// same `sq_dist`-then-`exp` operation sequence — `sq_dist(a, b)`
    /// and `sq_dist(b, a)` are bitwise equal ((a−b)² ≡ (b−a)² in IEEE
    /// arithmetic), so the mirrored half of the reference matrix is
    /// reproduced exactly, and the whole fit is bitwise identical to
    /// [`fit_reference`](SvrRbf::fit_reference). Squared row norms are
    /// precomputed once and feed the support set directly.
    pub fn fit_flat(&mut self, m: &TrainMatrix, y: &[f64]) {
        assert!(m.n_rows() > 0, "cannot fit to an empty dataset");
        assert_eq!(m.n_rows(), y.len());
        let scaler = StandardScaler::fit_matrix(m);
        let ts = TargetScaler::fit(y);
        let ys: Vec<f64> = y.iter().map(|&v| ts.transform(v)).collect();
        let n = m.n_rows();
        let d = m.n_features();
        self.gamma_fitted = self.gamma.unwrap_or(1.0 / (d as f64).max(1.0));
        let gamma = self.gamma_fitted;

        // Standardized rows, flat row-major — elementwise the values the
        // reference's `scaler.transform(x)` produces.
        let mut xs = vec![0.0f64; n * d];
        for (i, row) in m.rows_flat().chunks_exact(d.max(1)).enumerate().take(n) {
            for (j, &v) in row.iter().enumerate() {
                xs[i * d + j] = (v - scaler.mean[j]) / scaler.std[j];
            }
        }
        let row_of = |i: usize| &xs[i * d..(i + 1) * d];
        // Kernel diagonal (the only kernel values every sweep reads) and
        // squared norms for the support set, both in reference op order.
        let diag: Vec<f64> = (0..n)
            .map(|i| (-gamma * sq_dist(row_of(i), row_of(i))).exp() + 1.0)
            .collect();
        let sq_norm: Vec<f64> = (0..n).map(|i| dot(row_of(i), row_of(i))).collect();

        // Lazy kernel-row arena: `krow_slot[i]` is the row's slot in the
        // arena, `u32::MAX` until first materialization.
        const UNMATERIALIZED: u32 = u32::MAX;
        let mut kcache: Vec<f64> = Vec::new();
        let mut krow_slot = vec![UNMATERIALIZED; n];

        let mut beta = vec![0.0f64; n];
        // f_i = Σ_j K_ij β_j, maintained incrementally.
        let mut f = vec![0.0f64; n];
        for _sweep in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let kii = diag[i];
                if kii <= 0.0 {
                    continue;
                }
                // Minimize ½ kii b² + (f_i − kii β_i) b + ε|b| − y_i b over b.
                let g = f[i] - kii * beta[i];
                let unclipped = soft_threshold(ys[i] - g, self.epsilon) / kii;
                let new_b = unclipped.clamp(-self.c, self.c);
                let delta = new_b - beta[i];
                if delta != 0.0 {
                    if krow_slot[i] == UNMATERIALIZED {
                        krow_slot[i] = (kcache.len() / n) as u32;
                        let ri = row_of(i);
                        kcache.extend(
                            (0..n).map(|j| (-gamma * sq_dist(ri, row_of(j))).exp() + 1.0),
                        );
                    }
                    let start = krow_slot[i] as usize * n;
                    let krow = &kcache[start..start + n];
                    for (fj, &kij) in f.iter_mut().zip(krow) {
                        *fj += delta * kij;
                    }
                    beta[i] = new_b;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        self.beta = beta;
        // Reconstruct the serialized row-of-vecs form (zero-width rows
        // still need one empty vec per observation, like the reference).
        self.train_x = if d == 0 {
            vec![Vec::new(); n]
        } else {
            xs.chunks_exact(d).map(<[f64]>::to_vec).collect()
        };
        self.scaler = Some(scaler);
        self.target = Some(ts);
        self.support = OnceLock::new();
        let _ = self
            .support
            .set(SupportSet::from_flat(&self.beta, &xs, d, &sq_norm));
    }

    /// The original dense-kernel training path, kept as the bit-identity
    /// oracle for [`fit_flat`](SvrRbf::fit_flat).
    pub fn fit_reference(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let ts = TargetScaler::fit(y);
        let ys: Vec<f64> = y.iter().map(|&v| ts.transform(v)).collect();
        let n = xs.len();
        let d = xs[0].len() as f64;
        self.gamma_fitted = self.gamma.unwrap_or(1.0 / d.max(1.0));

        // Dense kernel matrix (n is a few thousand at most in this system).
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = (-self.gamma_fitted * sq_dist(&xs[i], &xs[j])).exp() + 1.0;
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut beta = vec![0.0f64; n];
        // f_i = Σ_j K_ij β_j, maintained incrementally.
        let mut f = vec![0.0f64; n];
        for _sweep in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let kii = k[i * n + i];
                if kii <= 0.0 {
                    continue;
                }
                // Minimize ½ kii b² + (f_i − kii β_i) b + ε|b| − y_i b over b.
                let g = f[i] - kii * beta[i];
                let unclipped = soft_threshold(ys[i] - g, self.epsilon) / kii;
                let new_b = unclipped.clamp(-self.c, self.c);
                let delta = new_b - beta[i];
                if delta != 0.0 {
                    let krow = &k[i * n..(i + 1) * n];
                    for (fj, &kij) in f.iter_mut().zip(krow) {
                        *fj += delta * kij;
                    }
                    beta[i] = new_b;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        self.beta = beta;
        self.train_x = xs;
        self.scaler = Some(scaler);
        self.target = Some(ts);
        self.support = OnceLock::new();
        let _ = self
            .support
            .set(SupportSet::build(&self.beta, &self.train_x));
    }

    /// Decision value for one standardized row with its precomputed
    /// squared norm. Support vectors accumulate in training order; the
    /// RBF exponent is expanded as `‖s‖² − 2 s·r + ‖r‖²` (clamped at 0,
    /// it is a distance) so only the dot product varies per pair. Both
    /// the per-row and the batched entry points funnel through here,
    /// which is what makes them bitwise identical.
    fn decision(&self, rs: &[f64], rs_norm: f64) -> f64 {
        let set = self.support();
        let mut z = 0.0;
        for i in 0..set.len() {
            let sv = &set.x[i * set.dim..(i + 1) * set.dim];
            let d2 = (set.sq_norm[i] - 2.0 * dot(sv, rs) + rs_norm).max(0.0);
            // +1 absorbs the bias term.
            z += set.beta[i] * ((-self.gamma_fitted * d2).exp() + 1.0);
        }
        z
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

impl Regressor for SvrRbf {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let m = TrainMatrix::from_rows(x);
        self.fit_flat(&m, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let ts = self.target.expect("predict before fit");
        debug_assert_eq!(row.len(), scaler.mean.len(), "row width mismatch");
        let rs = scaler.transform_row(row);
        let rs_norm = dot(&rs, &rs);
        ts.inverse(self.decision(&rs, rs_norm))
    }

    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let ts = self.target.expect("predict before fit");
        assert_eq!(x.cols(), scaler.mean.len(), "matrix width mismatch");
        // One scratch row reused across the batch: standardize in place,
        // column order identical to `transform_row`.
        let mut rs = vec![0.0f64; x.cols()];
        x.iter_rows()
            .map(|row| {
                for (slot, ((&v, &m), &s)) in rs
                    .iter_mut()
                    .zip(row.iter().zip(&scaler.mean).zip(&scaler.std))
                {
                    *slot = (v - m) / s;
                }
                let rs_norm = dot(&rs, &rs);
                ts.inverse(self.decision(&rs, rs_norm))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::rmse;

    fn sine_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64 / 150.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (4.0 * r[0]).sin()).collect();
        (x, y)
    }

    #[test]
    fn fits_smooth_nonlinear_function() {
        let (x, y) = sine_problem();
        let mut m = SvrRbf::default();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 0.1, "rmse {}", rmse(&y, &pred));
    }

    #[test]
    fn interpolates_between_training_points() {
        let (x, y) = sine_problem();
        let mut m = SvrRbf::default();
        m.fit(&x, &y);
        let mid = 75.5 / 150.0;
        let want = (4.0f64 * mid).sin();
        assert!((m.predict_row(&[mid]) - want).abs() < 0.15);
    }

    #[test]
    fn epsilon_tube_creates_sparsity() {
        let (x, y) = sine_problem();
        let mut tight = SvrRbf::new(10.0, 0.001, None);
        tight.fit(&x, &y);
        let mut loose = SvrRbf::new(10.0, 0.3, None);
        loose.fit(&x, &y);
        assert!(
            loose.support_vector_count() < tight.support_vector_count(),
            "wider tube should need fewer support vectors: {} vs {}",
            loose.support_vector_count(),
            tight.support_vector_count()
        );
    }

    #[test]
    fn dual_variables_respect_box() {
        let (x, y) = sine_problem();
        let mut m = SvrRbf::new(0.5, 0.01, None);
        m.fit(&x, &y);
        assert!(m.beta.iter().all(|b| b.abs() <= 0.5 + 1e-12));
    }

    #[test]
    fn deterministic() {
        let (x, y) = sine_problem();
        let mut a = SvrRbf::default();
        let mut b = SvrRbf::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        for row in x.iter().take(10) {
            assert_eq!(a.predict_row(row), b.predict_row(row));
        }
    }

    #[test]
    fn constant_target() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let mut m = SvrRbf::default();
        m.fit(&x, &y);
        assert!((m.predict_row(&[10.0]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn flat_fit_matches_reference_bitwise() {
        let (x, y) = sine_problem();
        let mut flat = SvrRbf::default();
        flat.fit(&x, &y);
        let mut reference = SvrRbf::default();
        reference.fit_reference(&x, &y);
        assert_eq!(flat, reference);
        for row in x.iter().take(20) {
            assert_eq!(
                flat.predict_row(row).to_bits(),
                reference.predict_row(row).to_bits()
            );
        }
    }

    #[test]
    fn prime_support_reports_rebuilds() {
        let (x, y) = sine_problem();
        let mut m = SvrRbf::default();
        m.fit(&x, &y);
        // Fit primes the cache eagerly.
        assert!(!m.prime_support());
        let fresh = SvrRbf {
            beta: m.beta.clone(),
            train_x: m.train_x.clone(),
            gamma_fitted: m.gamma_fitted,
            scaler: m.scaler.clone(),
            target: m.target,
            support: OnceLock::new(),
            ..SvrRbf::default()
        };
        assert!(fresh.prime_support(), "unprimed model must rebuild");
        assert!(!fresh.prime_support(), "second prime must hit the cache");
    }

    #[test]
    fn multidimensional_input() {
        let x: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i % 20) as f64 / 20.0,
                    (i / 20) as f64 / 10.0,
                ]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[1] + r[0]).collect();
        let mut m = SvrRbf::default();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(rmse(&y, &pred) < 0.1);
    }
}
