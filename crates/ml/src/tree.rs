//! CART regression trees: variance-reduction splits, depth and leaf-size
//! limits, and optional per-node feature subsampling (for forests).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of a regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split; `None` = all features.
    pub feature_subsample: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 14,
            min_samples_leaf: 2,
            min_samples_split: 4,
            feature_subsample: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to the rows of `x` selected by `indices` (duplicates
    /// allowed — that is how bagging delivers bootstrap samples).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: TreeConfig,
        seed: u64,
    ) -> RegressionTree {
        assert!(!indices.is_empty(), "cannot fit a tree to no samples");
        let mut tree = RegressionTree {
            config,
            nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = indices.to_vec();
        tree.build(x, y, &mut idx, 0, &mut rng);
        tree
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena (root at index 0) — the forest's flattened SoA
    /// layout is built from this.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len();
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / n as f64;
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();

        let stop = depth >= self.config.max_depth
            || n < self.config.min_samples_split
            || sse <= 1e-12;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(x, y, idx, rng) {
                // Partition in place.
                let mid = partition(idx, |i| x[i][feature] <= threshold);
                if mid >= self.config.min_samples_leaf
                    && n - mid >= self.config.min_samples_leaf
                {
                    let node_id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let (left_idx, right_idx) = idx.split_at_mut(mid);
                    let left = self.build(x, y, left_idx, depth + 1, rng);
                    let right = self.build(x, y, right_idx, depth + 1, rng);
                    self.nodes[node_id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return node_id;
                }
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        node_id
    }

    /// Best (feature, threshold) by SSE reduction over the candidate
    /// feature set, or `None` when no valid split exists.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let d = x[0].len();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.config.feature_subsample {
            features.shuffle(rng);
            features.truncate(k.clamp(1, d));
        }
        let n = idx.len() as f64;
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        let mut order = idx.to_vec();
        for &f in &features {
            order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_sum += y[i];
                left_n += 1.0;
                let xv = x[i][f];
                let xn = x[order[w + 1]][f];
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                // SSE reduction = sum²/n terms (larger is better).
                let score =
                    left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                let threshold = 0.5 * (xv + xn);
                if best.is_none_or(|(s, _, _)| score > s) {
                    best = Some((score, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Stable-enough in-place partition: returns the count of elements
/// satisfying the predicate, which end up in the prefix.
fn partition(idx: &mut [usize], pred: impl Fn(usize) -> bool) -> usize {
    let mut store = 0;
    for i in 0..idx.len() {
        if pred(idx[i]) {
            idx.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 for x < 0.5, y = 5 otherwise: one split suffices.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| if r[0] < 0.5 { 1.0 } else { 5.0 }).collect();
        (x, y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let idx: Vec<usize> = (0..x.len()).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.predict_row(&[0.1]), 1.0);
        assert_eq!(t.predict_row(&[0.9]), 5.0);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = step_data();
        let idx: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = RegressionTree::fit(&x, &y, &idx, cfg, 0);
        assert_eq!(t.depth(), 0);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_row(&[0.1]) - mean).abs() < 1e-12);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let idx: Vec<usize> = (0..10).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_row(&[99.0]), 7.0);
    }

    #[test]
    fn constant_feature_cannot_split() {
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..10).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn bootstrap_duplicates_accepted() {
        let (x, y) = step_data();
        let idx = vec![0usize; 5]; // five copies of row 0
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.predict_row(&[0.0]), 1.0);
    }

    #[test]
    fn deeper_tree_fits_quadratic_better() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let shallow = RegressionTree::fit(
            &x,
            &y,
            &idx,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
            0,
        );
        let deep = RegressionTree::fit(
            &x,
            &y,
            &idx,
            TreeConfig {
                max_depth: 8,
                ..Default::default()
            },
            0,
        );
        let err = |t: &RegressionTree| -> f64 {
            x.iter()
                .zip(&y)
                .map(|(r, &v)| (t.predict_row(r) - v).powi(2))
                .sum()
        };
        assert!(err(&deep) < err(&shallow) / 4.0);
    }

    #[test]
    fn partition_counts_and_orders() {
        let mut idx = vec![0, 1, 2, 3, 4, 5];
        let mid = partition(&mut idx, |i| i % 2 == 0);
        assert_eq!(mid, 3);
        assert!(idx[..3].iter().all(|&i| i % 2 == 0));
        assert!(idx[3..].iter().all(|&i| i % 2 == 1));
    }
}
