//! CART regression trees: variance-reduction splits, depth and leaf-size
//! limits, and optional per-node feature subsampling (for forests).
//!
//! Two fit paths produce **bitwise-identical** trees:
//!
//! * [`RegressionTree::fit_reference`] — the original implementation:
//!   per node it copies the index set and re-sorts it per feature over
//!   ragged rows (`O(d·n log n)` sorting and one `Vec` per node).
//! * [`RegressionTree::fit_flat`] — the pre-sorted-columns scheme over a
//!   flat [`TrainMatrix`]: every feature order is sorted **once** at the
//!   root, maintained down the tree by stable in-place partition, and the
//!   reference's per-node stable re-sort is replayed in `O(d·n)` by a
//!   counting sort over bitwise-equal value runs ([`fixup`]). All working
//!   memory lives in a reusable [`TreeScratch`] arena — no per-node
//!   allocations.
//!
//! The identity argument (see DESIGN.md §16): `total_cmp` ties are
//! exactly bitwise equality, so the reference's stable sort is determined
//! by (a) the run structure of the value-sorted column and (b) the
//! previous order within each run — both of which the flat path tracks
//! explicitly. The split scan then visits the same indices in the same
//! order and executes the same float operations.

use crate::train::{TrainMatrix, TreeScratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of a regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split; `None` = all features.
    pub feature_subsample: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 14,
            min_samples_leaf: 2,
            min_samples_split: 4,
            feature_subsample: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to the rows of `x` selected by `indices` (duplicates
    /// allowed — that is how bagging delivers bootstrap samples).
    ///
    /// Delegates to [`fit_flat`](RegressionTree::fit_flat) over a
    /// freshly built [`TrainMatrix`]; the result is bitwise identical to
    /// [`fit_reference`](RegressionTree::fit_reference).
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: TreeConfig,
        seed: u64,
    ) -> RegressionTree {
        assert!(!indices.is_empty(), "cannot fit a tree to no samples");
        let m = TrainMatrix::from_rows(x);
        let mut scratch = TreeScratch::default();
        RegressionTree::fit_flat(&m, y, indices, config, seed, &mut scratch)
    }

    /// The original per-node-sort fit, kept as the bit-identity oracle
    /// for the optimized path (property-tested in the crate root).
    pub fn fit_reference(
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        config: TreeConfig,
        seed: u64,
    ) -> RegressionTree {
        assert!(!indices.is_empty(), "cannot fit a tree to no samples");
        let mut tree = RegressionTree {
            config,
            nodes: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = indices.to_vec();
        tree.build(x, y, &mut idx, 0, &mut rng);
        tree
    }

    /// Fit with the pre-sorted-columns scheme over a flat matrix, using
    /// (and resizing) the caller's scratch arena. Produces a tree bitwise
    /// identical to [`fit_reference`](RegressionTree::fit_reference) on
    /// the same inputs.
    pub fn fit_flat(
        m: &TrainMatrix,
        y: &[f64],
        indices: &[usize],
        config: TreeConfig,
        seed: u64,
        scratch: &mut TreeScratch,
    ) -> RegressionTree {
        assert!(!indices.is_empty(), "cannot fit a tree to no samples");
        assert_eq!(m.n_rows(), y.len());
        scratch.prepare(m, indices);
        let n = indices.len();
        let TreeScratch {
            idx,
            orders,
            order_a,
            order_b,
            run_of,
            run_cursor,
            part,
            features,
        } = scratch;
        let mut builder = FlatBuilder {
            m,
            y,
            config,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            stride: n,
            idx,
            orders,
            order_a,
            order_b,
            run_of,
            run_cursor,
            part,
            features,
        };
        builder.build(0, n, 0);
        RegressionTree {
            config,
            nodes: builder.nodes,
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena (root at index 0) — the forest's flattened SoA
    /// layout is built from this.
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len();
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / n as f64;
        let sse: f64 = idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();

        let stop = depth >= self.config.max_depth
            || n < self.config.min_samples_split
            || sse <= 1e-12;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(x, y, idx, rng) {
                // Partition in place.
                let mid = partition(idx, |i| x[i][feature] <= threshold);
                if mid >= self.config.min_samples_leaf
                    && n - mid >= self.config.min_samples_leaf
                {
                    let node_id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let (left_idx, right_idx) = idx.split_at_mut(mid);
                    let left = self.build(x, y, left_idx, depth + 1, rng);
                    let right = self.build(x, y, right_idx, depth + 1, rng);
                    self.nodes[node_id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return node_id;
                }
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        node_id
    }

    /// Best (feature, threshold) by SSE reduction over the candidate
    /// feature set, or `None` when no valid split exists.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let d = x[0].len();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.config.feature_subsample {
            features.shuffle(rng);
            features.truncate(k.clamp(1, d));
        }
        let n = idx.len() as f64;
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        let mut order = idx.to_vec();
        for &f in &features {
            order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_sum += y[i];
                left_n += 1.0;
                let xv = x[i][f];
                let xn = x[order[w + 1]][f];
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                // SSE reduction = sum²/n terms (larger is better).
                let score =
                    left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                let threshold = 0.5 * (xv + xn);
                if best.is_none_or(|(s, _, _)| score > s) {
                    best = Some((score, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Stable-enough in-place partition: returns the count of elements
/// satisfying the predicate, which end up in the prefix.
fn partition(idx: &mut [usize], pred: impl Fn(usize) -> bool) -> usize {
    let mut store = 0;
    for i in 0..idx.len() {
        if pred(idx[i]) {
            idx.swap(store, i);
            store += 1;
        }
    }
    store
}

/// The pre-sorted-columns tree builder: all state borrowed from a
/// [`TreeScratch`], recursion over `[lo, hi)` ranges of the shared
/// buffers instead of sub-slices, zero allocations past the output node
/// arena.
struct FlatBuilder<'a> {
    m: &'a TrainMatrix,
    y: &'a [f64],
    config: TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
    /// Root sample count — the stride between feature columns in `orders`.
    stride: usize,
    idx: &'a mut Vec<u32>,
    orders: &'a mut Vec<u32>,
    order_a: &'a mut Vec<u32>,
    order_b: &'a mut Vec<u32>,
    run_of: &'a mut Vec<u32>,
    run_cursor: &'a mut Vec<u32>,
    part: &'a mut Vec<u32>,
    features: &'a mut Vec<usize>,
}

impl FlatBuilder<'_> {
    /// Mirror of the reference `build` over `idx[lo..hi]`: same mean/SSE
    /// accumulation order, same stop rule, same partition-then-check
    /// control flow (including the partition that a failed leaf-size
    /// check discards — it only touches ranges no other node reads).
    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> usize {
        let n = hi - lo;
        let y = self.y;
        let mean = self.idx[lo..hi].iter().map(|&i| y[i as usize]).sum::<f64>() / n as f64;
        let sse: f64 = self.idx[lo..hi]
            .iter()
            .map(|&i| (y[i as usize] - mean) * (y[i as usize] - mean))
            .sum();

        let stop = depth >= self.config.max_depth
            || n < self.config.min_samples_split
            || sse <= 1e-12;
        if !stop {
            if let Some((feature, threshold)) = self.best_split(lo, hi) {
                let mid = self.partition_node(lo, hi, feature, threshold);
                if mid >= self.config.min_samples_leaf && n - mid >= self.config.min_samples_leaf
                {
                    let node_id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: mean }); // placeholder
                    let left = self.build(lo, lo + mid, depth + 1);
                    let right = self.build(lo + mid, hi, depth + 1);
                    self.nodes[node_id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return node_id;
                }
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        node_id
    }

    /// Mirror of the reference `best_split`: the running order starts as
    /// the node's index multiset (the reference's `idx.to_vec()`) and is
    /// stably re-sorted per candidate feature — here in `O(n)` via
    /// [`fixup`] against the maintained value-sorted column instead of a
    /// comparison sort. The split scan is operation-for-operation the
    /// reference loop.
    fn best_split(&mut self, lo: usize, hi: usize) -> Option<(usize, f64)> {
        let m = self.m;
        let y = self.y;
        let d = m.n_features();
        self.features.clear();
        self.features.extend(0..d);
        if let Some(k) = self.config.feature_subsample {
            self.features.shuffle(&mut self.rng);
            self.features.truncate(k.clamp(1, d));
        }
        let len = hi - lo;
        let n = len as f64;
        let total_sum: f64 = self.idx[lo..hi].iter().map(|&i| y[i as usize]).sum();
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)
        self.order_a[..len].copy_from_slice(&self.idx[lo..hi]);
        let mut cur_in_a = true;
        for fi in 0..self.features.len() {
            let f = self.features[fi];
            let col = m.col(f);
            let sorted = &self.orders[f * self.stride + lo..f * self.stride + hi];
            let (prev, cur) = if cur_in_a {
                (&self.order_a[..len], &mut self.order_b[..len])
            } else {
                (&self.order_b[..len], &mut self.order_a[..len])
            };
            fixup(col, sorted, prev, cur, self.run_of, self.run_cursor);
            cur_in_a = !cur_in_a;
            let order: &[u32] = cur;
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..len - 1 {
                let i = order[w] as usize;
                left_sum += y[i];
                left_n += 1.0;
                let xv = col[i];
                let xn = col[order[w + 1] as usize];
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                // SSE reduction = sum²/n terms (larger is better).
                let score =
                    left_sum * left_sum / left_n + right_sum * right_sum / right_n;
                let threshold = 0.5 * (xv + xn);
                if best.is_none_or(|(s, _, _)| score > s) {
                    best = Some((score, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Partition the node's index range with the verbatim reference swap
    /// partition (so children inherit the identical index order), then
    /// keep every feature's value-sorted order valid for both children
    /// with a both-sides-stable partition: a stable partition of a sorted
    /// sequence leaves each side sorted.
    fn partition_node(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let m = self.m;
        let col = m.col(feature);
        let seg = &mut self.idx[lo..hi];
        let mut store = 0;
        for i in 0..seg.len() {
            if col[seg[i] as usize] <= threshold {
                seg.swap(store, i);
                store += 1;
            }
        }
        let len = hi - lo;
        for f in 0..m.n_features() {
            let sorted = &mut self.orders[f * self.stride + lo..f * self.stride + hi];
            let mut w = 0usize;
            let mut r = 0usize;
            for k in 0..len {
                let e = sorted[k];
                if col[e as usize] <= threshold {
                    sorted[w] = e;
                    w += 1;
                } else {
                    self.part[r] = e;
                    r += 1;
                }
            }
            sorted[w..].copy_from_slice(&self.part[..r]);
        }
        store
    }
}

/// Stable counting sort of `prev` by the `total_cmp` equivalence class of
/// each element's `col` value, in `O(n)`.
///
/// `sorted` is the node's value-sorted order for this feature; since
/// `total_cmp` equality is exactly bitwise equality, its maximal runs of
/// equal bits are the sort's equivalence classes in ascending order. Pass
/// one records each run's start offset and tags every row id with its run;
/// pass two places `prev` elements at their run cursors in encounter
/// order. The output is bit-for-bit `prev.sort_by(total_cmp)` — ties keep
/// `prev` order (stability), classes land at the offsets the sorted
/// column dictates.
fn fixup(
    col: &[f64],
    sorted: &[u32],
    prev: &[u32],
    out: &mut [u32],
    run_of: &mut [u32],
    cursor: &mut [u32],
) {
    let mut runs = 0usize;
    let mut prev_bits = 0u64;
    for (w, &r) in sorted.iter().enumerate() {
        let bits = col[r as usize].to_bits();
        if w == 0 || bits != prev_bits {
            cursor[runs] = w as u32;
            runs += 1;
            prev_bits = bits;
        }
        run_of[r as usize] = (runs - 1) as u32;
    }
    for &e in prev {
        let c = &mut cursor[run_of[e as usize] as usize];
        out[*c as usize] = e;
        *c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 for x < 0.5, y = 5 otherwise: one split suffices.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| if r[0] < 0.5 { 1.0 } else { 5.0 }).collect();
        (x, y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = step_data();
        let idx: Vec<usize> = (0..x.len()).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.predict_row(&[0.1]), 1.0);
        assert_eq!(t.predict_row(&[0.9]), 5.0);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = step_data();
        let idx: Vec<usize> = (0..x.len()).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = RegressionTree::fit(&x, &y, &idx, cfg, 0);
        assert_eq!(t.depth(), 0);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_row(&[0.1]) - mean).abs() < 1e-12);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 10];
        let idx: Vec<usize> = (0..10).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_row(&[99.0]), 7.0);
    }

    #[test]
    fn constant_feature_cannot_split() {
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..10).collect();
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn bootstrap_duplicates_accepted() {
        let (x, y) = step_data();
        let idx = vec![0usize; 5]; // five copies of row 0
        let t = RegressionTree::fit(&x, &y, &idx, TreeConfig::default(), 0);
        assert_eq!(t.predict_row(&[0.0]), 1.0);
    }

    #[test]
    fn deeper_tree_fits_quadratic_better() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let shallow = RegressionTree::fit(
            &x,
            &y,
            &idx,
            TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
            0,
        );
        let deep = RegressionTree::fit(
            &x,
            &y,
            &idx,
            TreeConfig {
                max_depth: 8,
                ..Default::default()
            },
            0,
        );
        let err = |t: &RegressionTree| -> f64 {
            x.iter()
                .zip(&y)
                .map(|(r, &v)| (t.predict_row(r) - v).powi(2))
                .sum()
        };
        assert!(err(&deep) < err(&shallow) / 4.0);
    }

    #[test]
    fn flat_fit_matches_reference_bitwise() {
        // Heavy ties in both features, plus a smooth column.
        let x: Vec<Vec<f64>> = (0..90)
            .map(|i| vec![(i % 9) as f64, ((i * 7) % 5) as f64, i as f64 / 90.0])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| 2.0 * r[0] - r[1] + (6.0 * r[2]).sin())
            .collect();
        let full: Vec<usize> = (0..x.len()).collect();
        let boot: Vec<usize> = (0..x.len()).map(|i| (i * 37) % x.len()).collect();
        let configs = [
            TreeConfig::default(),
            TreeConfig {
                max_depth: 3,
                ..Default::default()
            },
            TreeConfig {
                feature_subsample: Some(2),
                ..Default::default()
            },
        ];
        for idx in [&full, &boot] {
            for cfg in configs {
                for seed in [0u64, 9] {
                    let flat = RegressionTree::fit(&x, &y, idx, cfg, seed);
                    let reference = RegressionTree::fit_reference(&x, &y, idx, cfg, seed);
                    assert_eq!(flat, reference, "cfg {cfg:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_fits_is_clean() {
        let (x, y) = step_data();
        let m = TrainMatrix::from_rows(&x);
        let mut scratch = TreeScratch::default();
        let big: Vec<usize> = (0..x.len()).collect();
        let small = vec![3usize, 5, 5, 9];
        // Large fit, then a smaller one reusing the same arena, then the
        // large one again: results must not depend on arena history.
        let a = RegressionTree::fit_flat(&m, &y, &big, TreeConfig::default(), 1, &mut scratch);
        let _ = RegressionTree::fit_flat(&m, &y, &small, TreeConfig::default(), 2, &mut scratch);
        let b = RegressionTree::fit_flat(&m, &y, &big, TreeConfig::default(), 1, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_counts_and_orders() {
        let mut idx = vec![0, 1, 2, 3, 4, 5];
        let mid = partition(&mut idx, |i| i % 2 == 0);
        assert_eq!(mid, 3);
        assert!(idx[..3].iter().all(|&i| i % 2 == 0));
        assert!(idx[3..].iter().all(|&i| i % 2 == 1));
    }
}
