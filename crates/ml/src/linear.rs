//! Ordinary least squares with an intercept (and a vanishing ridge term for
//! numerical stability on collinear inputs), solved via the normal
//! equations and Cholesky factorization.

use crate::batch::FeatureMatrix;
use crate::linalg::{dot, solve_spd, Matrix};
use crate::model::Regressor;
use crate::train::TrainMatrix;
use serde::{Deserialize, Serialize};

/// Linear regression `y = w·x + b`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Feature weights (empty before `fit`).
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Optional explicit ridge strength (0.0 = pure OLS; the solver still
    /// adds a microscopic jitter if the system is singular).
    pub ridge: f64,
}

impl LinearRegression {
    /// Ridge regression with the given L2 strength.
    pub fn ridge(lambda: f64) -> LinearRegression {
        LinearRegression {
            ridge: lambda,
            ..Default::default()
        }
    }

    /// Normal-equation fit over a prebuilt flat matrix: the augmented
    /// `[X | 1]` design is assembled in one flat buffer (no per-row
    /// `Vec`s). The Gram matrix reads elements in the identical order as
    /// the reference, so the fit is bitwise identical to
    /// [`fit_reference`](LinearRegression::fit_reference).
    pub fn fit_flat(&mut self, m: &TrainMatrix, y: &[f64]) {
        assert!(m.n_rows() > 0, "cannot fit to an empty dataset");
        assert_eq!(m.n_rows(), y.len());
        let n = m.n_rows();
        let d = m.n_features();
        let mut data = Vec::with_capacity(n * (d + 1));
        for i in 0..n {
            data.extend_from_slice(m.row(i));
            data.push(1.0);
        }
        let xm = Matrix::from_flat(n, d + 1, data);
        let mut gram = xm.gram();
        if self.ridge > 0.0 {
            // Do not penalize the intercept.
            for i in 0..d {
                gram.set(i, i, gram.get(i, i) + self.ridge);
            }
        }
        let rhs = xm.t_mul_vec(y);
        let sol = solve_spd(&gram, &rhs);
        self.intercept = sol[d];
        self.weights = sol[..d].to_vec();
    }

    /// The original row-of-vecs fit, kept as the bit-identity oracle for
    /// [`fit_flat`](LinearRegression::fit_flat).
    pub fn fit_reference(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        // Augment with a constant column for the intercept.
        let aug: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                let mut v = Vec::with_capacity(d + 1);
                v.extend_from_slice(r);
                v.push(1.0);
                v
            })
            .collect();
        let xm = Matrix::from_rows(&aug);
        let mut gram = xm.gram();
        if self.ridge > 0.0 {
            // Do not penalize the intercept.
            for i in 0..d {
                gram.set(i, i, gram.get(i, i) + self.ridge);
            }
        }
        let rhs = xm.t_mul_vec(y);
        let sol = solve_spd(&gram, &rhs);
        self.intercept = sol[d];
        self.weights = sol[..d].to_vec();
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let m = TrainMatrix::from_rows(x);
        self.fit_flat(&m, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "predict before fit?");
        dot(row, &self.weights) + self.intercept
    }

    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        // Width checked once for the whole batch; each row is then one
        // fused weights·row pass over contiguous storage.
        assert_eq!(x.cols(), self.weights.len(), "matrix width mismatch");
        x.iter_rows()
            .map(|row| dot(row, &self.weights) + self.intercept)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.7).sin(), (i as f64 * 0.3).cos(), i as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0] - r[1] + 0.5 * r[2] + 7.0).collect();
        let mut m = LinearRegression::default();
        m.fit(&x, &y);
        assert!((m.weights[0] - 4.0).abs() < 1e-8);
        assert!((m.weights[1] + 1.0).abs() < 1e-8);
        assert!((m.weights[2] - 0.5).abs() < 1e-8);
        assert!((m.intercept - 7.0).abs() < 1e-6);
    }

    #[test]
    fn intercept_only_data() {
        let x = vec![vec![0.0], vec![0.0], vec![0.0]];
        let y = vec![5.0, 5.0, 5.0];
        let mut m = LinearRegression::default();
        m.fit(&x, &y);
        assert!((m.predict_row(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0]).collect();
        let mut ols = LinearRegression::default();
        ols.fit(&x, &y);
        let mut rr = LinearRegression::ridge(1e4);
        rr.fit(&x, &y);
        assert!(rr.weights[0].abs() < ols.weights[0].abs());
    }

    #[test]
    fn collinear_features_still_fit() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| 3.0 * i as f64).collect();
        let mut m = LinearRegression::default();
        m.fit(&x, &y);
        let pred = m.predict_row(&[10.0, 20.0]);
        assert!((pred - 30.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        LinearRegression::default().fit(&[], &[]);
    }
}
