//! Prediction error metrics: APE, MAPE, RMSE (the quantities of the paper's
//! Figure 9 and Table 2), plus R² for internal diagnostics.

/// Absolute percentage error of one prediction. Zero actuals yield the
/// absolute error instead of dividing by zero.
pub fn ape(actual: f64, predicted: f64) -> f64 {
    if actual == 0.0 {
        (predicted - actual).abs()
    } else {
        ((predicted - actual) / actual).abs()
    }
}

/// Mean absolute percentage error over paired slices.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    assert!(!actual.is_empty(), "MAPE of nothing");
    actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| ape(a, p))
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error over paired slices.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    assert!(!actual.is_empty(), "RMSE of nothing");
    let mse = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination. 1.0 is perfect; 0.0 matches the mean
/// predictor; negative is worse than the mean.
pub fn r2(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    assert!(!actual.is_empty());
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ape_basic() {
        assert_eq!(ape(10.0, 12.0), 0.2);
        assert_eq!(ape(10.0, 8.0), 0.2);
        assert_eq!(ape(0.0, 3.0), 3.0);
    }

    #[test]
    fn mape_averages() {
        let a = [10.0, 20.0];
        let p = [12.0, 18.0];
        assert!((mape(&a, &p) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        let a = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&a, &p) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(r2(&a, &a), 1.0);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&a, &p).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_mape_panics() {
        mape(&[], &[]);
    }
}
