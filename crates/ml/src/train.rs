//! Flat training inputs and reusable scratch arenas for the cold-compile
//! training hot path.
//!
//! [`TrainMatrix`] is the training-side analogue of the prediction-side
//! `FeatureMatrix`: one dataset held in both row-major and column-major
//! form, built **once per fit** so every trainer streams over contiguous
//! storage instead of ragged `&[Vec<f64>]` rows. [`TreeScratch`] is the
//! per-worker arena the pre-sorted-columns CART builder recycles across
//! trees — bootstrap index buffers, root-sorted feature orders, run
//! tables — so a whole forest fit allocates nothing per node.
//!
//! Every consumer of these types carries a bit-identity contract: the
//! optimized `fit` paths must produce models bitwise identical to the
//! retained `fit_reference` implementations (property-tested per
//! algorithm in the crate root).

/// A training dataset in flat dual layout: row-major rows for kernels
/// that stream observations, column-major columns for per-feature scans
/// (tree splits, coordinate descent, column norms).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainMatrix {
    rows: Vec<f64>,
    cols: Vec<f64>,
    n: usize,
    d: usize,
}

impl TrainMatrix {
    /// Build from ragged rows; every row must share one width.
    ///
    /// Panics on an empty or ragged input — trainers rely on at least one
    /// row existing.
    pub fn from_rows(x: &[Vec<f64>]) -> TrainMatrix {
        assert!(!x.is_empty(), "cannot build a training matrix from no rows");
        let n = x.len();
        let d = x[0].len();
        assert!(n < u32::MAX as usize, "row count exceeds u32 index space");
        let mut rows = Vec::with_capacity(n * d);
        for (i, row) in x.iter().enumerate() {
            assert_eq!(row.len(), d, "ragged row {i}");
            rows.extend_from_slice(row);
        }
        let mut cols = vec![0.0; n * d];
        for (i, row) in rows.chunks_exact(d.max(1)).enumerate().take(n) {
            for (j, &v) in row.iter().enumerate() {
                cols[j * n + i] = v;
            }
        }
        TrainMatrix { rows, cols, n, d }
    }

    /// Number of observations.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.d
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.d..(i + 1) * self.d]
    }

    /// Feature column `j` as a contiguous slice (indexed by row id).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// All rows as one flat row-major slice (`n × d`).
    #[inline]
    pub fn rows_flat(&self) -> &[f64] {
        &self.rows
    }
}

/// Reusable arena for the pre-sorted-columns CART builder.
///
/// A forest worker creates one of these and hands it to every tree it
/// fits; [`prepare`](TreeScratch::prepare) resizes the buffers for the
/// current bootstrap sample without releasing capacity, so after the
/// first tree the entire build is allocation-free.
#[derive(Debug, Default)]
pub struct TreeScratch {
    /// The node index multiset, maintained by the reference partition.
    pub(crate) idx: Vec<u32>,
    /// Per-feature value-sorted orders, one `n`-stride column per feature,
    /// maintained down the tree by both-sides-stable partition.
    pub(crate) orders: Vec<u32>,
    /// Double buffer A for the per-node running sort order.
    pub(crate) order_a: Vec<u32>,
    /// Double buffer B for the per-node running sort order.
    pub(crate) order_b: Vec<u32>,
    /// Run id per source row id (counting-sort class table).
    pub(crate) run_of: Vec<u32>,
    /// Run start offsets, then placement cursors, during one fixup pass.
    pub(crate) run_cursor: Vec<u32>,
    /// Right-side spill buffer for the stable column partition.
    pub(crate) part: Vec<u32>,
    /// Candidate feature list (shuffled when subsampling).
    pub(crate) features: Vec<usize>,
}

impl TreeScratch {
    /// Size every buffer for a fit over `indices` rows of `m` and sort
    /// each feature column once at the root. Only the run structure
    /// (groups of bitwise-equal values) of these orders is consumed
    /// downstream, so an unstable sort is sufficient here.
    pub(crate) fn prepare(&mut self, m: &TrainMatrix, indices: &[usize]) {
        let n = indices.len();
        let d = m.n_features();
        self.idx.clear();
        self.idx.extend(indices.iter().map(|&i| {
            debug_assert!(i < m.n_rows(), "index {i} out of range");
            i as u32
        }));
        self.orders.clear();
        self.orders.resize(d * n, 0);
        for f in 0..d {
            let col = m.col(f);
            let seg = &mut self.orders[f * n..(f + 1) * n];
            seg.copy_from_slice(&self.idx);
            seg.sort_unstable_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
        }
        self.order_a.resize(n, 0);
        self.order_b.resize(n, 0);
        self.run_cursor.resize(n, 0);
        self.part.resize(n, 0);
        // `run_of` is indexed by source row id, not node position.
        self.run_of.resize(m.n_rows(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_layout_round_trips() {
        let x = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = TrainMatrix::from_rows(&x);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_features(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(0), &[1.0, 4.0]);
        assert_eq!(m.col(2), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        TrainMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_panics() {
        TrainMatrix::from_rows(&[]);
    }

    #[test]
    fn scratch_prepare_sorts_each_column() {
        let x = vec![
            vec![3.0, 0.5],
            vec![1.0, 0.5],
            vec![2.0, 0.1],
            vec![1.0, 0.9],
        ];
        let m = TrainMatrix::from_rows(&x);
        let mut s = TreeScratch::default();
        // Bootstrap-style duplicate indices are allowed.
        s.prepare(&m, &[0, 1, 2, 3, 1]);
        assert_eq!(s.idx, vec![0, 1, 2, 3, 1]);
        for f in 0..2 {
            let col = m.col(f);
            let seg = &s.orders[f * 5..(f + 1) * 5];
            for w in 0..4 {
                assert!(
                    col[seg[w] as usize].total_cmp(&col[seg[w + 1] as usize]).is_le(),
                    "feature {f} not sorted at {w}"
                );
            }
        }
    }
}
