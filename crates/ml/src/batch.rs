//! The batched-inference input container: a flat, row-major feature
//! matrix.
//!
//! Every prediction hot path in the system — the compile-time sweep, the
//! accuracy study, the serve daemon — asks the same question many times:
//! "what are the metrics for *this kernel* at *each of these clocks*?".
//! Answering it row by row pays a `Vec` allocation per configuration plus
//! per-row dispatch into every model. [`FeatureMatrix`] amortizes that:
//! one contiguous allocation holds the whole grid, rows are borrowed
//! slices, and the per-algorithm `predict_batch` fast paths stream over
//! it without allocating per row.
//!
//! The contract shared with the per-row reference path is **bitwise
//! identity**: a batched prediction over row `i` must produce exactly the
//! bits `predict_row(matrix.row(i))` produces, so the batch engine can be
//! swapped into any caller without perturbing a single decision
//! downstream (mirroring the serial-vs-parallel sweep contract).

/// A dense row-major feature matrix with a fixed column count.
///
/// All rows share one width, enforced at insertion — the batched
/// prediction paths rely on it and validate the width once per call
/// instead of once per row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// An empty matrix with `cols` columns and room for `rows` rows.
    pub fn with_capacity(rows: usize, cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: Vec::with_capacity(rows * cols),
            rows: 0,
            cols,
        }
    }

    /// Copy a slice-of-rows dataset into a flat matrix. Panics on ragged
    /// input (all rows must share the first row's width).
    pub fn from_rows(x: &[Vec<f64>]) -> FeatureMatrix {
        let cols = x.first().map_or(0, Vec::len);
        let mut m = FeatureMatrix::with_capacity(x.len(), cols);
        for row in x {
            m.push_row(row);
        }
        m
    }

    /// Append one row. Panics if the width does not match `cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.cols,
            "row {} has width {}, matrix has {} columns",
            self.rows,
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Begin a new row and return the writable slice for it. The caller
    /// fills the `cols` slots in place — this is the zero-copy path the
    /// grid builder uses to stream clock columns into a pre-written
    /// static prefix.
    pub fn push_row_uninit(&mut self) -> &mut [f64] {
        let start = self.data.len();
        self.data.resize(start + self.cols, 0.0);
        self.rows += 1;
        &mut self.data[start..]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (row width).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over the rows as slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
        let collected: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn ragged_push_panics() {
        let mut m = FeatureMatrix::with_capacity(2, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[1.0]);
    }

    #[test]
    fn uninit_rows_are_writable_in_place() {
        let mut m = FeatureMatrix::with_capacity(2, 2);
        m.push_row_uninit().copy_from_slice(&[7.0, 8.0]);
        let slot = m.push_row_uninit();
        slot[0] = 9.0;
        slot[1] = 10.0;
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[7.0, 8.0]);
        assert_eq!(m.row(1), &[9.0, 10.0]);
    }

    #[test]
    fn empty_matrix_iterates_nothing() {
        let m = FeatureMatrix::with_capacity(0, 4);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
    }
}
