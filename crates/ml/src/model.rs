//! The common regressor interface and the algorithm catalogue of the
//! paper's Section 8.3: Linear regression, Lasso, Random Forest, and
//! SVR with an RBF kernel.

use crate::batch::FeatureMatrix;
use crate::forest::RandomForest;
use crate::lasso::Lasso;
use crate::linear::LinearRegression;
use crate::svr::SvrRbf;
use crate::train::TrainMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A trainable regression model.
pub trait Regressor: Send + Sync {
    /// Fit to `(x, y)`. Panics on empty or ragged input.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predict one row. Must be called after `fit`.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict many rows. Panics on ragged input: a malformed request
    /// must fail loudly here, not feed truncated rows into a scaler and
    /// come back as a plausible-looking garbage prediction.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        if let Some(first) = x.first() {
            let width = first.len();
            for (i, row) in x.iter().enumerate() {
                assert_eq!(
                    row.len(),
                    width,
                    "ragged prediction input: row {i} has width {} but row 0 has width {width}",
                    row.len(),
                );
            }
        }
        x.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Predict every row of a flat matrix.
    ///
    /// The default is the **per-row reference path** — algorithms
    /// override it with allocation-free fast paths whose output must be
    /// bitwise identical to this definition (property-tested per
    /// algorithm).
    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_row(r)).collect()
    }
}

/// The ML algorithms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ordinary least squares (with a tiny ridge for stability).
    Linear,
    /// L1-regularized linear regression via coordinate descent.
    Lasso,
    /// Bagged CART regression trees.
    RandomForest,
    /// ε-support-vector regression with an RBF kernel.
    SvrRbf,
}

impl Algorithm {
    /// All four algorithms, in Table-2 column order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Linear,
        Algorithm::Lasso,
        Algorithm::RandomForest,
        Algorithm::SvrRbf,
    ];

    /// Instantiate the algorithm with its default hyperparameters
    /// (deterministic given `seed`, which only randomized algorithms use).
    pub fn build(self, seed: u64) -> Box<dyn Regressor> {
        match self {
            Algorithm::Linear => Box::new(LinearRegression::default()),
            Algorithm::Lasso => Box::new(Lasso::default()),
            Algorithm::RandomForest => Box::new(RandomForest::with_seed(seed)),
            Algorithm::SvrRbf => Box::new(SvrRbf::default()),
        }
    }
}

/// A fitted regressor in concrete form: cloneable, comparable and
/// serializable, so trained model bundles can be cached on disk and
/// shipped between processes (unlike a `Box<dyn Regressor>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainedRegressor {
    /// Fitted ordinary least squares.
    Linear(LinearRegression),
    /// Fitted Lasso.
    Lasso(Lasso),
    /// Fitted random forest.
    RandomForest(RandomForest),
    /// Fitted ε-SVR with RBF kernel.
    SvrRbf(SvrRbf),
}

impl TrainedRegressor {
    /// Build `algo` with its default hyperparameters, fit it to `(x, y)`
    /// and return the trained model (deterministic given `seed`).
    pub fn fit(algo: Algorithm, seed: u64, x: &[Vec<f64>], y: &[f64]) -> TrainedRegressor {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        let m = TrainMatrix::from_rows(x);
        TrainedRegressor::fit_flat(algo, seed, &m, y)
    }

    /// [`fit`](TrainedRegressor::fit) over a prebuilt flat matrix —
    /// callers training several targets on the same inputs (the metric
    /// pipeline) build the matrix once and share it across fits.
    pub fn fit_flat(algo: Algorithm, seed: u64, m: &TrainMatrix, y: &[f64]) -> TrainedRegressor {
        match algo {
            Algorithm::Linear => {
                let mut model = LinearRegression::default();
                model.fit_flat(m, y);
                TrainedRegressor::Linear(model)
            }
            Algorithm::Lasso => {
                let mut model = Lasso::default();
                model.fit_flat(m, y);
                TrainedRegressor::Lasso(model)
            }
            Algorithm::RandomForest => {
                let mut model = RandomForest::with_seed(seed);
                model.fit_flat(m, y);
                TrainedRegressor::RandomForest(model)
            }
            Algorithm::SvrRbf => {
                let mut model = SvrRbf::default();
                model.fit_flat(m, y);
                TrainedRegressor::SvrRbf(model)
            }
        }
    }

    /// The original per-algorithm training paths, kept as the
    /// bit-identity oracle for [`fit_flat`](TrainedRegressor::fit_flat)
    /// (property-tested in the crate root).
    pub fn fit_reference(
        algo: Algorithm,
        seed: u64,
        x: &[Vec<f64>],
        y: &[f64],
    ) -> TrainedRegressor {
        match algo {
            Algorithm::Linear => {
                let mut m = LinearRegression::default();
                m.fit_reference(x, y);
                TrainedRegressor::Linear(m)
            }
            Algorithm::Lasso => {
                let mut m = Lasso::default();
                m.fit_reference(x, y);
                TrainedRegressor::Lasso(m)
            }
            Algorithm::RandomForest => {
                let mut m = RandomForest::with_seed(seed);
                m.fit_reference(x, y);
                TrainedRegressor::RandomForest(m)
            }
            Algorithm::SvrRbf => {
                let mut m = SvrRbf::default();
                m.fit_reference(x, y);
                TrainedRegressor::SvrRbf(m)
            }
        }
    }

    /// The catalogue algorithm this model was trained with.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            TrainedRegressor::Linear(_) => Algorithm::Linear,
            TrainedRegressor::Lasso(_) => Algorithm::Lasso,
            TrainedRegressor::RandomForest(_) => Algorithm::RandomForest,
            TrainedRegressor::SvrRbf(_) => Algorithm::SvrRbf,
        }
    }

    /// The flat `(weights, intercept)` view of a linear-family model, for
    /// introspection (e.g. static analysis of a trained bundle). Lasso
    /// folds its intercept into the target scaler, so it reports 0.0 here;
    /// tree and kernel models have no flat coefficient view and return
    /// `None`.
    pub fn coefficients(&self) -> Option<(&[f64], f64)> {
        match self {
            TrainedRegressor::Linear(m) => Some((&m.weights, m.intercept)),
            TrainedRegressor::Lasso(m) => Some((m.coefficients(), 0.0)),
            TrainedRegressor::RandomForest(_) | TrainedRegressor::SvrRbf(_) => None,
        }
    }
}

impl Regressor for TrainedRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        match self {
            TrainedRegressor::Linear(m) => m.fit(x, y),
            TrainedRegressor::Lasso(m) => m.fit(x, y),
            TrainedRegressor::RandomForest(m) => m.fit(x, y),
            TrainedRegressor::SvrRbf(m) => m.fit(x, y),
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            TrainedRegressor::Linear(m) => m.predict_row(row),
            TrainedRegressor::Lasso(m) => m.predict_row(row),
            TrainedRegressor::RandomForest(m) => m.predict_row(row),
            TrainedRegressor::SvrRbf(m) => m.predict_row(row),
        }
    }

    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        // One enum dispatch for the whole batch instead of one per row.
        match self {
            TrainedRegressor::Linear(m) => m.predict_batch(x),
            TrainedRegressor::Lasso(m) => m.predict_batch(x),
            TrainedRegressor::RandomForest(m) => m.predict_batch(x),
            TrainedRegressor::SvrRbf(m) => m.predict_batch(x),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Linear => write!(f, "Linear"),
            Algorithm::Lasso => write!(f, "Lasso"),
            Algorithm::RandomForest => write!(f, "RandomForest"),
            Algorithm::SvrRbf => write!(f, "SVR_RBF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth nonlinear function all four algorithms should track on
    /// in-sample data.
    fn toy_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let a = (i % 12) as f64 / 12.0;
                let b = (i / 12) as f64 / 10.0;
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[1] * r[1]).collect();
        (x, y)
    }

    #[test]
    fn all_algorithms_fit_in_sample() {
        let (x, y) = toy_problem();
        for algo in Algorithm::ALL {
            let mut m = algo.build(7);
            m.fit(&x, &y);
            let pred = m.predict(&x);
            let err = crate::errors::rmse(&y, &pred);
            let spread = y.iter().cloned().fold(f64::MIN, f64::max)
                - y.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                err < 0.2 * spread,
                "{algo}: in-sample rmse {err} too large vs spread {spread}"
            );
        }
    }

    #[test]
    fn trained_regressor_matches_boxed_build() {
        let (x, y) = toy_problem();
        for algo in Algorithm::ALL {
            let mut boxed = algo.build(7);
            boxed.fit(&x, &y);
            let trained = TrainedRegressor::fit(algo, 7, &x, &y);
            assert_eq!(trained.algorithm(), algo);
            for row in x.iter().step_by(17) {
                assert_eq!(
                    boxed.predict_row(row),
                    trained.predict_row(row),
                    "{algo}: enum and boxed paths diverge"
                );
            }
        }
    }

    #[test]
    fn coefficients_expose_linear_families_only() {
        let (x, y) = toy_problem();
        let linear = TrainedRegressor::fit(Algorithm::Linear, 0, &x, &y);
        let (w, b) = linear.coefficients().unwrap();
        assert_eq!(w.len(), x[0].len());
        assert!(b.is_finite());

        let lasso = TrainedRegressor::fit(Algorithm::Lasso, 0, &x, &y);
        let (w, b) = lasso.coefficients().unwrap();
        assert_eq!(w.len(), x[0].len());
        assert_eq!(b, 0.0);

        let forest = TrainedRegressor::fit(Algorithm::RandomForest, 0, &x, &y);
        assert!(forest.coefficients().is_none());
        let svr = TrainedRegressor::fit(Algorithm::SvrRbf, 0, &x, &y);
        assert!(svr.coefficients().is_none());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_predict_input_panics() {
        let (x, y) = toy_problem();
        let m = TrainedRegressor::fit(Algorithm::Linear, 0, &x, &y);
        m.predict(&[vec![0.1, 0.2], vec![0.3]]);
    }

    #[test]
    fn batch_dispatch_matches_per_row_for_all_algorithms() {
        let (x, y) = toy_problem();
        let matrix = FeatureMatrix::from_rows(&x);
        for algo in Algorithm::ALL {
            let m = TrainedRegressor::fit(algo, 7, &x, &y);
            let batch = m.predict_batch(&matrix);
            assert_eq!(batch.len(), x.len());
            for (row, got) in x.iter().zip(&batch) {
                assert_eq!(
                    got.to_bits(),
                    m.predict_row(row).to_bits(),
                    "{algo}: batch and per-row paths diverge"
                );
            }
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::Linear.to_string(), "Linear");
        assert_eq!(Algorithm::Lasso.to_string(), "Lasso");
        assert_eq!(Algorithm::RandomForest.to_string(), "RandomForest");
        assert_eq!(Algorithm::SvrRbf.to_string(), "SVR_RBF");
    }
}
