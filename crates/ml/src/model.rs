//! The common regressor interface and the algorithm catalogue of the
//! paper's Section 8.3: Linear regression, Lasso, Random Forest, and
//! SVR with an RBF kernel.

use crate::forest::RandomForest;
use crate::lasso::Lasso;
use crate::linear::LinearRegression;
use crate::svr::SvrRbf;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A trainable regression model.
pub trait Regressor: Send + Sync {
    /// Fit to `(x, y)`. Panics on empty or ragged input.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Predict one row. Must be called after `fit`.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict many rows.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_row(r)).collect()
    }
}

/// The ML algorithms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ordinary least squares (with a tiny ridge for stability).
    Linear,
    /// L1-regularized linear regression via coordinate descent.
    Lasso,
    /// Bagged CART regression trees.
    RandomForest,
    /// ε-support-vector regression with an RBF kernel.
    SvrRbf,
}

impl Algorithm {
    /// All four algorithms, in Table-2 column order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Linear,
        Algorithm::Lasso,
        Algorithm::RandomForest,
        Algorithm::SvrRbf,
    ];

    /// Instantiate the algorithm with its default hyperparameters
    /// (deterministic given `seed`, which only randomized algorithms use).
    pub fn build(self, seed: u64) -> Box<dyn Regressor> {
        match self {
            Algorithm::Linear => Box::new(LinearRegression::default()),
            Algorithm::Lasso => Box::new(Lasso::default()),
            Algorithm::RandomForest => Box::new(RandomForest::with_seed(seed)),
            Algorithm::SvrRbf => Box::new(SvrRbf::default()),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Linear => write!(f, "Linear"),
            Algorithm::Lasso => write!(f, "Lasso"),
            Algorithm::RandomForest => write!(f, "RandomForest"),
            Algorithm::SvrRbf => write!(f, "SVR_RBF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth nonlinear function all four algorithms should track on
    /// in-sample data.
    fn toy_problem() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let a = (i % 12) as f64 / 12.0;
                let b = (i / 12) as f64 / 10.0;
                vec![a, b]
            })
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[1] * r[1]).collect();
        (x, y)
    }

    #[test]
    fn all_algorithms_fit_in_sample() {
        let (x, y) = toy_problem();
        for algo in Algorithm::ALL {
            let mut m = algo.build(7);
            m.fit(&x, &y);
            let pred = m.predict(&x);
            let err = crate::errors::rmse(&y, &pred);
            let spread = y.iter().cloned().fold(f64::MIN, f64::max)
                - y.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                err < 0.2 * spread,
                "{algo}: in-sample rmse {err} too large vs spread {spread}"
            );
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::Linear.to_string(), "Linear");
        assert_eq!(Algorithm::Lasso.to_string(), "Lasso");
        assert_eq!(Algorithm::RandomForest.to_string(), "RandomForest");
        assert_eq!(Algorithm::SvrRbf.to_string(), "SVR_RBF");
    }
}
