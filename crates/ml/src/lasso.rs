//! Lasso (L1-regularized least squares) via cyclic coordinate descent on
//! standardized features, with soft-thresholding updates.

use crate::batch::FeatureMatrix;
use crate::data::{StandardScaler, TargetScaler};
use crate::model::Regressor;
use crate::train::TrainMatrix;
use serde::{Deserialize, Serialize};

/// Lasso regression.
///
/// Features and target are standardized internally; `lambda` is the L1
/// strength in standardized space (so the default is meaningful across
/// datasets of any scale).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lasso {
    /// L1 regularization strength (standardized space).
    pub lambda: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the largest coefficient change per sweep.
    pub tol: f64,
    weights: Vec<f64>,
    scaler: Option<StandardScaler>,
    target: Option<TargetScaler>,
}

impl Default for Lasso {
    fn default() -> Self {
        Lasso {
            lambda: 1e-3,
            max_iter: 1000,
            tol: 1e-8,
            weights: Vec::new(),
            scaler: None,
            target: None,
        }
    }
}

impl Lasso {
    /// Lasso with an explicit L1 strength.
    pub fn with_lambda(lambda: f64) -> Lasso {
        Lasso {
            lambda,
            ..Default::default()
        }
    }

    /// Standardized-space coefficients (diagnostics; empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Number of exactly-zero coefficients (the sparsity Lasso buys).
    pub fn zero_count(&self) -> usize {
        self.weights.iter().filter(|w| **w == 0.0).count()
    }

    /// Coordinate descent over flat standardized columns with precomputed
    /// squared norms and an active set (the non-constant columns — the
    /// exact coordinates the reference visits). Bitwise identical to
    /// [`fit_reference`](Lasso::fit_reference).
    pub fn fit_flat(&mut self, m: &TrainMatrix, y: &[f64]) {
        assert!(m.n_rows() > 0, "cannot fit to an empty dataset");
        assert_eq!(m.n_rows(), y.len());
        let scaler = StandardScaler::fit_matrix(m);
        let ts = TargetScaler::fit(y);
        let ys: Vec<f64> = y.iter().map(|&v| ts.transform(v)).collect();

        let n = m.n_rows();
        let d = m.n_features();
        let nf = n as f64;
        // Standardized columns, contiguous per feature. Each element is
        // the reference's `transform_row` value for that (row, column).
        let mut xs = vec![0.0f64; d * n];
        for j in 0..d {
            let (mean, std) = (scaler.mean[j], scaler.std[j]);
            for (slot, &v) in xs[j * n..(j + 1) * n].iter_mut().zip(m.col(j)) {
                *slot = (v - mean) / std;
            }
        }
        // Column norms, accumulated in the reference's row order.
        let col_sq: Vec<f64> = (0..d)
            .map(|j| xs[j * n..(j + 1) * n].iter().map(|&v| v * v).sum::<f64>() / nf)
            .collect();
        // The active set: the reference `continue`s on zero-norm columns
        // every sweep; hoisting the filter out of the loop visits the
        // identical coordinate sequence.
        let active: Vec<usize> = (0..d).filter(|&j| col_sq[j] != 0.0).collect();
        let mut w = vec![0.0; d];
        let mut residual = ys.clone(); // r = y - Xw, starts at y since w = 0
        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for &j in &active {
                let col = &xs[j * n..(j + 1) * n];
                // rho = (1/n) x_j · (r + w_j x_j)
                let mut rho = 0.0;
                for (&xv, r) in col.iter().zip(&residual) {
                    rho += xv * r;
                }
                rho = rho / nf + w[j] * col_sq[j];
                let new_w = soft_threshold(rho, self.lambda) / col_sq[j];
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (&xv, r) in col.iter().zip(residual.iter_mut()) {
                        *r -= delta * xv;
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
        self.target = Some(ts);
    }

    /// The original row-major coordinate descent, kept as the
    /// bit-identity oracle for [`fit_flat`](Lasso::fit_flat).
    pub fn fit_reference(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform(x);
        let ts = TargetScaler::fit(y);
        let ys: Vec<f64> = y.iter().map(|&v| ts.transform(v)).collect();

        let n = xs.len();
        let d = xs[0].len();
        let nf = n as f64;
        // Column norms (constant columns were mapped to zero by the scaler).
        let col_sq: Vec<f64> = (0..d)
            .map(|j| xs.iter().map(|r| r[j] * r[j]).sum::<f64>() / nf)
            .collect();
        let mut w = vec![0.0; d];
        let mut residual = ys.clone(); // r = y - Xw, starts at y since w = 0
        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                if col_sq[j] == 0.0 {
                    continue;
                }
                // rho = (1/n) x_j · (r + w_j x_j)
                let mut rho = 0.0;
                for (row, r) in xs.iter().zip(&residual) {
                    rho += row[j] * r;
                }
                rho = rho / nf + w[j] * col_sq[j];
                let new_w = soft_threshold(rho, self.lambda) / col_sq[j];
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (row, r) in xs.iter().zip(residual.iter_mut()) {
                        *r -= delta * row[j];
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
        self.target = Some(ts);
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert!(!x.is_empty(), "cannot fit to an empty dataset");
        assert_eq!(x.len(), y.len());
        let m = TrainMatrix::from_rows(x);
        self.fit_flat(&m, y);
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let ts = self.target.expect("predict before fit");
        debug_assert_eq!(row.len(), self.weights.len(), "row width mismatch");
        let rs = scaler.transform_row(row);
        let z: f64 = rs.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
        ts.inverse(z)
    }

    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let ts = self.target.expect("predict before fit");
        assert_eq!(x.cols(), self.weights.len(), "matrix width mismatch");
        // Standardization fused into the dot product: each term is
        // ((v − mean) / std) · w accumulated in column order, the exact
        // operation sequence of `transform_row` + zip-map-sum.
        x.iter_rows()
            .map(|row| {
                let mut z = 0.0;
                for (((&v, &m), &s), &w) in row
                    .iter()
                    .zip(&scaler.mean)
                    .zip(&scaler.std)
                    .zip(&self.weights)
                {
                    z += (v - m) / s * w;
                }
                ts.inverse(z)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn fits_linear_relation_with_small_lambda() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 5.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        let mut m = Lasso::with_lambda(1e-6);
        m.fit(&x, &y);
        for (row, want) in x.iter().zip(&y) {
            assert!((m.predict_row(row) - want).abs() < 1e-2);
        }
    }

    #[test]
    fn large_lambda_zeroes_noise_features() {
        // y depends only on x0; x1 is random-ish noise.
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, ((i * 7919) % 100) as f64 / 100.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[0]).collect();
        let mut m = Lasso::with_lambda(0.2);
        m.fit(&x, &y);
        assert_eq!(m.coefficients()[1], 0.0, "noise coefficient not zeroed");
        assert!(m.coefficients()[0] > 0.0);
    }

    #[test]
    fn extreme_lambda_gives_mean_predictor() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| i as f64 * 2.0).collect();
        let mut m = Lasso::with_lambda(1e6);
        m.fit(&x, &y);
        assert_eq!(m.zero_count(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m.predict_row(&[25.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn handles_constant_features() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![3.0, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut m = Lasso::default();
        m.fit(&x, &y);
        let p = m.predict_row(&[3.0, 10.0]);
        assert!((p - 10.0).abs() < 0.3, "pred {p}");
    }
}
