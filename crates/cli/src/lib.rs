//! # synergy-cli
//!
//! Library backing the `synergy` command-line tool: argument parsing (no
//! external dependencies) and the subcommand implementations. Keeping the
//! logic in a library makes every command unit-testable; `main.rs` is a
//! thin shell.
//!
//! Subcommands:
//!
//! * `devices` — the device catalogue with Figure-1 frequency tables;
//! * `benchmarks` — the 23-kernel suite with boundedness labels;
//! * `characterize <bench> [--device v100|a100|mi100|titanx]` — full
//!   frequency sweep, Pareto front, and per-target selections;
//! * `compile <bench>... [--device ...] [--out registry.json]` — train
//!   models and emit the target registry JSON;
//! * `lint <bench> [--device ...] [--json]` — run the `synergy-analyze`
//!   diagnostics (IR, sweep and model lint families) over one benchmark;
//! * `analyze (--all | <bench>...) [--device ...|all] [--format
//!   text|json|sarif] [--baseline PATH]` — run the static lint registry
//!   (structural IR lints plus the interval/roofline family) over many
//!   benchmark × device pairs in parallel, export JSON or SARIF 2.1.0,
//!   and ratchet against a committed baseline;
//! * `scaling [--gpus N] [--app cloverleaf|miniweather]` — a Figure-10
//!   style weak-scaling run;
//! * `trace <bench> [--device ...] [--target ES_50] [--out trace.json]
//!   [--summary]` — run one benchmark through the full pipeline with
//!   telemetry on and export a Chrome/Perfetto trace;
//! * `serve [--addr host:port] [--workers N] [--queue N] [--reactors N] [--small]` —
//!   run the `synergy-serve` tuning daemon until a client drains it;
//! * `fleet --node host:port[=v100,a100]...` — run the `synergy-fleet`
//!   coordinator fronting N serve nodes: cache-affinity routing,
//!   chunked sweeps, preemption tolerance and exact work reassignment;
//! * `metrics [<addr>] [--format json|openmetrics] [--watch SECS] [--fleet]` —
//!   scrape a running daemon's live metrics snapshot, as the JSON wire
//!   form, OpenMetrics exposition text, or the fleet cost rollup;
//! * `request <op> ... [--addr host:port] [--deadline ms] [--retries N]` —
//!   send one request (`ping`, `stats`, `metrics`, `drain`, `compile`,
//!   `sweep`, `predict`, `nodes`, `join`, `preempt`) to a running daemon
//!   or coordinator and render the reply, retrying `busy` replies with
//!   jittered exponential backoff when `--retries` is given;
//! * `bench <suite> [--tolerance PCT] [--no-fail] [--no-run]` — run a perf
//!   suite (`pipeline`, `serve`, `fleet`) in its `--small` configuration,
//!   then diff its headline counters against the previous same-parameter
//!   line in `experiments/bench_history.jsonl`, exiting non-zero when any
//!   counter regressed beyond tolerance.

#![warn(missing_docs)]

pub mod commands;

use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the device catalogue.
    Devices,
    /// List the benchmark suite.
    Benchmarks,
    /// Characterize one benchmark on one device.
    Characterize {
        /// Benchmark name.
        bench: String,
        /// Device key (`v100`, `a100`, `mi100`, `titanx`).
        device: String,
    },
    /// Compile a target registry for benchmarks.
    Compile {
        /// Benchmark names.
        benches: Vec<String>,
        /// Device key.
        device: String,
        /// Output path (`-` = stdout).
        out: String,
    },
    /// Lint one benchmark: IR, measured sweep and trained models.
    Lint {
        /// Benchmark name.
        bench: String,
        /// Device key.
        device: String,
        /// Emit the report as JSON instead of rendered text.
        json: bool,
    },
    /// Run the static lint registry over many benchmark × device pairs,
    /// with optional SARIF export and ratcheting baseline.
    Analyze {
        /// Benchmark names; empty means the whole suite (`--all`).
        benches: Vec<String>,
        /// Device key, or `all` for the full catalogue.
        device: String,
        /// Output format: `text`, `json` or `sarif`.
        format: String,
        /// Output path (`-` = stdout).
        out: String,
        /// Ratchet baseline path; empty = no ratchet.
        baseline: String,
        /// Re-write the baseline from this run instead of diffing.
        write_baseline: bool,
        /// Trip-count widening factor for the abstract interpreter.
        uncertainty: f64,
        /// Also run the dynamic subjects (measured sweeps, trained
        /// models) — slower and environment-dependent, so not part of
        /// the ratchet gate.
        deep: bool,
    },
    /// Weak-scaling study.
    Scaling {
        /// Number of GPUs.
        gpus: usize,
        /// App name (`cloverleaf` or `miniweather`).
        app: String,
    },
    /// Trace one benchmark end to end and export a Chrome trace.
    Trace {
        /// Benchmark name.
        bench: String,
        /// Device key.
        device: String,
        /// Energy target to compile and submit under (e.g. `ES_50`,
        /// `MIN_EDP`); empty = default clocks.
        target: String,
        /// Trace output path (`-` = stdout).
        out: String,
        /// Also print the human-readable telemetry summary.
        summary: bool,
    },
    /// Run the energy-tuning daemon until drained.
    Serve {
        /// Listen address (`host:port`; port `0` = ephemeral).
        addr: String,
        /// Worker threads computing responses.
        workers: usize,
        /// Bounded queue capacity (admission control).
        queue: usize,
        /// Reactor shards multiplexing connection I/O.
        reactors: usize,
        /// Use the fast training profile (coarser sweep stride).
        small: bool,
    },
    /// Run the fleet coordinator until drained.
    Fleet {
        /// Listen address (`host:port`; port `0` = ephemeral).
        addr: String,
        /// Node specs: `host:port` or `host:port=v100,a100`.
        nodes: Vec<String>,
        /// Reactor shards multiplexing client connection I/O.
        reactors: usize,
        /// Heartbeat probe interval, milliseconds.
        heartbeat_ms: u64,
        /// Silence threshold before a node is declared dead, ms.
        dead_after_ms: u64,
        /// Per-node bound on queued-plus-in-flight forwards.
        max_inflight: usize,
        /// Clock-grid rows per forwarded sweep chunk.
        sweep_chunk: usize,
    },
    /// Scrape a running daemon's live metrics snapshot.
    Metrics {
        /// Daemon address to connect to.
        addr: String,
        /// Output format: `json` or `openmetrics`.
        format: String,
        /// Re-scrape every N seconds until the daemon goes away.
        watch: Option<u64>,
        /// Render the fleet cost rollup summary instead of raw output.
        fleet: bool,
    },
    /// Send one request to a running daemon.
    Request {
        /// Daemon address to connect to.
        addr: String,
        /// Client-side deadline in milliseconds (0 = server default).
        deadline_ms: u64,
        /// Resend budget for `busy` replies (jittered backoff).
        retries: u32,
        /// The request to send.
        req: synergy_serve::Request,
    },
    /// Run one perf suite and diff it against the benchmark history.
    Bench {
        /// Suite name (`pipeline`, `serve` or `fleet`).
        suite: String,
        /// Regression tolerance in percent (worse beyond this fails).
        tolerance: f64,
        /// Report regressions but exit 0 anyway.
        no_fail: bool,
        /// Skip running the perf binary; diff the existing history only.
        no_run: bool,
        /// History file override (default:
        /// `experiments/bench_history.jsonl`).
        history: Option<String>,
        /// Directory holding the `*_perf` binaries (default: next to the
        /// running executable).
        bin_dir: Option<String>,
    },
    /// Print usage.
    Help,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parse a command line (excluding argv[0]).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, UsageError> {
    let args: Vec<String> = args.into_iter().collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let take_flag = |name: &str, default: &str| -> String {
        let mut val = default.to_string();
        let mut i = 0;
        while i < args.len() {
            if args[i] == name {
                if let Some(v) = args.get(i + 1) {
                    val = v.clone();
                }
            }
            i += 1;
        }
        val
    };
    match cmd.as_str() {
        "devices" => Ok(Command::Devices),
        "benchmarks" => Ok(Command::Benchmarks),
        "characterize" => {
            let bench = it
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageError("characterize needs a benchmark name".into()))?
                .clone();
            Ok(Command::Characterize {
                bench,
                device: take_flag("--device", "v100"),
            })
        }
        "compile" => {
            let mut benches = Vec::new();
            let mut skip_next = false;
            for a in it {
                if skip_next {
                    skip_next = false;
                    continue;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    continue;
                }
                benches.push(a.clone());
            }
            if benches.is_empty() {
                return Err(UsageError("compile needs at least one benchmark".into()));
            }
            Ok(Command::Compile {
                benches,
                device: take_flag("--device", "v100"),
                out: take_flag("--out", "-"),
            })
        }
        "lint" => {
            let mut bench: Option<String> = None;
            let mut device = "v100".to_string();
            let mut json = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--device" => {
                        device = it
                            .next()
                            .ok_or_else(|| UsageError("--device needs a value".into()))?
                            .clone();
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown lint flag `{flag}`")));
                    }
                    name => {
                        if bench.is_some() {
                            return Err(UsageError("lint takes one benchmark".into()));
                        }
                        bench = Some(name.to_string());
                    }
                }
            }
            Ok(Command::Lint {
                bench: bench.ok_or_else(|| UsageError("lint needs a benchmark name".into()))?,
                device,
                json,
            })
        }
        "analyze" => {
            let mut benches: Vec<String> = Vec::new();
            let mut all = false;
            let mut device = "v100".to_string();
            let mut format = "text".to_string();
            let mut out = "-".to_string();
            let mut baseline = String::new();
            let mut write_baseline = false;
            let mut uncertainty = 0.5f64;
            let mut deep = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--all" => all = true,
                    "--deep" => deep = true,
                    "--write-baseline" => write_baseline = true,
                    "--device" => {
                        device = it
                            .next()
                            .ok_or_else(|| UsageError("--device needs a value".into()))?
                            .clone();
                    }
                    "--format" => {
                        format = it
                            .next()
                            .ok_or_else(|| UsageError("--format needs a value".into()))?
                            .clone();
                    }
                    "--out" => {
                        out = it
                            .next()
                            .ok_or_else(|| UsageError("--out needs a value".into()))?
                            .clone();
                    }
                    "--baseline" => {
                        baseline = it
                            .next()
                            .ok_or_else(|| UsageError("--baseline needs a value".into()))?
                            .clone();
                    }
                    "--uncertainty" => {
                        uncertainty = it
                            .next()
                            .ok_or_else(|| UsageError("--uncertainty needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--uncertainty must be a number".into()))?;
                        if !uncertainty.is_finite() || uncertainty < 0.0 {
                            return Err(UsageError(
                                "--uncertainty must be finite and non-negative".into(),
                            ));
                        }
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown analyze flag `{flag}`")));
                    }
                    name => benches.push(name.to_string()),
                }
            }
            if all && !benches.is_empty() {
                return Err(UsageError(
                    "--all and explicit benchmark names are mutually exclusive".into(),
                ));
            }
            if !all && benches.is_empty() {
                return Err(UsageError(
                    "analyze needs benchmark names or --all".into(),
                ));
            }
            if !matches!(format.as_str(), "text" | "json" | "sarif") {
                return Err(UsageError(format!(
                    "--format must be text, json or sarif, not `{format}`"
                )));
            }
            if write_baseline && baseline.is_empty() {
                return Err(UsageError(
                    "--write-baseline needs --baseline PATH".into(),
                ));
            }
            Ok(Command::Analyze {
                benches,
                device,
                format,
                out,
                baseline,
                write_baseline,
                uncertainty,
                deep,
            })
        }
        "scaling" => {
            let gpus: usize = take_flag("--gpus", "4")
                .parse()
                .map_err(|_| UsageError("--gpus must be a number".into()))?;
            if gpus == 0 {
                return Err(UsageError("--gpus must be positive".into()));
            }
            Ok(Command::Scaling {
                gpus,
                app: take_flag("--app", "cloverleaf"),
            })
        }
        "trace" => {
            let mut bench: Option<String> = None;
            let mut device = "v100".to_string();
            let mut target = String::new();
            let mut out = "trace.json".to_string();
            let mut summary = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--summary" => summary = true,
                    "--device" => {
                        device = it
                            .next()
                            .ok_or_else(|| UsageError("--device needs a value".into()))?
                            .clone();
                    }
                    "--target" => {
                        target = it
                            .next()
                            .ok_or_else(|| UsageError("--target needs a value".into()))?
                            .clone();
                    }
                    "--out" => {
                        out = it
                            .next()
                            .ok_or_else(|| UsageError("--out needs a value".into()))?
                            .clone();
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown trace flag `{flag}`")));
                    }
                    name => {
                        if bench.is_some() {
                            return Err(UsageError("trace takes one benchmark".into()));
                        }
                        bench = Some(name.to_string());
                    }
                }
            }
            Ok(Command::Trace {
                bench: bench.ok_or_else(|| UsageError("trace needs a benchmark name".into()))?,
                device,
                target,
                out,
                summary,
            })
        }
        "serve" => {
            let mut addr = "127.0.0.1:7411".to_string();
            let mut workers = 4usize;
            let mut queue = 64usize;
            let mut reactors = 1usize;
            let mut small = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--small" => small = true,
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a value".into()))?
                            .clone();
                    }
                    "--workers" => {
                        workers = it
                            .next()
                            .ok_or_else(|| UsageError("--workers needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--workers must be a number".into()))?;
                    }
                    "--queue" => {
                        queue = it
                            .next()
                            .ok_or_else(|| UsageError("--queue needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--queue must be a number".into()))?;
                    }
                    "--reactors" => {
                        reactors = it
                            .next()
                            .ok_or_else(|| UsageError("--reactors needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--reactors must be a number".into()))?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown serve flag `{flag}`")));
                    }
                    other => {
                        return Err(UsageError(format!(
                            "serve takes no positional argument `{other}`"
                        )));
                    }
                }
            }
            if workers == 0 || queue == 0 || reactors == 0 {
                return Err(UsageError(
                    "--workers, --queue and --reactors must be positive".into(),
                ));
            }
            Ok(Command::Serve {
                addr,
                workers,
                queue,
                reactors,
                small,
            })
        }
        "fleet" => {
            let mut addr = "127.0.0.1:7412".to_string();
            let mut nodes: Vec<String> = Vec::new();
            let mut reactors = 1usize;
            let mut heartbeat_ms = 250u64;
            let mut dead_after_ms = 1500u64;
            let mut max_inflight = 8usize;
            let mut sweep_chunk = 48usize;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a value".into()))?
                            .clone();
                    }
                    "--node" => {
                        nodes.push(
                            it.next()
                                .ok_or_else(|| UsageError("--node needs a value".into()))?
                                .clone(),
                        );
                    }
                    "--reactors" => {
                        reactors = it
                            .next()
                            .ok_or_else(|| UsageError("--reactors needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--reactors must be a number".into()))?;
                    }
                    "--heartbeat" => {
                        heartbeat_ms = it
                            .next()
                            .ok_or_else(|| UsageError("--heartbeat needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--heartbeat must be milliseconds".into()))?;
                    }
                    "--dead-after" => {
                        dead_after_ms = it
                            .next()
                            .ok_or_else(|| UsageError("--dead-after needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--dead-after must be milliseconds".into()))?;
                    }
                    "--max-inflight" => {
                        max_inflight = it
                            .next()
                            .ok_or_else(|| UsageError("--max-inflight needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--max-inflight must be a number".into()))?;
                    }
                    "--sweep-chunk" => {
                        sweep_chunk = it
                            .next()
                            .ok_or_else(|| UsageError("--sweep-chunk needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--sweep-chunk must be a number".into()))?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown fleet flag `{flag}`")));
                    }
                    other => {
                        return Err(UsageError(format!(
                            "fleet takes no positional argument `{other}` (use --node)"
                        )));
                    }
                }
            }
            if nodes.is_empty() {
                return Err(UsageError("fleet needs at least one --node".into()));
            }
            if reactors == 0
                || heartbeat_ms == 0
                || dead_after_ms == 0
                || max_inflight == 0
                || sweep_chunk == 0
            {
                return Err(UsageError(
                    "--reactors, --heartbeat, --dead-after, --max-inflight and \
                     --sweep-chunk must be positive"
                        .into(),
                ));
            }
            Ok(Command::Fleet {
                addr,
                nodes,
                reactors,
                heartbeat_ms,
                dead_after_ms,
                max_inflight,
                sweep_chunk,
            })
        }
        "metrics" => {
            let mut addr = "127.0.0.1:7411".to_string();
            let mut format = "json".to_string();
            let mut watch: Option<u64> = None;
            let mut fleet = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--fleet" => fleet = true,
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a value".into()))?
                            .clone();
                    }
                    "--format" => {
                        format = it
                            .next()
                            .ok_or_else(|| UsageError("--format needs a value".into()))?
                            .clone();
                    }
                    "--watch" => {
                        let secs: u64 = it
                            .next()
                            .ok_or_else(|| UsageError("--watch needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--watch must be seconds".into()))?;
                        if secs == 0 {
                            return Err(UsageError("--watch must be positive".into()));
                        }
                        watch = Some(secs);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown metrics flag `{flag}`")));
                    }
                    // `synergy metrics 127.0.0.1:7411` — bare positional
                    // address, matching the issue's short form.
                    word => addr = word.to_string(),
                }
            }
            if !matches!(format.as_str(), "json" | "openmetrics") {
                return Err(UsageError(format!(
                    "--format must be json or openmetrics, not `{format}`"
                )));
            }
            Ok(Command::Metrics {
                addr,
                format,
                watch,
                fleet,
            })
        }
        "request" => {
            let mut addr = "127.0.0.1:7411".to_string();
            let mut deadline_ms = 0u64;
            let mut device = "v100".to_string();
            let mut targets: Vec<String> = Vec::new();
            let mut features: Vec<f64> = Vec::new();
            let mut mem = 877u32;
            let mut core = 1312u32;
            let mut retries = 0u32;
            let mut grace_ms = 1000u64;
            let mut positional: Vec<String> = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--addr" => {
                        addr = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a value".into()))?
                            .clone();
                    }
                    "--deadline" => {
                        deadline_ms = it
                            .next()
                            .ok_or_else(|| UsageError("--deadline needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--deadline must be milliseconds".into()))?;
                    }
                    "--device" => {
                        device = it
                            .next()
                            .ok_or_else(|| UsageError("--device needs a value".into()))?
                            .clone();
                    }
                    "--targets" => {
                        let csv = it
                            .next()
                            .ok_or_else(|| UsageError("--targets needs a value".into()))?;
                        targets = csv
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(String::from)
                            .collect();
                    }
                    "--features" => {
                        let csv = it
                            .next()
                            .ok_or_else(|| UsageError("--features needs a value".into()))?;
                        features = csv
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(|s| {
                                s.parse::<f64>().map_err(|_| {
                                    UsageError(format!("bad feature value `{s}`"))
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "--mem" => {
                        mem = it
                            .next()
                            .ok_or_else(|| UsageError("--mem needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--mem must be MHz".into()))?;
                    }
                    "--core" => {
                        core = it
                            .next()
                            .ok_or_else(|| UsageError("--core needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--core must be MHz".into()))?;
                    }
                    "--retries" => {
                        retries = it
                            .next()
                            .ok_or_else(|| UsageError("--retries needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--retries must be a number".into()))?;
                    }
                    "--grace" => {
                        grace_ms = it
                            .next()
                            .ok_or_else(|| UsageError("--grace needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--grace must be milliseconds".into()))?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown request flag `{flag}`")));
                    }
                    word => positional.push(word.to_string()),
                }
            }
            let mut pos = positional.into_iter();
            let op = pos
                .next()
                .ok_or_else(|| UsageError("request needs an operation".into()))?;
            let req = match op.as_str() {
                "ping" => synergy_serve::Request::Ping,
                "stats" => synergy_serve::Request::Stats,
                "metrics" => synergy_serve::Request::Metrics,
                "drain" => synergy_serve::Request::Drain,
                "nodes" => synergy_serve::Request::FleetNodes,
                "join" => synergy_serve::Request::FleetJoin {
                    addr: pos
                        .next()
                        .ok_or_else(|| UsageError("request join needs a node address".into()))?,
                },
                "preempt" => synergy_serve::Request::FleetPreempt {
                    addr: pos
                        .next()
                        .ok_or_else(|| {
                            UsageError("request preempt needs a node address".into())
                        })?,
                    grace_ms,
                },
                "compile" => synergy_serve::Request::Compile {
                    bench: pos
                        .next()
                        .ok_or_else(|| UsageError("request compile needs a benchmark".into()))?,
                    device,
                    targets,
                },
                "sweep" => synergy_serve::Request::Sweep {
                    bench: pos
                        .next()
                        .ok_or_else(|| UsageError("request sweep needs a benchmark".into()))?,
                    device,
                },
                "predict" => {
                    if features.is_empty() {
                        return Err(UsageError(
                            "request predict needs --features v1,v2,...".into(),
                        ));
                    }
                    synergy_serve::Request::Predict {
                        device,
                        features,
                        mem_mhz: mem,
                        core_mhz: core,
                    }
                }
                other => {
                    return Err(UsageError(format!("unknown request operation `{other}`")));
                }
            };
            if let Some(extra) = pos.next() {
                return Err(UsageError(format!(
                    "unexpected request argument `{extra}`"
                )));
            }
            Ok(Command::Request {
                addr,
                deadline_ms,
                retries,
                req,
            })
        }
        "bench" => {
            let mut suite: Option<String> = None;
            let mut tolerance = 10.0f64;
            let mut no_fail = false;
            let mut no_run = false;
            let mut history: Option<String> = None;
            let mut bin_dir: Option<String> = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--no-fail" => no_fail = true,
                    "--no-run" => no_run = true,
                    "--tolerance" => {
                        tolerance = it
                            .next()
                            .ok_or_else(|| UsageError("--tolerance needs a value".into()))?
                            .parse()
                            .map_err(|_| UsageError("--tolerance must be a percentage".into()))?;
                        if !tolerance.is_finite() || tolerance < 0.0 {
                            return Err(UsageError(
                                "--tolerance must be finite and non-negative".into(),
                            ));
                        }
                    }
                    "--history" => {
                        history = Some(
                            it.next()
                                .ok_or_else(|| UsageError("--history needs a value".into()))?
                                .clone(),
                        );
                    }
                    "--bin-dir" => {
                        bin_dir = Some(
                            it.next()
                                .ok_or_else(|| UsageError("--bin-dir needs a value".into()))?
                                .clone(),
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown bench flag `{flag}`")));
                    }
                    name => {
                        if suite.is_some() {
                            return Err(UsageError("bench takes one suite".into()));
                        }
                        suite = Some(name.to_string());
                    }
                }
            }
            let suite =
                suite.ok_or_else(|| UsageError("bench needs a suite name".into()))?;
            if synergy_bench::regress::suite_by_name(&suite).is_none() {
                return Err(UsageError(format!(
                    "unknown bench suite `{suite}` (pipeline, serve or fleet)"
                )));
            }
            Ok(Command::Bench {
                suite,
                tolerance,
                no_fail,
                no_run,
                history,
                bin_dir,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown subcommand `{other}`"))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
synergy — fine-grained GPU energy tuning (SC'23 reproduction)

USAGE:
  synergy devices
  synergy benchmarks
  synergy characterize <bench> [--device v100|a100|mi100|titanx]
  synergy compile <bench>... [--device v100|...] [--out registry.json]
  synergy lint <bench> [--device v100|...] [--json]
  synergy analyze (--all | <bench>...) [--device v100|...|all] [--format text|json|sarif]
                  [--out PATH] [--baseline PATH] [--write-baseline] [--uncertainty F] [--deep]
  synergy scaling [--gpus N] [--app cloverleaf|miniweather]
  synergy trace <bench> [--device v100|...] [--target ES_50] [--out trace.json] [--summary]
  synergy serve [--addr 127.0.0.1:7411] [--workers N] [--queue N] [--reactors N] [--small]
  synergy fleet --node host:port[=v100,a100]... [--addr 127.0.0.1:7412] [--reactors N]
                [--heartbeat MS] [--dead-after MS] [--max-inflight N] [--sweep-chunk N]
  synergy metrics [<addr>] [--addr 127.0.0.1:7411] [--format json|openmetrics] [--watch SECS]
                  [--fleet]
  synergy request ping|stats|metrics|drain|nodes [--addr ...] [--deadline ms] [--retries N]
  synergy request join <node-addr> | preempt <node-addr> [--grace MS] [--addr ...]
  synergy request compile <bench> [--device v100|...] [--targets ES_50,MIN_EDP] [--addr ...]
  synergy request sweep <bench> [--device v100|...] [--addr ...]
  synergy request predict --features v1,v2,... [--device v100|...] [--mem MHz] [--core MHz]
  synergy bench pipeline|serve|fleet [--tolerance PCT] [--no-fail] [--no-run]
                [--history PATH] [--bin-dir DIR]
";

/// Resolve a device key to its spec.
pub fn device_by_key(key: &str) -> Option<synergy_sim::DeviceSpec> {
    match key.to_ascii_lowercase().as_str() {
        "v100" => Some(synergy_sim::DeviceSpec::v100()),
        "a100" => Some(synergy_sim::DeviceSpec::a100()),
        "mi100" => Some(synergy_sim::DeviceSpec::mi100()),
        "titanx" | "titan_x" => Some(synergy_sim::DeviceSpec::titan_x()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse_args(args("devices")).unwrap(), Command::Devices);
        assert_eq!(parse_args(args("benchmarks")).unwrap(), Command::Benchmarks);
        assert_eq!(parse_args(args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(Vec::new()).unwrap(), Command::Help);
    }

    #[test]
    fn characterize_with_defaults_and_flags() {
        assert_eq!(
            parse_args(args("characterize sobel3")).unwrap(),
            Command::Characterize {
                bench: "sobel3".into(),
                device: "v100".into()
            }
        );
        assert_eq!(
            parse_args(args("characterize sobel3 --device mi100")).unwrap(),
            Command::Characterize {
                bench: "sobel3".into(),
                device: "mi100".into()
            }
        );
    }

    #[test]
    fn compile_collects_benches() {
        let c = parse_args(args("compile sobel3 mat_mul --device titanx --out reg.json"))
            .unwrap();
        assert_eq!(
            c,
            Command::Compile {
                benches: vec!["sobel3".into(), "mat_mul".into()],
                device: "titanx".into(),
                out: "reg.json".into()
            }
        );
    }

    #[test]
    fn scaling_parses_gpus() {
        assert_eq!(
            parse_args(args("scaling --gpus 16 --app miniweather")).unwrap(),
            Command::Scaling {
                gpus: 16,
                app: "miniweather".into()
            }
        );
        assert!(parse_args(args("scaling --gpus zero")).is_err());
        assert!(parse_args(args("scaling --gpus 0")).is_err());
    }

    #[test]
    fn lint_parses_flags_in_any_order() {
        assert_eq!(
            parse_args(args("lint vec_add")).unwrap(),
            Command::Lint {
                bench: "vec_add".into(),
                device: "v100".into(),
                json: false
            }
        );
        assert_eq!(
            parse_args(args("lint --json --device mi100 sobel3")).unwrap(),
            Command::Lint {
                bench: "sobel3".into(),
                device: "mi100".into(),
                json: true
            }
        );
    }

    #[test]
    fn lint_rejects_bad_invocations() {
        assert!(parse_args(args("lint")).is_err());
        assert!(parse_args(args("lint a b")).is_err());
        assert!(parse_args(args("lint vec_add --device")).is_err());
        assert!(parse_args(args("lint vec_add --frob")).is_err());
    }

    #[test]
    fn analyze_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("analyze --all")).unwrap(),
            Command::Analyze {
                benches: vec![],
                device: "v100".into(),
                format: "text".into(),
                out: "-".into(),
                baseline: String::new(),
                write_baseline: false,
                uncertainty: 0.5,
                deep: false
            }
        );
        assert_eq!(
            parse_args(args(
                "analyze vec_add sobel3 --device all --format sarif --out s.json \
                 --baseline base.json --write-baseline --uncertainty 0.25 --deep"
            ))
            .unwrap(),
            Command::Analyze {
                benches: vec!["vec_add".into(), "sobel3".into()],
                device: "all".into(),
                format: "sarif".into(),
                out: "s.json".into(),
                baseline: "base.json".into(),
                write_baseline: true,
                uncertainty: 0.25,
                deep: true
            }
        );
    }

    #[test]
    fn analyze_rejects_bad_invocations() {
        assert!(parse_args(args("analyze")).is_err());
        assert!(parse_args(args("analyze --all vec_add")).is_err());
        assert!(parse_args(args("analyze --all --format yaml")).is_err());
        assert!(parse_args(args("analyze --all --uncertainty nope")).is_err());
        assert!(parse_args(args("analyze --all --uncertainty -1")).is_err());
        assert!(parse_args(args("analyze --all --write-baseline")).is_err());
        assert!(parse_args(args("analyze --all --frob")).is_err());
    }

    #[test]
    fn trace_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("trace sobel3")).unwrap(),
            Command::Trace {
                bench: "sobel3".into(),
                device: "v100".into(),
                target: String::new(),
                out: "trace.json".into(),
                summary: false
            }
        );
        assert_eq!(
            parse_args(args("trace --summary --target ES_50 mat_mul --device mi100 --out t.json"))
                .unwrap(),
            Command::Trace {
                bench: "mat_mul".into(),
                device: "mi100".into(),
                target: "ES_50".into(),
                out: "t.json".into(),
                summary: true
            }
        );
    }

    #[test]
    fn trace_rejects_bad_invocations() {
        assert!(parse_args(args("trace")).is_err());
        assert!(parse_args(args("trace a b")).is_err());
        assert!(parse_args(args("trace vec_add --out")).is_err());
        assert!(parse_args(args("trace vec_add --frob")).is_err());
    }

    #[test]
    fn serve_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7411".into(),
                workers: 4,
                queue: 64,
                reactors: 1,
                small: false
            }
        );
        assert_eq!(
            parse_args(args(
                "serve --small --addr 0.0.0.0:9000 --workers 2 --queue 8 --reactors 3"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                workers: 2,
                queue: 8,
                reactors: 3,
                small: true
            }
        );
        assert!(parse_args(args("serve extra")).is_err());
        assert!(parse_args(args("serve --workers 0")).is_err());
        assert!(parse_args(args("serve --reactors 0")).is_err());
        assert!(parse_args(args("serve --frob")).is_err());
    }

    #[test]
    fn metrics_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("metrics")).unwrap(),
            Command::Metrics {
                addr: "127.0.0.1:7411".into(),
                format: "json".into(),
                watch: None,
                fleet: false
            }
        );
        assert_eq!(
            parse_args(args("metrics 127.0.0.1:7500 --format openmetrics --watch 2")).unwrap(),
            Command::Metrics {
                addr: "127.0.0.1:7500".into(),
                format: "openmetrics".into(),
                watch: Some(2),
                fleet: false
            }
        );
        assert_eq!(
            parse_args(args("metrics --addr 10.0.0.1:7411 --fleet")).unwrap(),
            Command::Metrics {
                addr: "10.0.0.1:7411".into(),
                format: "json".into(),
                watch: None,
                fleet: true
            }
        );
    }

    #[test]
    fn fleet_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("fleet --node 127.0.0.1:7411")).unwrap(),
            Command::Fleet {
                addr: "127.0.0.1:7412".into(),
                nodes: vec!["127.0.0.1:7411".into()],
                reactors: 1,
                heartbeat_ms: 250,
                dead_after_ms: 1500,
                max_inflight: 8,
                sweep_chunk: 48
            }
        );
        assert_eq!(
            parse_args(args(
                "fleet --addr 0.0.0.0:9000 --node n1:7411=v100 --node n2:7411=a100,mi100 \
                 --reactors 2 --heartbeat 100 --dead-after 600 --max-inflight 4 --sweep-chunk 16"
            ))
            .unwrap(),
            Command::Fleet {
                addr: "0.0.0.0:9000".into(),
                nodes: vec!["n1:7411=v100".into(), "n2:7411=a100,mi100".into()],
                reactors: 2,
                heartbeat_ms: 100,
                dead_after_ms: 600,
                max_inflight: 4,
                sweep_chunk: 16
            }
        );
    }

    #[test]
    fn fleet_rejects_bad_invocations() {
        assert!(parse_args(args("fleet")).is_err()); // no nodes
        assert!(parse_args(args("fleet extra")).is_err());
        assert!(parse_args(args("fleet --node")).is_err());
        assert!(parse_args(args("fleet --node a:1 --heartbeat 0")).is_err());
        assert!(parse_args(args("fleet --node a:1 --sweep-chunk 0")).is_err());
        assert!(parse_args(args("fleet --node a:1 --frob")).is_err());
    }

    #[test]
    fn metrics_rejects_bad_invocations() {
        assert!(parse_args(args("metrics --format yaml")).is_err());
        assert!(parse_args(args("metrics --watch 0")).is_err());
        assert!(parse_args(args("metrics --watch soon")).is_err());
        assert!(parse_args(args("metrics --frob")).is_err());
    }

    #[test]
    fn request_parses_each_operation() {
        assert_eq!(
            parse_args(args("request ping")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::Ping
            }
        );
        assert_eq!(
            parse_args(args("request metrics")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::Metrics
            }
        );
        assert_eq!(
            parse_args(args("request drain --addr 127.0.0.1:7500 --deadline 250")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7500".into(),
                deadline_ms: 250,
                retries: 0,
                req: synergy_serve::Request::Drain
            }
        );
        assert_eq!(
            parse_args(args("request compile vec_add --device mi100 --targets ES_50,MIN_EDP"))
                .unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::Compile {
                    bench: "vec_add".into(),
                    device: "mi100".into(),
                    targets: vec!["ES_50".into(), "MIN_EDP".into()]
                }
            }
        );
        assert_eq!(
            parse_args(args("request sweep sobel3")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::Sweep {
                    bench: "sobel3".into(),
                    device: "v100".into()
                }
            }
        );
        let c = parse_args(args("request predict --features 1,2,3 --mem 800 --core 1000")).unwrap();
        match c {
            Command::Request {
                req:
                    synergy_serve::Request::Predict {
                        features,
                        mem_mhz,
                        core_mhz,
                        ..
                    },
                ..
            } => {
                assert_eq!(features, vec![1.0, 2.0, 3.0]);
                assert_eq!((mem_mhz, core_mhz), (800, 1000));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn request_parses_fleet_operations() {
        assert_eq!(
            parse_args(args("request nodes --addr 127.0.0.1:7412")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7412".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::FleetNodes
            }
        );
        assert_eq!(
            parse_args(args("request join 127.0.0.1:7413")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 0,
                req: synergy_serve::Request::FleetJoin {
                    addr: "127.0.0.1:7413".into()
                }
            }
        );
        assert_eq!(
            parse_args(args("request preempt 127.0.0.1:7413 --grace 500 --retries 3")).unwrap(),
            Command::Request {
                addr: "127.0.0.1:7411".into(),
                deadline_ms: 0,
                retries: 3,
                req: synergy_serve::Request::FleetPreempt {
                    addr: "127.0.0.1:7413".into(),
                    grace_ms: 500
                }
            }
        );
    }

    #[test]
    fn request_rejects_bad_invocations() {
        assert!(parse_args(args("request")).is_err());
        assert!(parse_args(args("request frobnicate")).is_err());
        assert!(parse_args(args("request compile")).is_err());
        assert!(parse_args(args("request sweep")).is_err());
        assert!(parse_args(args("request predict")).is_err());
        assert!(parse_args(args("request predict --features a,b")).is_err());
        assert!(parse_args(args("request ping extra")).is_err());
        assert!(parse_args(args("request ping --frob")).is_err());
        assert!(parse_args(args("request join")).is_err());
        assert!(parse_args(args("request preempt")).is_err());
        assert!(parse_args(args("request ping --retries many")).is_err());
    }

    #[test]
    fn bench_parses_flags_and_defaults() {
        assert_eq!(
            parse_args(args("bench pipeline")).unwrap(),
            Command::Bench {
                suite: "pipeline".into(),
                tolerance: 10.0,
                no_fail: false,
                no_run: false,
                history: None,
                bin_dir: None
            }
        );
        assert_eq!(
            parse_args(args(
                "bench serve --tolerance 25 --no-fail --no-run --history h.jsonl --bin-dir bin"
            ))
            .unwrap(),
            Command::Bench {
                suite: "serve".into(),
                tolerance: 25.0,
                no_fail: true,
                no_run: true,
                history: Some("h.jsonl".into()),
                bin_dir: Some("bin".into())
            }
        );
    }

    #[test]
    fn bench_rejects_bad_invocations() {
        assert!(parse_args(args("bench")).is_err());
        assert!(parse_args(args("bench nope")).is_err());
        assert!(parse_args(args("bench pipeline serve")).is_err());
        assert!(parse_args(args("bench pipeline --tolerance lots")).is_err());
        assert!(parse_args(args("bench pipeline --tolerance -5")).is_err());
        assert!(parse_args(args("bench pipeline --history")).is_err());
        assert!(parse_args(args("bench pipeline --frob")).is_err());
    }

    #[test]
    fn errors_on_nonsense() {
        assert!(parse_args(args("frobnicate")).is_err());
        assert!(parse_args(args("characterize")).is_err());
        assert!(parse_args(args("compile --device v100")).is_err());
    }

    #[test]
    fn device_keys_resolve() {
        assert_eq!(device_by_key("v100").unwrap().name, "NVIDIA V100");
        assert_eq!(device_by_key("TitanX").unwrap().name, "NVIDIA Titan X");
        assert!(device_by_key("h100").is_none());
    }
}
