//! The `synergy` command-line tool (thin shell over `synergy_cli`).

use std::process::ExitCode;
use synergy_cli::{commands, parse_args, Command, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = std::io::stdout();
    let result = match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Devices => commands::devices(&mut out).map_err(|e| e.to_string()),
        Command::Benchmarks => commands::benchmarks(&mut out).map_err(|e| e.to_string()),
        Command::Characterize { bench, device } => {
            commands::characterize(&mut out, &bench, &device).map_err(|e| e.to_string())
        }
        Command::Compile {
            benches,
            device,
            out: out_path,
        } => commands::compile(&benches, &device)
            .map_err(|e| e.to_string())
            .and_then(|registry| {
                let json = serde_json::to_string_pretty(&registry)
                    .expect("registry serializes");
                if out_path == "-" {
                    println!("{json}");
                    Ok(())
                } else {
                    std::fs::write(&out_path, json).map_err(|e| e.to_string())?;
                    eprintln!("wrote {out_path}");
                    Ok(())
                }
            }),
        Command::Lint {
            bench,
            device,
            json,
        } => {
            // Exit codes: 0 = clean or warnings only, 1 = deny-level
            // findings or a usage error.
            return match commands::lint(&mut out, &bench, &device, json) {
                Ok(report) if report.has_deny() => ExitCode::FAILURE,
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Analyze {
            benches,
            device,
            format,
            out: out_path,
            baseline,
            write_baseline,
            uncertainty,
            deep,
        } => {
            // Exit codes: 0 = clean (or baseline exactly matched),
            // 1 = new findings / baseline drift / deny-level findings
            // without a baseline / usage error.
            let opts = commands::AnalyzeOptions {
                benches,
                device,
                format,
                out: out_path,
                baseline,
                write_baseline,
                uncertainty,
                deep,
            };
            return match commands::analyze(&mut out, &opts) {
                Ok(outcome) if outcome.failed() => ExitCode::FAILURE,
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Scaling { gpus, app } => {
            commands::scaling(&mut out, gpus, &app).map_err(|e| e.to_string())
        }
        Command::Serve {
            addr,
            workers,
            queue,
            reactors,
            small,
        } => commands::serve(&mut out, &addr, workers, queue, reactors, small)
            .map_err(|e| e.to_string()),
        Command::Fleet {
            addr,
            nodes,
            reactors,
            heartbeat_ms,
            dead_after_ms,
            max_inflight,
            sweep_chunk,
        } => commands::fleet(
            &mut out,
            &addr,
            &nodes,
            reactors,
            heartbeat_ms,
            dead_after_ms,
            max_inflight,
            sweep_chunk,
        )
        .map_err(|e| e.to_string()),
        Command::Metrics {
            addr,
            format,
            watch,
            fleet,
        } => commands::metrics(&mut out, &addr, &format, watch, fleet).map_err(|e| e.to_string()),
        Command::Request {
            addr,
            deadline_ms,
            retries,
            req,
        } => {
            // Exit codes: 0 = the request was answered, 1 = connection or
            // usage failure, Busy/Expired/Error replies.
            return match commands::request(&mut out, &addr, deadline_ms, retries, req) {
                Ok(
                    synergy_serve::Response::Busy { .. }
                    | synergy_serve::Response::Expired { .. }
                    | synergy_serve::Response::Error { .. },
                ) => ExitCode::FAILURE,
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Bench {
            suite,
            tolerance,
            no_fail,
            no_run,
            history,
            bin_dir,
        } => {
            // Exit codes: 0 = within tolerance (or nothing to diff, or
            // --no-fail), 1 = a counter regressed beyond tolerance or a
            // usage/run failure.
            let opts = commands::BenchOptions {
                suite,
                tolerance,
                no_fail,
                no_run,
                history,
                bin_dir,
            };
            return match commands::bench(&mut out, &opts) {
                Ok(outcome) if outcome.failed() => ExitCode::FAILURE,
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::Trace {
            bench,
            device,
            target,
            out: trace_path,
            summary,
        } => commands::trace(&mut out, &bench, &device, &target, &trace_path, summary)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
