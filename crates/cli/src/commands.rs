//! Subcommand implementations. Every function writes to a generic
//! `io::Write` sink so tests can capture output.

use crate::{device_by_key, UsageError};
use rayon::prelude::*;
use std::io::Write;
use synergy_analyze::sarif::encode_sarif;
use synergy_analyze::{
    expected_row_len, interpret, AbsIntConfig, Baseline, LintRegistry, RatchetOutcome, Report,
    SuiteReport,
};
use synergy_kernel::{generate_microbench, MicroBenchConfig, NUM_FEATURES};
use synergy_metrics::{pareto_front, point_at, search_optimal, EnergyTarget};
use synergy_ml::ModelSelection;
use synergy_rt::{
    compile_application, measured_sweep, ModelStore, TargetRegistry, CACHE_FORMAT_VERSION,
};

/// `synergy devices`
pub fn devices(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "{:<16} {:>10} {:>12} {:>16} {:>9}", "device", "mem MHz", "#core cfgs", "core range MHz", "default")?;
    for spec in [
        synergy_sim::DeviceSpec::v100(),
        synergy_sim::DeviceSpec::a100(),
        synergy_sim::DeviceSpec::mi100(),
        synergy_sim::DeviceSpec::titan_x(),
    ] {
        let t = &spec.freq_table;
        writeln!(
            out,
            "{:<16} {:>10} {:>12} {:>16} {:>9}",
            spec.name,
            format!("{:?}", t.mem_mhz),
            t.core_mhz.len(),
            format!("{}..{}", t.min_core(), t.max_core()),
            spec.default_clocks
                .map_or("auto".into(), |c| c.core_mhz.to_string()),
        )?;
    }
    Ok(())
}

/// `synergy benchmarks`
pub fn benchmarks(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "{:<22} {:>12} {:>14}  description", "name", "work-items", "bound")?;
    for b in synergy_apps::suite() {
        writeln!(
            out,
            "{:<22} {:>12} {:>14}  {}",
            b.name,
            b.work_items,
            format!("{:?}", b.bound),
            b.description
        )?;
    }
    Ok(())
}

/// `synergy characterize <bench> --device <key>`
pub fn characterize(out: &mut dyn Write, bench: &str, device: &str) -> Result<(), UsageError> {
    let spec = device_by_key(device).ok_or_else(|| UsageError(format!("unknown device `{device}`")))?;
    let b = synergy_apps::by_name(bench)
        .ok_or_else(|| UsageError(format!("unknown benchmark `{bench}`")))?;
    let sweep = measured_sweep(&spec, &b.ir, b.work_items);
    let baseline = point_at(&sweep, spec.baseline_clocks()).expect("baseline in sweep");
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    w(writeln!(
        out,
        "{} on {} — {} configurations, default {}",
        b.name,
        spec.name,
        sweep.len(),
        spec.baseline_clocks()
    ))?;
    w(writeln!(out, "\nPareto front:"))?;
    for p in pareto_front(&sweep) {
        w(writeln!(
            out,
            "  {:>5} {:>5}  speedup {:>6.3}  energy {:>6.3}",
            p.clocks.mem_mhz,
            p.clocks.core_mhz,
            p.speedup_vs(&baseline),
            p.normalized_energy_vs(&baseline)
        ))?;
    }
    w(writeln!(out, "\ntargets:"))?;
    for target in EnergyTarget::PAPER_SET {
        let p = search_optimal(target, &sweep, spec.baseline_clocks()).expect("non-empty");
        w(writeln!(
            out,
            "  {:>10} -> {:>5}/{:>5} MHz  energy {:+6.1}%  time {:+6.1}%",
            target.to_string(),
            p.clocks.mem_mhz,
            p.clocks.core_mhz,
            (p.normalized_energy_vs(&baseline) - 1.0) * 100.0,
            (1.0 / p.speedup_vs(&baseline) - 1.0) * 100.0
        ))?;
    }
    Ok(())
}

/// `synergy compile <bench>... --device <key>` → registry JSON.
pub fn compile(benches: &[String], device: &str) -> Result<TargetRegistry, UsageError> {
    let spec = device_by_key(device).ok_or_else(|| UsageError(format!("unknown device `{device}`")))?;
    let mut irs = Vec::new();
    for name in benches {
        let b = synergy_apps::by_name(name)
            .ok_or_else(|| UsageError(format!("unknown benchmark `{name}`")))?;
        irs.push(b.ir);
    }
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models =
        ModelStore::global().get_or_train(&spec, &suite, ModelSelection::paper_best(), 8, 2023);
    compile_application(&spec, &models, &irs, &EnergyTarget::PAPER_SET)
        .map_err(|e| UsageError(e.to_string()))
}

/// `synergy lint <bench> --device <key> [--json]`: run every built-in
/// lint family over one benchmark — its IR, its measured frequency sweep
/// with the paper's target set, the trained model bundle for the device,
/// and the on-disk model cache. Returns the report so callers can set the
/// exit code from `has_deny()`.
pub fn lint(
    out: &mut dyn Write,
    bench: &str,
    device: &str,
    json: bool,
) -> Result<Report, UsageError> {
    let spec = device_by_key(device)
        .ok_or_else(|| UsageError(format!("unknown device `{device}`")))?;
    let b = synergy_apps::by_name(bench)
        .ok_or_else(|| UsageError(format!("unknown benchmark `{bench}`")))?;
    let lints = LintRegistry::with_builtin();

    let mut report = lints.check_kernel(&b.ir).prefixed(b.name);
    let sweep = measured_sweep(&spec, &b.ir, b.work_items);
    report.merge(
        lints
            .check_sweep(&sweep, spec.baseline_clocks(), &EnergyTarget::PAPER_SET)
            .prefixed(b.name),
    );
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let store = ModelStore::global();
    let models = store.get_or_train(&spec, &suite, ModelSelection::paper_best(), 8, 2023);
    report.merge(lints.check_models(&models, &spec, NUM_FEATURES));
    if let Some(dir) = store.dir() {
        report.merge(lints.check_model_cache(
            dir,
            CACHE_FORMAT_VERSION,
            expected_row_len(NUM_FEATURES),
        ));
    }

    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    if json {
        w(writeln!(out, "{}", report.to_json()))?;
    } else if report.is_clean() {
        w(writeln!(
            out,
            "{} on {}: clean ({} lints ran)",
            b.name,
            spec.name,
            lints.catalog().len()
        ))?;
    } else {
        w(write!(out, "{}", report.render()))?;
    }
    Ok(report)
}

/// Options for `synergy analyze` (mirrors the command-line flags).
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Benchmark names; empty = whole suite.
    pub benches: Vec<String>,
    /// Device key or `all`.
    pub device: String,
    /// `text`, `json` or `sarif`.
    pub format: String,
    /// Formatted-report destination (`-` = the output sink).
    pub out: String,
    /// Ratchet baseline path; empty = no ratchet.
    pub baseline: String,
    /// Re-write the baseline from this run instead of diffing.
    pub write_baseline: bool,
    /// Trip-count widening for the abstract interpreter.
    pub uncertainty: f64,
    /// Also run the dynamic subjects (measured sweeps, trained models).
    pub deep: bool,
}

/// What `synergy analyze` concluded, for exit-code decisions.
#[derive(Debug)]
pub struct AnalyzeOutcome {
    /// Every benchmark × device run.
    pub suite: SuiteReport,
    /// The baseline diff, when a baseline was given (and not re-written).
    pub ratchet: Option<RatchetOutcome>,
    /// True when `--write-baseline` replaced the baseline file.
    pub wrote_baseline: bool,
}

impl AnalyzeOutcome {
    /// The gate verdict: with a baseline, any deviation from it fails
    /// (new findings AND stale grandfathered entries — the ratchet must
    /// be re-written to lock improvements in); without one, deny-level
    /// findings fail.
    pub fn failed(&self) -> bool {
        match &self.ratchet {
            Some(o) => !o.is_exact(),
            None => self.suite.deny_count() > 0,
        }
    }
}

/// The catalogue keys `--device all` expands to, in report order.
const ALL_DEVICE_KEYS: [&str; 4] = ["v100", "a100", "mi100", "titanx"];

/// `synergy analyze`: run the lint registry over benchmark × device
/// pairs in parallel and aggregate the findings.
///
/// The default subject set is purely static — the structural IR family
/// plus the interval/roofline family over the abstract interpreter's
/// envelopes — so the findings are identical on every machine and can be
/// ratcheted in CI. `--deep` adds the dynamic subjects (measured sweeps
/// with `SW` lints, trained models with `ML` lints), which depend on the
/// simulator and RNG and therefore stay out of the baseline gate.
pub fn analyze(out: &mut dyn Write, opts: &AnalyzeOptions) -> Result<AnalyzeOutcome, UsageError> {
    let device_keys: Vec<&str> = if opts.device == "all" {
        ALL_DEVICE_KEYS.to_vec()
    } else {
        vec![opts.device.as_str()]
    };
    let mut devices = Vec::new();
    for key in &device_keys {
        let spec = device_by_key(key)
            .ok_or_else(|| UsageError(format!("unknown device `{key}`")))?;
        devices.push((key.to_string(), spec));
    }
    let benches = if opts.benches.is_empty() {
        synergy_apps::suite()
    } else {
        let mut picked = Vec::new();
        for name in &opts.benches {
            picked.push(
                synergy_apps::by_name(name)
                    .ok_or_else(|| UsageError(format!("unknown benchmark `{name}`")))?,
            );
        }
        picked
    };

    let registry = LintRegistry::with_builtin();
    let config = AbsIntConfig {
        trip_uncertainty: opts.uncertainty,
    };
    // Deep mode trains one model bundle per device up front (the store is
    // shared; doing it inside the parallel loop would race the training
    // work for no benefit).
    let deep_models = if opts.deep {
        let suite = generate_microbench(42, &MicroBenchConfig::default());
        let store = ModelStore::global();
        devices
            .iter()
            .map(|(_, spec)| {
                store.get_or_train(spec, &suite, ModelSelection::paper_best(), 8, 2023)
            })
            .collect()
    } else {
        Vec::new()
    };

    // One job per (bench, device), in deterministic suite × catalogue
    // order; par_iter + collect preserves that order in the results.
    let jobs: Vec<(usize, usize)> = (0..benches.len())
        .flat_map(|b| (0..devices.len()).map(move |d| (b, d)))
        .collect();
    let runs: Vec<(usize, usize, Report)> = jobs
        .par_iter()
        .map(|&(bi, di)| {
            let bench = &benches[bi];
            let (_, spec) = &devices[di];
            let mut report = registry.check_kernel(&bench.ir);
            report.merge(registry.check_kernel_on_device(&bench.ir, spec, config));
            if opts.deep {
                let envelope = interpret(&bench.ir, &config);
                let sweep = measured_sweep(spec, &bench.ir, bench.work_items);
                report.merge(registry.check_sweep_enveloped(
                    &sweep,
                    spec.baseline_clocks(),
                    &EnergyTarget::PAPER_SET,
                    &envelope,
                ));
                report.merge(registry.check_models_enveloped(
                    &deep_models[di],
                    spec,
                    NUM_FEATURES,
                    &envelope,
                ));
            }
            (bi, di, report)
        })
        .collect();
    let mut suite = SuiteReport::new();
    for (bi, di, report) in runs {
        suite.push(benches[bi].name, devices[di].0.clone(), report);
    }

    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    let rendered = match opts.format.as_str() {
        "json" => {
            let mut text = suite.to_json().encode();
            text.push('\n');
            text
        }
        "sarif" => encode_sarif(&suite, &registry.catalog()),
        _ => {
            let mut text = String::new();
            for run in &suite.runs {
                if !run.report.is_clean() {
                    text.push_str(&format!("== {} on {} ==\n", run.bench, run.device));
                    text.push_str(&run.report.render());
                }
            }
            let counts = suite.counts_by_code();
            let summary: Vec<String> =
                counts.iter().map(|(c, n)| format!("{c}:{n}")).collect();
            text.push_str(&format!(
                "analyzed {} benchmarks x {} devices: {} findings ({} deny){}\n",
                benches.len(),
                devices.len(),
                suite.total(),
                suite.deny_count(),
                if summary.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", summary.join(" "))
                }
            ));
            text
        }
    };
    if opts.out == "-" {
        w(out.write_all(rendered.as_bytes()))?;
    } else {
        std::fs::write(&opts.out, &rendered)
            .map_err(|e| UsageError(format!("cannot write `{}`: {e}", opts.out)))?;
        w(writeln!(out, "wrote {}", opts.out))?;
    }

    let mut ratchet = None;
    let mut wrote_baseline = false;
    if !opts.baseline.is_empty() {
        if opts.write_baseline {
            let baseline = Baseline::from_report(&suite);
            std::fs::write(&opts.baseline, baseline.encode())
                .map_err(|e| UsageError(format!("cannot write `{}`: {e}", opts.baseline)))?;
            w(writeln!(
                out,
                "baseline written to {} ({} buckets, {} findings)",
                opts.baseline,
                baseline.buckets.len(),
                baseline.buckets.values().sum::<u64>()
            ))?;
            wrote_baseline = true;
        } else {
            let text = std::fs::read_to_string(&opts.baseline).map_err(|e| {
                UsageError(format!(
                    "cannot read baseline `{}`: {e} (create it with --write-baseline)",
                    opts.baseline
                ))
            })?;
            let baseline = Baseline::from_json_str(&text).map_err(|e| {
                UsageError(format!("malformed baseline `{}`: {e}", opts.baseline))
            })?;
            let outcome = baseline.diff(&suite);
            if outcome.is_exact() {
                w(writeln!(
                    out,
                    "ratchet: clean ({} grandfathered findings)",
                    baseline.buckets.values().sum::<u64>()
                ))?;
            } else {
                w(out.write_all(outcome.render().as_bytes()))?;
            }
            ratchet = Some(outcome);
        }
    }
    Ok(AnalyzeOutcome {
        suite,
        ratchet,
        wrote_baseline,
    })
}

/// `synergy trace <bench> --device <key> [--target T] [--out path]
/// [--summary]`: run one benchmark through the whole pipeline — model
/// cache, compile phases, kernel submission, per-kernel frequency change,
/// asynchronous profiling — with telemetry enabled, and export the
/// resulting Chrome trace-event JSON (loadable in Perfetto or
/// `chrome://tracing`). Returns the collected events so tests and the
/// shell can inspect them; the JSON goes to `trace_path` (`-` = `out`).
pub fn trace(
    out: &mut dyn Write,
    bench: &str,
    device: &str,
    target: &str,
    trace_path: &str,
    summary: bool,
) -> Result<Vec<synergy_telemetry::TelemetryEvent>, UsageError> {
    use synergy_rt::{compile_application_traced, KernelProfiler, Queue};
    use synergy_telemetry::{ChromeTrace, Recorder, TelemetrySummary};

    let spec = device_by_key(device)
        .ok_or_else(|| UsageError(format!("unknown device `{device}`")))?;
    let b = synergy_apps::by_name(bench)
        .ok_or_else(|| UsageError(format!("unknown benchmark `{bench}`")))?;
    let target: Option<EnergyTarget> = if target.is_empty() {
        None
    } else {
        Some(
            target
                .parse()
                .map_err(|e| UsageError(format!("bad --target: {e}")))?,
        )
    };

    let rec = Recorder::enabled();

    // Compile time: cached models, then the four pipeline phases. Lint
    // findings ride along on the annotations track.
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models = ModelStore::global().get_or_train_traced(
        &spec,
        &suite,
        ModelSelection::paper_best(),
        8,
        2023,
        &rec,
    );
    let lints = LintRegistry::with_builtin();
    lints.check_kernel(&b.ir).prefixed(b.name).annotate(&rec);
    let registry = compile_application_traced(
        &spec,
        &models,
        std::slice::from_ref(&b.ir),
        &EnergyTarget::PAPER_SET,
        &lints,
        &rec,
    )
    .map_err(|e| UsageError(e.to_string()))?;

    // Run time: a traced queue on a fresh device (restriction lowered, as
    // the SLURM plugin would), one kernel per paper target — or just the
    // requested one — each watched by the asynchronous profiler.
    let dev = synergy_sim::SimDevice::new(spec, 0);
    dev.set_api_restriction(false);
    let q = Queue::builder(std::sync::Arc::clone(&dev))
        .registry(std::sync::Arc::new(registry))
        .telemetry(rec.clone())
        .build();
    let items = b.work_items as usize;
    let submitted: Vec<EnergyTarget> = match target {
        Some(t) => vec![t],
        None => vec![EnergyTarget::MaxPerf, EnergyTarget::MinEdp, EnergyTarget::MinEnergy],
    };
    for t in &submitted {
        let ir = b.ir.clone();
        let ev = q.submit_with_target(*t, move |h| h.parallel_for_modeled(items, &ir));
        let profiler = KernelProfiler::start_with(
            std::sync::Arc::clone(&dev),
            ev.clone(),
            rec.clone(),
        );
        ev.wait_and_throw().map_err(|e| UsageError(e.to_string()))?;
        profiler.join().map_err(|e| UsageError(e.to_string()))?;
    }

    let dropped = rec.dropped();
    let events = rec.drain();
    let chrome = ChromeTrace::from_events(&events);
    let json = chrome.to_json();
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    if trace_path == "-" {
        w(writeln!(out, "{json}"))?;
    } else {
        std::fs::write(trace_path, json).map_err(|e| UsageError(e.to_string()))?;
        w(writeln!(
            out,
            "wrote {} events ({} trace slices) to {trace_path}",
            events.len(),
            chrome.trace_events.len()
        ))?;
    }
    if summary {
        let s = TelemetrySummary::from_events(&events, dropped);
        w(write!(out, "{}", s.render()))?;
    }
    Ok(events)
}

/// `synergy scaling --gpus N --app <name>`
pub fn scaling(out: &mut dyn Write, gpus: usize, app: &str) -> Result<(), UsageError> {
    use synergy_cluster::{
        fresh_v100_ranks, run_weak_scaling, FrequencySchedule, MiniApp, WeakScalingConfig,
    };
    let app = match app.to_ascii_lowercase().as_str() {
        "cloverleaf" => MiniApp::CloverLeaf,
        "miniweather" => MiniApp::MiniWeather,
        other => return Err(UsageError(format!("unknown app `{other}`"))),
    };
    let spec = synergy_sim::DeviceSpec::v100();
    let suite = generate_microbench(42, &MicroBenchConfig::default());
    let models =
        ModelStore::global().get_or_train(&spec, &suite, ModelSelection::paper_best(), 8, 2023);
    let registry = std::sync::Arc::new(
        compile_application(&spec, &models, &app.kernel_irs(), &EnergyTarget::PAPER_SET)
            .map_err(|e| UsageError(e.to_string()))?,
    );
    let cfg = WeakScalingConfig::figure10(gpus);
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    w(writeln!(
        out,
        "{} weak scaling on {gpus} simulated V100 GPUs ({} steps, {}x{} local grid)",
        app.name(),
        cfg.steps,
        cfg.local_nx,
        cfg.local_ny
    ))?;
    let base = run_weak_scaling(
        app,
        &cfg,
        &fresh_v100_ranks(gpus),
        synergy_hal::Caller::Root,
        &FrequencySchedule::Default,
    );
    w(writeln!(
        out,
        "  {:<10} {:>9.3} s {:>11.1} J",
        base.schedule, base.time_s, base.energy_j
    ))?;
    for target in [
        EnergyTarget::MinEdp,
        EnergyTarget::EnergySaving(50),
        EnergyTarget::PerfLoss(50),
    ] {
        let outc = run_weak_scaling(
            app,
            &cfg,
            &fresh_v100_ranks(gpus),
            synergy_hal::Caller::Root,
            &FrequencySchedule::PerKernel {
                registry: std::sync::Arc::clone(&registry),
                target,
            },
        );
        w(writeln!(
            out,
            "  {:<10} {:>9.3} s {:>11.1} J  ({:+.1}% energy, {:+.1}% time)",
            outc.schedule,
            outc.time_s,
            outc.energy_j,
            (outc.energy_j / base.energy_j - 1.0) * 100.0,
            (outc.time_s / base.time_s - 1.0) * 100.0
        ))?;
    }
    Ok(())
}

/// `synergy serve [--addr ...] [--workers N] [--queue N] [--reactors N] [--small]`
///
/// Runs the tuning daemon in the foreground. The first output line is
/// `listening on <addr>` (with the actual bound port, so `--addr :0`
/// works in scripts); the process then blocks until some client sends
/// `drain`, finishes the accepted work, and prints the final counters.
pub fn serve(
    out: &mut dyn Write,
    addr: &str,
    workers: usize,
    queue: usize,
    reactors: usize,
    small: bool,
) -> Result<(), UsageError> {
    let profile = if small {
        synergy_serve::ModelProfile::small()
    } else {
        synergy_serve::ModelProfile::paper()
    };
    let handle = synergy_serve::spawn(synergy_serve::ServeConfig {
        addr: addr.to_string(),
        workers,
        queue_capacity: queue,
        reactors,
        profile,
        metrics: synergy_telemetry::Metrics::enabled(),
        ..synergy_serve::ServeConfig::default()
    })
    .map_err(|e| UsageError(format!("cannot bind `{addr}`: {e}")))?;
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    w(writeln!(out, "listening on {}", handle.addr()))?;
    w(out.flush())?;
    // Parked on the server's drain condvar — no polling loop; the drain
    // request wakes this thread the moment the flag flips.
    handle.wait_for_drain();
    // Persist the last metrics snapshot before the registry goes away so
    // post-mortem tooling can read what the daemon saw at drain time.
    let final_snapshot = synergy_serve::snapshot_to_wire(&handle.metrics_snapshot()).encode();
    let stats = handle.join();
    if std::fs::create_dir_all("experiments").is_ok() {
        if let Err(e) = std::fs::write("experiments/metrics_final.json", &final_snapshot) {
            w(writeln!(out, "warning: could not write metrics_final.json: {e}"))?;
        }
    }
    w(writeln!(
        out,
        "drained: {} connections, {} requests enqueued, {} responses, \
         {} coalesced, {} busy-rejected, {} expired, peak queue depth {}",
        stats.connections,
        stats.enqueued,
        stats.responses,
        stats.coalesce_joins,
        stats.busy_rejections,
        stats.expired,
        stats.queue_depth_max,
    ))?;
    Ok(())
}

/// `synergy fleet --node host:port[=v100,a100]... [--addr ...] [...]`
///
/// Runs the fleet coordinator in the foreground, fronting the given
/// serve nodes. Mirrors `serve`: the first output line is
/// `fleet listening on <addr>` with the actual bound port; the process
/// then blocks until a client sends `drain`, the in-flight work
/// finishes, and the final counters print.
#[allow(clippy::too_many_arguments)]
pub fn fleet(
    out: &mut dyn Write,
    addr: &str,
    nodes: &[String],
    reactors: usize,
    heartbeat_ms: u64,
    dead_after_ms: u64,
    max_inflight: usize,
    sweep_chunk: usize,
) -> Result<(), UsageError> {
    let nodes = nodes
        .iter()
        .map(|spec| synergy_fleet::NodeConfig::parse(spec).map_err(UsageError))
        .collect::<Result<Vec<_>, _>>()?;
    let handle = synergy_fleet::spawn_fleet(synergy_fleet::FleetConfig {
        addr: addr.to_string(),
        nodes,
        reactors,
        heartbeat_interval: std::time::Duration::from_millis(heartbeat_ms),
        dead_after: std::time::Duration::from_millis(dead_after_ms),
        max_inflight_per_node: max_inflight,
        sweep_chunk,
        metrics: synergy_telemetry::Metrics::enabled(),
        ..synergy_fleet::FleetConfig::default()
    })
    .map_err(|e| UsageError(format!("cannot bind `{addr}`: {e}")))?;
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    w(writeln!(out, "fleet listening on {}", handle.addr()))?;
    w(out.flush())?;
    handle.wait_for_drain();
    let stats = handle.join();
    w(writeln!(
        out,
        "drained: {} connections, {} accepted, {} responses, {} forwarded, \
         {} reassigned, {} orphaned, {} busy-rejected, {} expired, \
         {} preemptions, {} dead nodes",
        stats.connections,
        stats.accepted,
        stats.responses,
        stats.forwarded,
        stats.reassigned,
        stats.orphaned,
        stats.busy_rejections,
        stats.expired,
        stats.preemptions,
        stats.dead_nodes,
    ))?;
    Ok(())
}

/// `synergy metrics [--addr ...] [--format json|openmetrics] [--watch SECS] [--fleet]`
///
/// Scrapes a running daemon's live metrics snapshot. `json` prints the
/// wire-format snapshot verbatim; `openmetrics` renders the same
/// snapshot as OpenMetrics exposition text; `--fleet` renders the cost
/// rollup summary instead (against a coordinator the scraped snapshot
/// is already the bucket-exact merge across every live node). With
/// `--watch SECS` the scrape repeats every SECS seconds until the
/// daemon goes away (the first scrape must succeed; later failures end
/// the loop cleanly).
pub fn metrics(
    out: &mut dyn Write,
    addr: &str,
    format: &str,
    watch: Option<u64>,
    fleet: bool,
) -> Result<(), UsageError> {
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    let mut first = true;
    loop {
        let scraped = scrape_metrics(addr);
        let snapshot = match scraped {
            Ok(s) => s,
            Err(e) if first => return Err(e),
            Err(_) => return Ok(()),
        };
        if fleet {
            let snap = synergy_serve::snapshot_from_wire(&snapshot)
                .map_err(|e| UsageError(format!("malformed metrics snapshot: {e}")))?;
            render_cost_rollup(out, &snap)?;
        } else {
            match format {
                "json" => w(writeln!(out, "{}", snapshot.encode()))?,
                "openmetrics" => {
                    let snap = synergy_serve::snapshot_from_wire(&snapshot)
                        .map_err(|e| UsageError(format!("malformed metrics snapshot: {e}")))?;
                    w(write!(
                        out,
                        "{}",
                        synergy_telemetry::expose::render_openmetrics(&snap)
                    ))?;
                }
                other => return Err(UsageError(format!("unknown metrics format `{other}`"))),
            }
        }
        w(out.flush())?;
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return Ok(()),
        }
        first = false;
    }
}

/// Human-readable fleet cost rollup: the `CostSnapshot` plus a per-device
/// energy breakdown, from an (already merged) metrics snapshot.
fn render_cost_rollup(
    out: &mut dyn Write,
    snap: &synergy_telemetry::MetricsSnapshot,
) -> Result<(), UsageError> {
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    let c = &snap.cost;
    w(writeln!(
        out,
        "fleet cost rollup ({:.1} node-seconds @ {:.4} USD/kWh)",
        c.node_seconds, c.usd_per_kwh
    ))?;
    w(writeln!(
        out,
        "  energy {:>14.3} J  ({:.9} kWh)  cost {:.9} USD",
        c.total_joules, c.kwh, c.tco_usd
    ))?;
    for (device, joules) in &c.joules_by_device {
        let share = if c.total_joules > 0.0 {
            100.0 * joules / c.total_joules
        } else {
            0.0
        };
        w(writeln!(out, "  {device:<12} {joules:>14.3} J  ({share:5.1}%)"))?;
    }
    Ok(())
}

fn scrape_metrics(addr: &str) -> Result<synergy_serve::Json, UsageError> {
    let mut client = synergy_serve::Client::connect(addr)
        .map_err(|e| UsageError(format!("cannot connect to `{addr}`: {e}")))?;
    match client.metrics() {
        Ok(synergy_serve::Response::MetricsReply { snapshot }) => Ok(snapshot),
        Ok(other) => Err(UsageError(format!(
            "unexpected `{}` reply to metrics request",
            other.op()
        ))),
        Err(e) => Err(UsageError(format!("metrics request failed: {e}"))),
    }
}

/// `synergy request <op> ... [--addr ...] [--deadline ms] [--retries N]`
///
/// Connects to a running daemon, sends one request, renders the reply.
/// With `--retries N` a `busy {retry_after_ms}` reply is retried up to N
/// times with jittered exponential backoff honouring the server's hint.
/// Returns the response so `main` can pick the exit code (`Busy`,
/// `Expired` and `Error` replies exit non-zero).
pub fn request(
    out: &mut dyn Write,
    addr: &str,
    deadline_ms: u64,
    retries: u32,
    req: synergy_serve::Request,
) -> Result<synergy_serve::Response, UsageError> {
    let mut client = synergy_serve::Client::connect(addr)
        .map_err(|e| UsageError(format!("cannot connect to `{addr}`: {e}")))?;
    let resp = if retries > 0 {
        let mut policy = synergy_serve::RetryPolicy::new(retries, 25, 800, std::process::id() as u64);
        client.request_with_retry(&req, deadline_ms, &mut policy)
    } else if deadline_ms == 0 {
        client.request(req)
    } else {
        client.request_with_deadline(req, deadline_ms)
    }
    .map_err(|e| UsageError(format!("request failed: {e}")))?;
    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    match &resp {
        synergy_serve::Response::Pong => w(writeln!(out, "pong"))?,
        synergy_serve::Response::Compiled {
            device,
            coalesced,
            decisions,
        } => {
            w(writeln!(
                out,
                "compiled for {device} ({} decisions{})",
                decisions.len(),
                if *coalesced { ", coalesced" } else { "" }
            ))?;
            for d in decisions {
                w(writeln!(
                    out,
                    "  {:<22} {:>10} -> {:>5}/{:>5} MHz",
                    d.kernel, d.target, d.mem_mhz, d.core_mhz
                ))?;
            }
        }
        synergy_serve::Response::Predicted {
            time_s,
            energy_j,
            edp,
            ed2p,
        } => {
            w(writeln!(
                out,
                "time {time_s:.6e} s  energy {energy_j:.6e} J  EDP {edp:.6e}  ED2P {ed2p:.6e}"
            ))?;
        }
        synergy_serve::Response::SweepFront {
            device,
            bench,
            configurations,
            pareto,
        } => {
            w(writeln!(
                out,
                "{bench} on {device}: {configurations} configurations, {} Pareto points",
                pareto.len()
            ))?;
            for p in pareto {
                w(writeln!(
                    out,
                    "  {:>5}/{:>5} MHz  time {:.6e} s  energy {:.6e} J",
                    p.mem_mhz, p.core_mhz, p.time_s, p.energy_j
                ))?;
            }
        }
        synergy_serve::Response::SweepPartial {
            device,
            bench,
            offset,
            configurations,
            points,
        } => {
            w(writeln!(
                out,
                "{bench} on {device}: chunk at offset {offset}/{configurations}, {} points",
                points.len()
            ))?;
        }
        synergy_serve::Response::HeartbeatReply {
            draining,
            queue_depth,
            warm_keys,
        } => {
            w(writeln!(
                out,
                "alive{}: queue depth {queue_depth}, warm [{}]",
                if *draining { " (draining)" } else { "" },
                warm_keys.join(", ")
            ))?;
        }
        synergy_serve::Response::FleetNodesReply { nodes } => {
            w(writeln!(out, "{} node(s)", nodes.len()))?;
            for n in nodes {
                w(writeln!(
                    out,
                    "  {:<21} {:<10} in-flight {:>3}  forwarded {:>7}  warm [{}]",
                    n.addr,
                    n.state,
                    n.in_flight,
                    n.forwarded,
                    n.warm_keys.join(", ")
                ))?;
            }
        }
        synergy_serve::Response::StatsReply { .. } => {
            let rendered = synergy_serve::ResponseFrame {
                id: 0,
                resp: resp.clone(),
            }
            .encode();
            w(writeln!(out, "{}", String::from_utf8_lossy(&rendered)))?;
        }
        synergy_serve::Response::MetricsReply { snapshot } => {
            w(writeln!(out, "{}", snapshot.encode()))?;
        }
        synergy_serve::Response::Busy { retry_after_ms } => {
            w(writeln!(out, "busy: retry after {retry_after_ms} ms"))?;
        }
        synergy_serve::Response::Draining { pending } => {
            w(writeln!(out, "draining ({pending} pending)"))?;
        }
        synergy_serve::Response::Expired { waited_ms } => {
            w(writeln!(out, "expired after {waited_ms} ms in queue"))?;
        }
        synergy_serve::Response::Error {
            kind,
            message,
            diagnostics,
        } => {
            w(writeln!(out, "error [{}]: {message}", kind.name()))?;
            for d in diagnostics {
                w(writeln!(
                    out,
                    "  {} {} at {}: {}",
                    d.severity, d.code, d.path, d.message
                ))?;
            }
        }
    }
    Ok(resp)
}

/// Options for `synergy bench` (mirrors the command-line flags).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Suite name (`pipeline`, `serve` or `fleet`).
    pub suite: String,
    /// Regression tolerance in percent.
    pub tolerance: f64,
    /// Report regressions but exit 0 anyway.
    pub no_fail: bool,
    /// Skip running the perf binary; diff the existing history only.
    pub no_run: bool,
    /// History file override (default `experiments/bench_history.jsonl`).
    pub history: Option<String>,
    /// Directory holding the `*_perf` binaries (default: next to the
    /// running executable).
    pub bin_dir: Option<String>,
}

/// What `synergy bench` concluded, for exit-code decisions.
#[derive(Debug)]
pub struct BenchOutcome {
    /// The per-counter diff against the previous same-parameter run.
    pub diff: synergy_bench::regress::BenchDiff,
    /// `--no-fail` was given: regressions are reported but never gate.
    pub no_fail: bool,
}

impl BenchOutcome {
    /// The gate verdict: any counter regressed beyond tolerance, unless
    /// `--no-fail` turned the gate off.
    pub fn failed(&self) -> bool {
        !self.no_fail && self.diff.failed()
    }
}

/// `synergy bench <suite>`: run the suite's `*_perf --small` binary
/// (appending one line to the benchmark history), then diff its headline
/// counters against the previous run with identical parameters.
///
/// Fewer than two matching history lines is a clean pass — fresh clones
/// have no baseline to regress against.
pub fn bench(out: &mut dyn Write, opts: &BenchOptions) -> Result<BenchOutcome, UsageError> {
    use synergy_bench::regress::{diff_history, suite_by_name, Direction};

    let w = |r: std::io::Result<()>| r.map_err(|e| UsageError(e.to_string()));
    let spec = suite_by_name(&opts.suite)
        .ok_or_else(|| UsageError(format!("unknown bench suite `{}`", opts.suite)))?;

    if !opts.no_run {
        let dir = match &opts.bin_dir {
            Some(d) => std::path::PathBuf::from(d),
            None => std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.to_path_buf()))
                .ok_or_else(|| UsageError("cannot locate the perf binaries".into()))?,
        };
        let binary = dir.join(spec.binary);
        w(writeln!(out, "running {} --small ...", binary.display()))?;
        let status = std::process::Command::new(&binary)
            .arg("--small")
            .status()
            .map_err(|e| UsageError(format!("cannot run `{}`: {e}", binary.display())))?;
        if !status.success() {
            return Err(UsageError(format!(
                "`{} --small` failed with {status}",
                binary.display()
            )));
        }
    }

    let history_path = match &opts.history {
        Some(p) => std::path::PathBuf::from(p),
        None => synergy_bench::artifact_dir().join("bench_history.jsonl"),
    };
    // A missing history file is the fresh-clone case: nothing to diff.
    let text = std::fs::read_to_string(&history_path).unwrap_or_default();
    let diff = diff_history(spec, &text, opts.tolerance);

    if diff.skipped {
        w(writeln!(
            out,
            "bench {}: no previous run with matching parameters in {} — nothing to diff",
            spec.name,
            history_path.display()
        ))?;
        return Ok(BenchOutcome {
            diff,
            no_fail: opts.no_fail,
        });
    }

    let fmt_val = |v: Option<f64>| match v {
        Some(x) if x.abs() >= 1000.0 => format!("{x:.0}"),
        Some(x) => format!("{x:.4}"),
        None => "n/a".to_string(),
    };
    w(writeln!(
        out,
        "bench {}: {} (current) vs {} (baseline), tolerance {}%",
        spec.name,
        diff.current_commit.as_deref().unwrap_or("?"),
        diff.baseline_commit.as_deref().unwrap_or("?"),
        opts.tolerance
    ))?;
    for r in &diff.rows {
        let arrow = match r.direction {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
        };
        let verdict = match r.worse_pct {
            None => "n/a".to_string(),
            Some(p) if r.regressed => format!("{p:+.1}% worse  REGRESSED"),
            Some(p) => format!("{p:+.1}% worse  ok"),
        };
        w(writeln!(
            out,
            "  {:<28} ({arrow:>6} is better)  {:>12} -> {:>12}  {verdict}",
            r.counter,
            fmt_val(r.baseline),
            fmt_val(r.current)
        ))?;
    }
    if diff.failed() {
        w(writeln!(
            out,
            "bench {}: REGRESSION beyond {}% tolerance{}",
            spec.name,
            opts.tolerance,
            if opts.no_fail { " (--no-fail: exit 0)" } else { "" }
        ))?;
    } else {
        w(writeln!(out, "bench {}: within tolerance", spec.name))?;
    }
    Ok(BenchOutcome {
        diff,
        no_fail: opts.no_fail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_lists_catalogue() {
        let mut buf = Vec::new();
        devices(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("NVIDIA V100"));
        assert!(s.contains("AMD MI100"));
        assert!(s.contains("Titan X"));
        assert!(s.contains("auto"));
    }

    #[test]
    fn benchmarks_lists_all_23() {
        let mut buf = Vec::new();
        benchmarks(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 24); // header + 23
        assert!(s.contains("black_scholes"));
    }

    #[test]
    fn characterize_prints_targets() {
        let mut buf = Vec::new();
        characterize(&mut buf, "vec_add", "mi100").unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("AMD MI100"));
        assert!(s.contains("MIN_EDP"));
        assert!(s.contains("Pareto front"));
    }

    #[test]
    fn characterize_rejects_unknowns() {
        let mut buf = Vec::new();
        assert!(characterize(&mut buf, "nope", "v100").is_err());
        assert!(characterize(&mut buf, "vec_add", "h100").is_err());
    }

    #[test]
    fn compile_emits_full_registry() {
        let reg = compile(&["vec_add".into(), "sobel3".into()], "v100").unwrap();
        assert_eq!(reg.len(), 2 * EnergyTarget::PAPER_SET.len());
        let json = serde_json::to_string(&reg).unwrap();
        let back: TargetRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn lint_reports_clean_suite_kernel() {
        let mut buf = Vec::new();
        let report = lint(&mut buf, "vec_add", "v100", false).unwrap();
        assert!(!report.has_deny());
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("vec_add"));
    }

    #[test]
    fn lint_json_round_trips() {
        let mut buf = Vec::new();
        let report = lint(&mut buf, "mat_mul", "v100", true).unwrap();
        let parsed: Report = serde_json::from_slice(&buf).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn lint_rejects_unknowns() {
        let mut buf = Vec::new();
        assert!(lint(&mut buf, "nope", "v100", false).is_err());
        assert!(lint(&mut buf, "vec_add", "h100", false).is_err());
    }

    #[test]
    fn scaling_runs_small() {
        let mut buf = Vec::new();
        scaling(&mut buf, 2, "miniweather").unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("default"));
        assert!(s.contains("ES_50"));
    }

    #[test]
    fn scaling_rejects_unknown_app() {
        let mut buf = Vec::new();
        assert!(scaling(&mut buf, 2, "linpack").is_err());
    }

    #[test]
    fn trace_writes_a_loadable_chrome_trace() {
        use synergy_telemetry::{ChromeTrace, EventKind};
        let path = std::env::temp_dir().join(format!(
            "synergy-trace-test-{}.json",
            std::process::id()
        ));
        let path_s = path.to_str().unwrap().to_string();
        let mut buf = Vec::new();
        let events = trace(&mut buf, "vec_add", "v100", "", &path_s, true).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let back = ChromeTrace::from_json(&json).unwrap();
        assert!(!back.trace_events.is_empty());
        // The trace must cover every layer: submission, execution, clock
        // changes, profiler windows, the model cache and compile phases.
        let has = |f: fn(&EventKind) -> bool| events.iter().any(|e| f(&e.kind));
        assert!(has(|k| matches!(k, EventKind::KernelSubmit { .. })));
        assert!(has(|k| matches!(k, EventKind::KernelRun { .. })));
        assert!(has(|k| matches!(k, EventKind::ClockChange { .. })));
        assert!(has(|k| matches!(k, EventKind::ProfilerWindow { .. })));
        assert!(has(|k| matches!(k, EventKind::ModelCache { .. })));
        assert!(has(|k| matches!(k, EventKind::PhaseEnd { .. })));
        // --summary printed the rendered totals after the write notice.
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("wrote "));
        assert!(s.contains("kernels"));
    }

    #[test]
    fn trace_honours_an_explicit_target_and_stdout() {
        use synergy_telemetry::EventKind;
        let mut buf = Vec::new();
        let events = trace(&mut buf, "vec_add", "v100", "ES_50", "-", false).unwrap();
        let submits = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::KernelSubmit { .. }))
            .count();
        assert_eq!(submits, 1);
        let s = String::from_utf8(buf).unwrap();
        assert!(s.trim_start().starts_with('{'), "stdout holds the JSON");
    }

    #[test]
    fn trace_rejects_unknowns() {
        let mut buf = Vec::new();
        assert!(trace(&mut buf, "nope", "v100", "", "-", false).is_err());
        assert!(trace(&mut buf, "vec_add", "h100", "", "-", false).is_err());
        assert!(trace(&mut buf, "vec_add", "v100", "FASTER", "-", false).is_err());
    }
}
