//! End-to-end exit-code contract of `synergy bench`: spawn the real
//! binary against a temp history file and pin the exit codes for a
//! synthetic regression, an unchanged re-run, `--no-fail`, and the
//! missing-baseline skip.

use std::path::PathBuf;
use std::process::Command;

fn temp_history(name: &str, lines: &[String]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "synergy-bench-cli-{name}-{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&path, lines.join("\n")).expect("write temp history");
    path
}

fn pipeline_line(commit: &str, train_cold_s: f64, rows_per_sec: f64) -> String {
    format!(
        r#"{{"bench":"pipeline_perf","commit":"{commit}","device":"NVIDIA V100","mode":"small","suite_size":8,"stride":32,"kernels":4,"cold_s":1.0,"train_cold_s":{train_cold_s},"warm_memory_s":0.01,"warm_disk_s":0.02,"predict_rows_per_sec_batch":{rows_per_sec}}}"#
    )
}

fn run_bench(history: &PathBuf, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_synergy"))
        .args(["bench", "pipeline", "--no-run", "--history"])
        .arg(history)
        .args(extra)
        .output()
        .expect("spawn synergy bench")
}

#[test]
fn regression_beyond_tolerance_exits_one() {
    // train_cold_s grows 50% and batch throughput halves: both regress
    // at the default 10% tolerance.
    let history = temp_history(
        "regress",
        &[
            pipeline_line("aaa1111", 0.10, 100_000.0),
            pipeline_line("bbb2222", 0.15, 50_000.0),
        ],
    );
    let out = run_bench(&history, &[]);
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "stdout:\n{stdout}");
    assert!(stdout.contains("train_cold_s"), "stdout:\n{stdout}");

    // The same diff passes with --no-fail and with a huge tolerance.
    assert_eq!(run_bench(&history, &["--no-fail"]).status.code(), Some(0));
    assert_eq!(
        run_bench(&history, &["--tolerance", "60"]).status.code(),
        Some(0)
    );
    let _ = std::fs::remove_file(&history);
}

#[test]
fn unchanged_rerun_exits_zero() {
    let history = temp_history(
        "stable",
        &[
            pipeline_line("aaa1111", 0.10, 100_000.0),
            pipeline_line("bbb2222", 0.10, 100_000.0),
        ],
    );
    let out = run_bench(&history, &[]);
    assert_eq!(out.status.code(), Some(0), "identical re-run must pass");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("within tolerance"), "stdout:\n{stdout}");
    let _ = std::fs::remove_file(&history);
}

#[test]
fn missing_or_single_line_history_skips_cleanly() {
    // No history file at all.
    let missing = std::env::temp_dir().join(format!(
        "synergy-bench-cli-missing-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&missing);
    let out = run_bench(&missing, &[]);
    assert_eq!(out.status.code(), Some(0), "fresh clone must pass");

    // One line only: no baseline yet.
    let history = temp_history("single", &[pipeline_line("aaa1111", 0.10, 100_000.0)]);
    let out = run_bench(&history, &[]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nothing to diff"), "stdout:\n{stdout}");
    let _ = std::fs::remove_file(&history);
}

#[test]
fn unknown_suite_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_synergy"))
        .args(["bench", "frobnicate", "--no-run"])
        .output()
        .expect("spawn synergy bench");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown bench suite"), "stderr:\n{stderr}");
}
