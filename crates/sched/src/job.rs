//! Batch jobs: what users submit to the scheduler.

use std::collections::BTreeSet;
use std::sync::Arc;
use synergy_hal::Caller;
use synergy_sim::SimNode;

/// The environment a running job sees: its allocated nodes and the caller
/// identity its management-library calls carry.
pub struct JobContext<'a> {
    /// Scheduler-assigned job id.
    pub job_id: u64,
    /// The submitting user (management calls run as `Caller::User(uid)`).
    pub caller: Caller,
    /// Allocated nodes, in allocation order.
    pub nodes: &'a [&'a SimNode],
}

impl JobContext<'_> {
    /// All GPUs across the allocation, node-major.
    pub fn gpus(&self) -> Vec<Arc<synergy_sim::SimDevice>> {
        self.nodes
            .iter()
            .flat_map(|n| n.gpus.iter().cloned())
            .collect()
    }
}

/// The job's payload: the "batch script".
pub type JobPayload = Box<dyn FnOnce(&JobContext<'_>) + Send>;

/// A batch-job request.
pub struct JobRequest {
    /// Human-readable name.
    pub name: String,
    /// Submitting uid.
    pub user: u32,
    /// Number of nodes requested.
    pub nodes: usize,
    /// Whether the job demands exclusive node access (required by the
    /// nvgpufreq plugin).
    pub exclusive: bool,
    /// GRES the job requests (e.g. `nvgpufreq`).
    pub gres: BTreeSet<String>,
    /// The work.
    pub payload: JobPayload,
}

impl JobRequest {
    /// Start building a job.
    pub fn builder(name: impl Into<String>, user: u32) -> JobRequestBuilder {
        JobRequestBuilder {
            name: name.into(),
            user,
            nodes: 1,
            exclusive: false,
            gres: BTreeSet::new(),
        }
    }
}

/// Builder for [`JobRequest`].
pub struct JobRequestBuilder {
    name: String,
    user: u32,
    nodes: usize,
    exclusive: bool,
    gres: BTreeSet<String>,
}

impl JobRequestBuilder {
    /// Request `n` nodes.
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Request exclusive node access (`--exclusive`).
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// Request a GRES tag (`--gres=<tag>`).
    pub fn gres(mut self, tag: &str) -> Self {
        self.gres.insert(tag.to_string());
        self
    }

    /// Attach the payload and finish.
    pub fn payload(self, f: impl FnOnce(&JobContext<'_>) + Send + 'static) -> JobRequest {
        JobRequest {
            name: self.name,
            user: self.user,
            nodes: self.nodes,
            exclusive: self.exclusive,
            gres: self.gres,
            payload: Box::new(f),
        }
    }
}

/// Terminal state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Ran to completion.
    Completed,
    /// Could not be allocated (insufficient nodes).
    Rejected,
}

/// Scheduler-side record of a finished job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Job name.
    pub name: String,
    /// Submitting uid.
    pub user: u32,
    /// Terminal state.
    pub state: JobState,
    /// Hostnames the job ran on.
    pub hostnames: Vec<String>,
    /// GPU energy attributed to the job, in joules (energy accounting).
    pub gpu_energy_j: f64,
    /// Job wall time in seconds of device virtual time (max across GPUs).
    pub elapsed_s: f64,
    /// Per-node plugin decisions, `(hostname, plugin, applied, reason)`.
    pub plugin_log: Vec<PluginLogEntry>,
}

/// One prologue decision taken by one plugin on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginLogEntry {
    /// Node hostname.
    pub hostname: String,
    /// Plugin name.
    pub plugin: String,
    /// Whether the plugin applied its configuration.
    pub applied: bool,
    /// Skip reason when not applied.
    pub reason: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let j = JobRequest::builder("job", 1000).payload(|_| {});
        assert_eq!(j.nodes, 1);
        assert!(!j.exclusive);
        assert!(j.gres.is_empty());
    }

    #[test]
    fn builder_options() {
        let j = JobRequest::builder("job", 1000)
            .nodes(4)
            .exclusive()
            .gres("nvgpufreq")
            .payload(|_| {});
        assert_eq!(j.nodes, 4);
        assert!(j.exclusive);
        assert!(j.gres.contains("nvgpufreq"));
    }

    #[test]
    fn context_collects_gpus() {
        let n1 = SimNode::marconi100("a");
        let n2 = SimNode::marconi100("b");
        let nodes = vec![&n1, &n2];
        let ctx = JobContext {
            job_id: 1,
            caller: Caller::User(7),
            nodes: &nodes,
        };
        assert_eq!(ctx.gpus().len(), 8);
    }
}
