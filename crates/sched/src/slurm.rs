//! The scheduler core: FIFO allocation, prologue → payload → epilogue
//! execution, and per-job GPU energy accounting.

use crate::cluster::Cluster;
use crate::job::{JobContext, JobRecord, JobRequest, JobState, PluginLogEntry};
use crate::plugin::{ControllerStatus, PluginJobInfo, SlurmPlugin};
use synergy_hal::Caller;

/// The scheduler daemon (`slurmctld` + `slurmd` rolled into one for the
/// simulation).
pub struct Slurm {
    cluster: Cluster,
    plugins: Vec<Box<dyn SlurmPlugin>>,
    controller: ControllerStatus,
    next_job_id: u64,
    records: Vec<JobRecord>,
}

impl Slurm {
    /// Bring up the scheduler over a cluster.
    pub fn new(cluster: Cluster) -> Slurm {
        Slurm {
            cluster,
            plugins: Vec::new(),
            controller: ControllerStatus::Reachable,
            next_job_id: 1,
            records: Vec::new(),
        }
    }

    /// Install a prologue/epilogue plugin.
    pub fn register_plugin(&mut self, plugin: Box<dyn SlurmPlugin>) {
        self.plugins.push(plugin);
    }

    /// Simulate controller (node-info RPC) health for plugin checks.
    pub fn set_controller_status(&mut self, status: ControllerStatus) {
        self.controller = status;
    }

    /// The cluster (inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Completed job records.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Submit and immediately run a job to completion (the simulation is
    /// synchronous; jobs run in submission order).
    ///
    /// Returns the job record. Jobs that cannot get their nodes are
    /// rejected rather than queued.
    pub fn run(&mut self, job: JobRequest) -> &JobRecord {
        let id = self.next_job_id;
        self.next_job_id += 1;

        let Some(node_ids) = self.cluster.find_free(job.nodes) else {
            self.records.push(JobRecord {
                id,
                name: job.name,
                user: job.user,
                state: JobState::Rejected,
                hostnames: vec![],
                gpu_energy_j: 0.0,
                elapsed_s: 0.0,
                plugin_log: vec![],
            });
            return self.records.last().expect("just pushed");
        };

        // Allocate.
        for &i in &node_ids {
            self.cluster.nodes[i].allocated_to = Some(id);
            self.cluster.nodes[i].exclusive = job.exclusive;
        }

        let info = PluginJobInfo {
            job_id: id,
            user: job.user,
            gres: job.gres.clone(),
            exclusive: job.exclusive,
        };

        // Prologue on every allocated node.
        let mut plugin_log = Vec::new();
        for &i in &node_ids {
            let node = &self.cluster.nodes[i];
            for plugin in &self.plugins {
                let outcome = plugin.prologue(&info, node, self.controller);
                plugin_log.push(PluginLogEntry {
                    hostname: node.node.hostname.clone(),
                    plugin: plugin.name().to_string(),
                    applied: outcome.applied(),
                    reason: match outcome {
                        crate::plugin::PluginOutcome::Applied => None,
                        crate::plugin::PluginOutcome::Skipped(r) => Some(r),
                    },
                });
            }
        }

        // Energy accounting: snapshot before.
        let energy_before: f64 = node_ids
            .iter()
            .map(|&i| self.cluster.nodes[i].node.total_gpu_energy_j())
            .sum();
        let time_before: u64 = node_ids
            .iter()
            .flat_map(|&i| self.cluster.nodes[i].node.gpus.iter())
            .map(|g| g.now_ns())
            .max()
            .unwrap_or(0);

        // Run the payload with the allocation.
        {
            let nodes: Vec<&synergy_sim::SimNode> =
                node_ids.iter().map(|&i| &self.cluster.nodes[i].node).collect();
            let ctx = JobContext {
                job_id: id,
                caller: Caller::User(job.user),
                nodes: &nodes,
            };
            (job.payload)(&ctx);
        }

        let energy_after: f64 = node_ids
            .iter()
            .map(|&i| self.cluster.nodes[i].node.total_gpu_energy_j())
            .sum();
        let time_after: u64 = node_ids
            .iter()
            .flat_map(|&i| self.cluster.nodes[i].node.gpus.iter())
            .map(|g| g.now_ns())
            .max()
            .unwrap_or(0);

        // Epilogue on every node, then release.
        for &i in &node_ids {
            let node = &self.cluster.nodes[i];
            for plugin in &self.plugins {
                plugin.epilogue(&info, node);
            }
        }
        for &i in &node_ids {
            self.cluster.nodes[i].allocated_to = None;
            self.cluster.nodes[i].exclusive = false;
        }

        self.records.push(JobRecord {
            id,
            name: job.name,
            user: job.user,
            state: JobState::Completed,
            hostnames: node_ids
                .iter()
                .map(|&i| self.cluster.nodes[i].node.hostname.clone())
                .collect(),
            gpu_energy_j: energy_after - energy_before,
            elapsed_s: (time_after.saturating_sub(time_before)) as f64 * 1e-9,
            plugin_log,
        });
        self.records.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NVGPUFREQ_GRES;
    use crate::plugin::NvGpuFreqPlugin;
    use synergy_hal::{Nvml, NvmlDevice};
    use synergy_sim::ClockConfig;

    fn scheduler(nodes: usize, tagged: bool) -> Slurm {
        let mut s = Slurm::new(Cluster::marconi100(nodes, tagged));
        s.register_plugin(Box::new(NvGpuFreqPlugin));
        s
    }

    #[test]
    fn privileged_job_can_scale_clocks() {
        let mut s = scheduler(2, true);
        let job = JobRequest::builder("scale", 1000)
            .nodes(1)
            .exclusive()
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                let nvml = Nvml::init(&ctx.nodes[0].gpus);
                for i in 0..nvml.device_count() {
                    let dev = nvml.device_by_index(i).unwrap();
                    dev.set_application_clocks(ctx.caller, ClockConfig::new(877, 135))
                        .unwrap();
                }
                // Burn some GPU time so accounting sees energy.
                for gpu in &ctx.nodes[0].gpus {
                    gpu.advance_idle(10_000_000);
                }
            });
        let rec = s.run(job);
        assert_eq!(rec.state, JobState::Completed);
        assert!(rec.plugin_log.iter().all(|e| e.applied));
        assert!(rec.gpu_energy_j > 0.0);
        // Node restored after epilogue.
        let gpu = &s.cluster().nodes[0].node.gpus[0];
        assert!(gpu.api_restricted());
        assert_eq!(gpu.application_clocks(), None);
    }

    #[test]
    fn non_exclusive_job_cannot_scale() {
        let mut s = scheduler(1, true);
        let job = JobRequest::builder("noexcl", 1000)
            .nodes(1)
            .gres(NVGPUFREQ_GRES)
            .payload(|ctx| {
                let dev = NvmlDevice::new(ctx.nodes[0].gpus[0].clone()).unwrap();
                let err = dev
                    .set_application_clocks(ctx.caller, ClockConfig::new(877, 135))
                    .unwrap_err();
                assert_eq!(err, synergy_hal::HalError::NoPermission);
            });
        let rec = s.run(job);
        assert_eq!(rec.state, JobState::Completed);
        assert!(rec.plugin_log.iter().all(|e| !e.applied));
    }

    #[test]
    fn job_rejected_when_cluster_full() {
        let mut s = scheduler(1, true);
        let rec = s.run(
            JobRequest::builder("big", 1)
                .nodes(5)
                .payload(|_| panic!("payload must not run")),
        );
        assert_eq!(rec.state, JobState::Rejected);
    }

    #[test]
    fn nodes_freed_after_job() {
        let mut s = scheduler(2, true);
        s.run(JobRequest::builder("a", 1).nodes(2).payload(|_| {}));
        assert_eq!(s.cluster().free_nodes(), 2);
        let rec = s.run(JobRequest::builder("b", 1).nodes(2).payload(|_| {}));
        assert_eq!(rec.state, JobState::Completed);
    }

    #[test]
    fn next_job_sees_default_clocks_even_after_misbehaving_job() {
        // The scenario of Section 2.3 / 7.1: a job leaves a low frequency
        // behind; the epilogue protects the next job.
        let mut s = scheduler(1, true);
        s.run(
            JobRequest::builder("bad", 1000)
                .nodes(1)
                .exclusive()
                .gres(NVGPUFREQ_GRES)
                .payload(|ctx| {
                    let dev = NvmlDevice::new(ctx.nodes[0].gpus[0].clone()).unwrap();
                    dev.set_application_clocks(ctx.caller, ClockConfig::new(877, 135))
                        .unwrap();
                    // ...and "forgets" to reset.
                }),
        );
        s.run(
            JobRequest::builder("victim", 2000)
                .nodes(1)
                .payload(|ctx| {
                    let gpu = &ctx.nodes[0].gpus[0];
                    assert_eq!(gpu.application_clocks(), None);
                    assert_eq!(gpu.effective_clocks(), gpu.spec().baseline_clocks());
                }),
        );
    }

    #[test]
    fn controller_outage_blocks_privilege_raising() {
        let mut s = scheduler(1, true);
        s.set_controller_status(ControllerStatus::Unreachable);
        let rec = s.run(
            JobRequest::builder("j", 1000)
                .nodes(1)
                .exclusive()
                .gres(NVGPUFREQ_GRES)
                .payload(|_| {}),
        );
        assert!(rec.plugin_log.iter().all(|e| !e.applied));
    }

    #[test]
    fn records_accumulate() {
        let mut s = scheduler(1, true);
        s.run(JobRequest::builder("one", 1).payload(|_| {}));
        s.run(JobRequest::builder("two", 1).payload(|_| {}));
        assert_eq!(s.records().len(), 2);
        assert_eq!(s.records()[0].name, "one");
        assert_eq!(s.records()[1].id, 2);
    }
}
