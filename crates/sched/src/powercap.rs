//! Cluster power capping — the SLURM power-management behaviour the paper
//! describes in Section 2.3: *"SLURM provides an integrated power
//! management system for energy accounting and power capping, which takes
//! the configured power cap for the system and distributes it across the
//! nodes controlled by SLURM. SLURM lowers the power caps on nodes that
//! are consuming less than their cap and redistributes that power to other
//! nodes, with configurable power thresholds."*
//!
//! A node's GPU power cap is enforced the only way the boards allow:
//! root-only locked core-clock ceilings. The mapping from a watt budget to
//! a clock ceiling inverts the device's DVFS power curve at full activity
//! (a conservative bound: a capped board can never exceed its budget even
//! on a power-virus kernel).

use crate::cluster::Cluster;
use serde::{Deserialize, Serialize};
use synergy_sim::DeviceSpec;

/// Configuration of the cluster-wide power manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCapConfig {
    /// Total GPU power budget for the cluster, in watts.
    pub cluster_budget_w: f64,
    /// Fraction of a node's unused headroom that gets redistributed per
    /// balancing round (SLURM's "configurable power thresholds").
    pub redistribution_rate: f64,
    /// Floor for any node's cap, in watts per GPU (never starve a node).
    pub min_gpu_cap_w: f64,
}

impl PowerCapConfig {
    /// An even-split budget with SLURM-like defaults.
    pub fn even(cluster_budget_w: f64) -> PowerCapConfig {
        PowerCapConfig {
            cluster_budget_w,
            redistribution_rate: 0.5,
            min_gpu_cap_w: 60.0,
        }
    }
}

/// The power manager: per-node GPU caps plus the balancing loop.
#[derive(Debug)]
pub struct PowerManager {
    config: PowerCapConfig,
    /// Current cap per node, in watts (GPU domain only).
    node_caps_w: Vec<f64>,
}

/// The highest supported core clock whose worst-case board power fits
/// under `cap_w` (inverts the DVFS curve at full activity).
pub fn clock_ceiling_for_cap(spec: &DeviceSpec, cap_w: f64) -> u32 {
    let worst_case = |core_mhz: u32| -> f64 {
        spec.idle_power_w
            + spec.mem_power_w
            + spec.core_power_budget_w() * spec.vf.dynamic_factor(core_mhz as f64)
    };
    let mut best = spec.freq_table.min_core();
    for &f in &spec.freq_table.core_mhz {
        if worst_case(f) <= cap_w {
            best = f;
        } else {
            break;
        }
    }
    best
}

impl PowerManager {
    /// Start with the budget split evenly across nodes.
    pub fn new(config: PowerCapConfig, nodes: usize) -> PowerManager {
        assert!(nodes > 0, "power manager needs nodes");
        let per_node = config.cluster_budget_w / nodes as f64;
        PowerManager {
            config,
            node_caps_w: vec![per_node; nodes],
        }
    }

    /// Current cap of node `i` in watts.
    pub fn node_cap_w(&self, i: usize) -> f64 {
        self.node_caps_w[i]
    }

    /// Sum of all node caps (never exceeds the cluster budget).
    pub fn total_caps_w(&self) -> f64 {
        self.node_caps_w.iter().sum()
    }

    /// Enforce the current caps on the cluster's boards via root-only
    /// locked clocks.
    pub fn enforce(&self, cluster: &Cluster) {
        for (node, &cap) in cluster.nodes.iter().zip(&self.node_caps_w) {
            let gpus = node.node.gpu_count().max(1);
            let per_gpu = (cap / gpus as f64).max(self.config.min_gpu_cap_w);
            for gpu in &node.node.gpus {
                let ceiling = clock_ceiling_for_cap(gpu.spec(), per_gpu);
                gpu.set_locked_core_clocks(Some((gpu.spec().freq_table.min_core(), ceiling)))
                    .expect("bounds derive from the table");
            }
        }
    }

    /// One balancing round: read every node's current GPU power draw,
    /// reclaim part of the headroom of under-consuming nodes, and hand it
    /// to nodes running at their cap. Returns the watts moved.
    pub fn rebalance(&mut self, cluster: &Cluster) -> f64 {
        assert_eq!(cluster.nodes.len(), self.node_caps_w.len());
        let draws: Vec<f64> = cluster
            .nodes
            .iter()
            .map(|n| n.node.gpus.iter().map(|g| g.power_usage_w()).sum())
            .collect();
        let floor: Vec<f64> = cluster
            .nodes
            .iter()
            .map(|n| self.config.min_gpu_cap_w * n.node.gpu_count() as f64)
            .collect();

        // Reclaim headroom.
        let mut pool = 0.0;
        let mut wants: Vec<usize> = Vec::new();
        for i in 0..self.node_caps_w.len() {
            let headroom = self.node_caps_w[i] - draws[i];
            if headroom > 0.0 {
                let reclaim = (headroom * self.config.redistribution_rate)
                    .min(self.node_caps_w[i] - floor[i])
                    .max(0.0);
                self.node_caps_w[i] -= reclaim;
                pool += reclaim;
            } else {
                wants.push(i);
            }
        }
        // Redistribute to saturated nodes (or return to everyone evenly).
        let moved = pool;
        if !wants.is_empty() {
            let share = pool / wants.len() as f64;
            for i in wants {
                self.node_caps_w[i] += share;
            }
        } else {
            let share = pool / self.node_caps_w.len() as f64;
            for cap in &mut self.node_caps_w {
                *cap += share;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{extract, Inst, IrBuilder};
    use synergy_sim::{SimDevice, Workload};

    fn busy_workload() -> Workload {
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(4096, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("virus");
        Workload::from_static(&extract(&ir), 1 << 24)
    }

    #[test]
    fn clock_ceiling_respects_budget() {
        let spec = synergy_sim::DeviceSpec::v100();
        for cap in [100.0, 150.0, 200.0, 250.0, 300.0] {
            let ceiling = clock_ceiling_for_cap(&spec, cap);
            let worst = spec.idle_power_w
                + spec.mem_power_w
                + spec.core_power_budget_w() * spec.vf.dynamic_factor(ceiling as f64);
            assert!(
                worst <= cap || ceiling == spec.freq_table.min_core(),
                "cap {cap}: ceiling {ceiling} draws {worst}"
            );
        }
        // Full TDP: no throttling.
        assert_eq!(
            clock_ceiling_for_cap(&spec, spec.tdp_w),
            spec.freq_table.max_core()
        );
    }

    #[test]
    fn enforce_caps_board_power_under_power_virus() {
        let cluster = Cluster::marconi100(1, true);
        let cfg = PowerCapConfig::even(4.0 * 180.0); // 180 W per GPU
        let mgr = PowerManager::new(cfg, 1);
        mgr.enforce(&cluster);
        let gpu = &cluster.nodes[0].node.gpus[0];
        let rec = gpu.execute(&busy_workload());
        assert!(
            rec.timing.exec_power_w <= 180.0 + 1e-9,
            "capped board drew {} W",
            rec.timing.exec_power_w
        );
        // And the board is genuinely slower than an uncapped one.
        let free = SimDevice::new(synergy_sim::DeviceSpec::v100(), 9);
        let fast = free.execute(&busy_workload());
        assert!(rec.duration_s() > fast.duration_s());
    }

    #[test]
    fn rebalance_moves_headroom_to_busy_nodes() {
        let cluster = Cluster::marconi100(2, true);
        // Node 0 idles; node 1 runs hard.
        for gpu in &cluster.nodes[0].node.gpus {
            gpu.advance_idle(100_000_000);
        }
        for gpu in &cluster.nodes[1].node.gpus {
            gpu.execute(&busy_workload());
        }
        let mut mgr = PowerManager::new(PowerCapConfig::even(2.0 * 4.0 * 200.0), 2);
        let before_busy = mgr.node_cap_w(1);
        let moved = mgr.rebalance(&cluster);
        assert!(moved > 0.0, "idle node's headroom should be reclaimed");
        assert!(mgr.node_cap_w(1) > before_busy, "busy node gains budget");
        assert!(mgr.node_cap_w(0) < mgr.node_cap_w(1));
    }

    #[test]
    fn total_caps_never_exceed_cluster_budget() {
        let cluster = Cluster::marconi100(3, true);
        let budget = 3.0 * 4.0 * 150.0;
        let mut mgr = PowerManager::new(PowerCapConfig::even(budget), 3);
        for round in 0..5 {
            // Mixed load each round.
            for (i, node) in cluster.nodes.iter().enumerate() {
                for gpu in &node.node.gpus {
                    if (i + round) % 2 == 0 {
                        gpu.advance_idle(10_000_000);
                    } else {
                        gpu.execute(&busy_workload());
                    }
                }
            }
            mgr.rebalance(&cluster);
            assert!(
                mgr.total_caps_w() <= budget + 1e-6,
                "round {round}: caps {} exceed budget {budget}",
                mgr.total_caps_w()
            );
        }
    }

    #[test]
    fn caps_respect_floor() {
        let cluster = Cluster::marconi100(2, true);
        let mut mgr = PowerManager::new(
            PowerCapConfig {
                cluster_budget_w: 2.0 * 4.0 * 70.0,
                redistribution_rate: 1.0,
                min_gpu_cap_w: 60.0,
            },
            2,
        );
        for _ in 0..10 {
            mgr.rebalance(&cluster);
        }
        for i in 0..2 {
            assert!(
                mgr.node_cap_w(i) >= 4.0 * 60.0 - 1e-9,
                "node {i} starved: {}",
                mgr.node_cap_w(i)
            );
        }
    }

    #[test]
    fn capped_node_restores_after_clearing_bounds() {
        let cluster = Cluster::marconi100(1, true);
        let mgr = PowerManager::new(PowerCapConfig::even(4.0 * 120.0), 1);
        mgr.enforce(&cluster);
        cluster.nodes[0].node.restore_defaults();
        let gpu = &cluster.nodes[0].node.gpus[0];
        assert_eq!(gpu.effective_clocks(), gpu.spec().baseline_clocks());
    }
}
