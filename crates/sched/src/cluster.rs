//! Cluster state: nodes with GRES tags, as SLURM's `slurmctld` sees them.

use std::collections::BTreeSet;
use synergy_sim::SimNode;

/// The GRES tag that marks frequency-scaling-capable nodes and the jobs
/// that request the capability (Section 7.2).
pub const NVGPUFREQ_GRES: &str = "nvgpufreq";

/// One node as registered with the controller.
#[derive(Debug)]
pub struct ClusterNode {
    /// The simulated hardware.
    pub node: SimNode,
    /// Generic-resource tags on the node.
    pub gres: BTreeSet<String>,
    /// Whether the NVML shared object can be `dlopen`ed on this node (one
    /// of the plugin's checks).
    pub nvml_available: bool,
    /// Job currently holding the node, if any.
    pub allocated_to: Option<u64>,
    /// Whether the current allocation is exclusive.
    pub exclusive: bool,
}

impl ClusterNode {
    /// A node with the given tags.
    pub fn new(node: SimNode, gres: impl IntoIterator<Item = String>) -> ClusterNode {
        ClusterNode {
            node,
            gres: gres.into_iter().collect(),
            nvml_available: true,
            allocated_to: None,
            exclusive: false,
        }
    }

    /// True when no job holds the node.
    pub fn is_free(&self) -> bool {
        self.allocated_to.is_none()
    }

    /// True when the node carries a GRES tag.
    pub fn has_gres(&self, tag: &str) -> bool {
        self.gres.contains(tag)
    }
}

/// The whole cluster.
#[derive(Debug, Default)]
pub struct Cluster {
    /// Registered nodes.
    pub nodes: Vec<ClusterNode>,
}

impl Cluster {
    /// Empty cluster.
    pub fn new() -> Cluster {
        Cluster::default()
    }

    /// A Marconi-100 style partition: `count` nodes of four V100s each,
    /// every node tagged `nvgpufreq` when `tagged`.
    pub fn marconi100(count: usize, tagged: bool) -> Cluster {
        let mut c = Cluster::new();
        for node in synergy_sim::marconi100_partition(count) {
            let gres: Vec<String> = if tagged {
                vec![NVGPUFREQ_GRES.to_string()]
            } else {
                vec![]
            };
            c.nodes.push(ClusterNode::new(node, gres));
        }
        c
    }

    /// Add a node.
    pub fn add_node(&mut self, node: ClusterNode) {
        self.nodes.push(node);
    }

    /// Number of free nodes.
    pub fn free_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_free()).count()
    }

    /// Indices of the first `count` free nodes, or `None` if insufficient.
    pub fn find_free(&self, count: usize) -> Option<Vec<usize>> {
        let free: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_free())
            .map(|(i, _)| i)
            .take(count)
            .collect();
        (free.len() == count).then_some(free)
    }

    /// Total GPU count across the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.node.gpu_count()).sum()
    }

    /// Total GPU energy recorded so far, in joules.
    pub fn total_gpu_energy_j(&self) -> f64 {
        self.nodes.iter().map(|n| n.node.total_gpu_energy_j()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marconi_partition_shape() {
        let c = Cluster::marconi100(16, true);
        assert_eq!(c.nodes.len(), 16);
        assert_eq!(c.total_gpus(), 64);
        assert!(c.nodes.iter().all(|n| n.has_gres(NVGPUFREQ_GRES)));
        assert!(c.nodes.iter().all(|n| n.nvml_available));
    }

    #[test]
    fn untagged_partition() {
        let c = Cluster::marconi100(2, false);
        assert!(c.nodes.iter().all(|n| !n.has_gres(NVGPUFREQ_GRES)));
    }

    #[test]
    fn find_free_respects_allocation() {
        let mut c = Cluster::marconi100(3, true);
        assert_eq!(c.find_free(2), Some(vec![0, 1]));
        c.nodes[0].allocated_to = Some(1);
        assert_eq!(c.find_free(2), Some(vec![1, 2]));
        assert_eq!(c.find_free(3), None);
        assert_eq!(c.free_nodes(), 2);
    }
}
