//! # synergy-sched
//!
//! A SLURM-like batch scheduler over the simulated cluster, with the
//! paper's `nvgpufreq` prologue/epilogue plugin (Section 7): GRES-tagged
//! nodes, exclusive-allocation checks, temporary privilege raising for
//! application-clock control, guaranteed node restoration at job end, and
//! per-job GPU energy accounting.

#![warn(missing_docs)]

pub mod cluster;
pub mod job;
pub mod plugin;
pub mod powercap;
pub mod slurm;

pub use cluster::{Cluster, ClusterNode, NVGPUFREQ_GRES};
pub use job::{JobContext, JobRecord, JobRequest, JobState, PluginLogEntry};
pub use powercap::{clock_ceiling_for_cap, PowerCapConfig, PowerManager};
pub use plugin::{
    ControllerStatus, NvGpuFreqPlugin, PluginJobInfo, PluginOutcome, SlurmPlugin,
};
pub use slurm::Slurm;
