//! SLURM prologue/epilogue plugins, and the `nvgpufreq` plugin of
//! Section 7.2.
//!
//! The plugin's prologue performs the paper's exact check chain and, only
//! if every check passes, lowers the NVML API restriction on the node's
//! boards so the (unprivileged) job can set application clocks. The
//! epilogue unconditionally restores the node: default clocks, restriction
//! back on — so the next job cannot inherit a degraded performance state.

use crate::cluster::{ClusterNode, NVGPUFREQ_GRES};
use std::collections::BTreeSet;
use synergy_hal::{Caller, Nvml, RestrictedApi};

/// What a plugin sees about the job during prologue/epilogue.
#[derive(Debug, Clone)]
pub struct PluginJobInfo {
    /// Job id.
    pub job_id: u64,
    /// Submitting uid.
    pub user: u32,
    /// GRES the job requested.
    pub gres: BTreeSet<String>,
    /// Whether the job holds its nodes exclusively.
    pub exclusive: bool,
}

/// Whether the controller answered the node-info query (the plugin's first
/// check can fail on a live system).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerStatus {
    /// `slurmctld` responded.
    Reachable,
    /// The node-info RPC failed.
    Unreachable,
}

/// Outcome of a plugin prologue on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginOutcome {
    /// The plugin applied its configuration.
    Applied,
    /// The plugin terminated without applying anything (the paper's
    /// "terminates its execution"), with the failed check.
    Skipped(String),
}

impl PluginOutcome {
    /// True when the configuration was applied.
    pub fn applied(&self) -> bool {
        matches!(self, PluginOutcome::Applied)
    }
}

/// A prologue/epilogue extension hook.
pub trait SlurmPlugin: Send + Sync {
    /// Plugin name (for logs).
    fn name(&self) -> &str;

    /// Runs before the job starts on `node`.
    fn prologue(
        &self,
        job: &PluginJobInfo,
        node: &ClusterNode,
        controller: ControllerStatus,
    ) -> PluginOutcome;

    /// Runs after the job ends on `node` (for any reason).
    fn epilogue(&self, job: &PluginJobInfo, node: &ClusterNode);
}

/// The `nvgpufreq` plugin (Section 7.2).
#[derive(Debug, Default, Clone)]
pub struct NvGpuFreqPlugin;

impl SlurmPlugin for NvGpuFreqPlugin {
    fn name(&self) -> &str {
        "nvgpufreq"
    }

    fn prologue(
        &self,
        job: &PluginJobInfo,
        node: &ClusterNode,
        controller: ControllerStatus,
    ) -> PluginOutcome {
        // 1. Node info from slurmctld.
        if controller == ControllerStatus::Unreachable {
            return PluginOutcome::Skipped("slurmctld node info unavailable".into());
        }
        // 2. Node tagged with the nvgpufreq GRES.
        if !node.has_gres(NVGPUFREQ_GRES) {
            return PluginOutcome::Skipped("node lacks nvgpufreq GRES".into());
        }
        // 3. NVML shared object loadable.
        if !node.nvml_available {
            return PluginOutcome::Skipped("NVML shared object not loadable".into());
        }
        // 4. Job tagged with the nvgpufreq GRES.
        if !job.gres.contains(NVGPUFREQ_GRES) {
            return PluginOutcome::Skipped("job did not request nvgpufreq GRES".into());
        }
        // 5. Exclusive allocation.
        if !job.exclusive {
            return PluginOutcome::Skipped("job does not hold the node exclusively".into());
        }
        // All checks passed: lower the application-clock privilege on the
        // job's boards (the plugin runs as root).
        let nvml = Nvml::init(&node.node.gpus);
        for dev in nvml.devices() {
            dev.set_api_restriction(Caller::Root, RestrictedApi::SetApplicationClocks, false)
                .expect("plugin runs as root");
        }
        PluginOutcome::Applied
    }

    fn epilogue(&self, _job: &PluginJobInfo, node: &ClusterNode) {
        // Full cleanup: default clocks, restriction restored — regardless
        // of what the job did.
        let nvml = Nvml::init(&node.node.gpus);
        for dev in nvml.devices() {
            dev.reset_application_clocks(Caller::Root)
                .expect("plugin runs as root");
            dev.set_api_restriction(Caller::Root, RestrictedApi::SetApplicationClocks, true)
                .expect("plugin runs as root");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{ClockConfig, SimNode};

    fn job(gres: bool, exclusive: bool) -> PluginJobInfo {
        let mut g = BTreeSet::new();
        if gres {
            g.insert(NVGPUFREQ_GRES.to_string());
        }
        PluginJobInfo {
            job_id: 1,
            user: 1000,
            gres: g,
            exclusive,
        }
    }

    fn tagged_node() -> ClusterNode {
        ClusterNode::new(
            SimNode::marconi100("node001"),
            vec![NVGPUFREQ_GRES.to_string()],
        )
    }

    #[test]
    fn full_chain_applies_and_lowers_privileges() {
        let node = tagged_node();
        let p = NvGpuFreqPlugin;
        let out = p.prologue(&job(true, true), &node, ControllerStatus::Reachable);
        assert_eq!(out, PluginOutcome::Applied);
        assert!(node.node.gpus.iter().all(|g| !g.api_restricted()));
        // Job can now scale clocks as a user.
        let nvml = Nvml::init(&node.node.gpus);
        nvml.device_by_index(0)
            .unwrap()
            .set_application_clocks(Caller::User(1000), ClockConfig::new(877, 135))
            .unwrap();
        // Epilogue restores everything.
        p.epilogue(&job(true, true), &node);
        assert!(node.node.gpus.iter().all(|g| g.api_restricted()));
        assert!(node.node.gpus.iter().all(|g| g.application_clocks().is_none()));
    }

    #[test]
    fn controller_unreachable_skips() {
        let node = tagged_node();
        let out = NvGpuFreqPlugin.prologue(
            &job(true, true),
            &node,
            ControllerStatus::Unreachable,
        );
        assert!(matches!(out, PluginOutcome::Skipped(ref r) if r.contains("slurmctld")));
        assert!(node.node.gpus.iter().all(|g| g.api_restricted()));
    }

    #[test]
    fn untagged_node_skips() {
        let node = ClusterNode::new(SimNode::marconi100("node001"), vec![]);
        let out =
            NvGpuFreqPlugin.prologue(&job(true, true), &node, ControllerStatus::Reachable);
        assert!(matches!(out, PluginOutcome::Skipped(ref r) if r.contains("GRES")));
    }

    #[test]
    fn missing_nvml_skips() {
        let mut node = tagged_node();
        node.nvml_available = false;
        let out =
            NvGpuFreqPlugin.prologue(&job(true, true), &node, ControllerStatus::Reachable);
        assert!(matches!(out, PluginOutcome::Skipped(ref r) if r.contains("NVML")));
    }

    #[test]
    fn job_without_gres_skips() {
        let node = tagged_node();
        let out =
            NvGpuFreqPlugin.prologue(&job(false, true), &node, ControllerStatus::Reachable);
        assert!(matches!(out, PluginOutcome::Skipped(ref r) if r.contains("request")));
    }

    #[test]
    fn non_exclusive_job_skips() {
        let node = tagged_node();
        let out =
            NvGpuFreqPlugin.prologue(&job(true, false), &node, ControllerStatus::Reachable);
        assert!(matches!(out, PluginOutcome::Skipped(ref r) if r.contains("exclusive")));
        assert!(node.node.gpus.iter().all(|g| g.api_restricted()));
    }

    #[test]
    fn epilogue_cleans_even_if_prologue_skipped() {
        // A previous job left clocks pinned somehow; epilogue still resets.
        let node = tagged_node();
        node.node.gpus[0].set_api_restriction(false);
        node.node.gpus[0]
            .set_application_clocks(ClockConfig::new(877, 135))
            .unwrap();
        NvGpuFreqPlugin.epilogue(&job(false, false), &node);
        assert!(node.node.gpus[0].api_restricted());
        assert_eq!(node.node.gpus[0].application_clocks(), None);
    }
}
