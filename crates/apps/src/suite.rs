//! The benchmark suite: 23 kernels in the style of SYCL-Bench (the suite
//! the paper evaluates on), each described by a calibrated IR and a default
//! launch size.
//!
//! Calibration is *shape-level*: each kernel's arithmetic-intensity ratio
//! `R = cycles·BW / (dram_bytes · lanes · f_max)` on the V100 model places
//! it on the compute-bound (`R ≫ 1`) ↔ memory-bound (`R < 1`) spectrum so
//! the paper's characterization findings reproduce (e.g. MatMul's flat
//! Pareto front, Sobel3's wide speedup range, Figure 2's contrast between
//! LinearRegression and MedianFilter).

use crate::{datamining, image, linalg, physics};
use synergy_kernel::KernelIr;

/// Rough boundedness classification (used by tests and docs, not the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundedness {
    /// Time limited by DRAM bandwidth at most frequencies.
    MemoryBound,
    /// Crossover inside the frequency range: both regimes visible.
    Mixed,
    /// Time limited by issue/compute at all frequencies.
    ComputeBound,
}

/// One benchmark of the suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite-unique name (matches the kernel IR name).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The kernel IR at the default problem size.
    pub ir: KernelIr,
    /// Default number of work-items for characterization runs.
    pub work_items: u64,
    /// Expected boundedness on the V100 model.
    pub bound: Boundedness,
}

/// All 23 benchmarks, in a stable order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        // linear algebra / BLAS-ish
        linalg::vec_add(),
        linalg::mat_mul(),
        linalg::matmul_chain(),
        linalg::lud(),
        linalg::scalar_prod(),
        linalg::segmented_reduction(),
        // image processing
        image::sobel3(),
        image::sobel5(),
        image::sobel7(),
        image::median_filter(),
        image::gaussian_blur(),
        image::susan(),
        // data mining / statistics
        datamining::linear_regression(),
        datamining::lin_reg_coeff(),
        datamining::kmeans(),
        datamining::nearest_neighbor(),
        datamining::geometric_mean(),
        datamining::mersenne_twister(),
        // physics / finance
        physics::mol_dyn(),
        physics::nbody(),
        physics::black_scholes(),
        physics::hotspot(),
        physics::pathfinder(),
    ]
}

/// Look up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// The four benchmarks the paper characterizes in Figures 7 and 8.
pub fn figure7_selection() -> Vec<Benchmark> {
    ["mat_mul", "sobel3", "median_filter", "nbody"]
        .iter()
        .map(|n| by_name(n).expect("selection exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use synergy_kernel::extract;

    #[test]
    fn suite_has_23_unique_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 23);
        let names: HashSet<_> = s.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn ir_names_match_benchmark_names() {
        for b in suite() {
            assert_eq!(b.ir.name, b.name);
        }
    }

    #[test]
    fn all_features_valid_and_nonempty() {
        for b in suite() {
            let info = extract(&b.ir);
            assert!(info.features.is_valid(), "{}", b.name);
            assert!(info.features.total() > 0.0, "{}", b.name);
            assert!(b.work_items > 0, "{}", b.name);
        }
    }

    #[test]
    fn figure7_selection_present() {
        let sel = figure7_selection();
        assert_eq!(sel.len(), 4);
        assert_eq!(sel[0].name, "mat_mul");
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("not_a_benchmark").is_none());
    }
}
